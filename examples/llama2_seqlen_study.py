"""LLaMA2 sequence-length sensitivity study (paper Fig. 11).

Sweeps the LLaMA2 layer from 256 to 16K tokens and shows how FuseCU's
advantage grows with sequence length: attention's S x S intermediates grow
quadratically, and only the fused dataflow keeps them on-chip.

Run:  python examples/llama2_seqlen_study.py
"""

from repro.core import optimize_graph
from repro.experiments import render_fig11, run_fig11
from repro.workloads import LLAMA2, LLAMA2_SEQ_SWEEP, build_layer_graph


def main() -> None:
    result = run_fig11()
    print(render_fig11(result))
    print()

    # Why the saving grows: decompose one short and one long sequence.
    for seq_len in (256, 16384):
        graph = build_layer_graph(LLAMA2.with_seq_len(seq_len))
        plan = optimize_graph(graph, 512 * 1024)
        attention = next(
            segment
            for segment in plan.fused_segments
            if "qk" in segment.ops[0].name
        )
        intermediates = sum(
            tensor.size * segment_count
            for tensor, segment_count in (
                (op.output, op.count)
                for op in attention.ops[:-1]
            )
        )
        ratio = intermediates / plan.memory_access
        print(
            f"S={seq_len}: attention intermediates (kept on-chip by fusion) "
            f"total {intermediates:.3e} elements = {ratio:.2f}x the plan's "
            f"entire remaining memory traffic"
        )
    print()
    print(
        "Takeaway: the S^2 score/probability matrices dominate long-sequence "
        "traffic; fusing QK^T -> softmax -> AV removes them entirely, which "
        "is why Fig. 11 shows greater reduction at longer sequences."
    )


if __name__ == "__main__":
    main()
