"""Drive the FuseCU functional simulator (paper Sec. IV, Figs. 5-7).

Executes a fused matmul chain ``(A x B) x D`` three ways on the
register-accurate array model -- tile fusion, column fusion, and an
unfused two-pass reference -- verifying numerics against numpy and showing
the intermediate tensor never leaving the array under the fused mappings.

Run:  python examples/fusecu_simulation.py
"""

import numpy as np

from repro.arch import FuseCUArray, FuseCUConfig, SystolicArray
from repro.dataflow import classify_intermediate_tile
from repro.experiments import format_table


def main() -> None:
    rng = np.random.default_rng(2025)
    config = FuseCUConfig(n=32, cus=4)
    fusecu = FuseCUArray(config)
    print(
        f"FuseCU group: {config.cus} CUs of {config.n}x{config.n} XS PEs; "
        f"supports untiled dims up to 2N = {config.max_untiled}; "
        f"array shapes: {[str(s) for s in config.array_shapes()]}"
    )
    print()

    # A fused chain sized for one CU: tile-like intermediate.
    a = rng.normal(size=(28, 20))
    b = rng.normal(size=(20, 30))
    d = rng.normal(size=(30, 24))
    reference = (a @ b) @ d

    kind = classify_intermediate_tile((28, 30))
    print(f"Intermediate C is 28x30 -> {kind.value} mapping recommended")
    print()

    runs = {
        "tile fusion (Fig. 5a)": fusecu.tile_fusion(a, b, d),
        "column fusion (Fig. 5b)": fusecu.column_fusion(a, b, d),
        "unfused (two OS passes)": fusecu.unfused_reference(a, b, d),
    }
    rows = []
    for name, run in runs.items():
        correct = np.allclose(run.result, reference)
        rows.append(
            [
                name,
                "yes" if correct else "NO",
                run.stats.cycles,
                run.stats.input_words,
                run.intermediate_traffic,
                "on-chip" if run.fused_on_chip else "via memory",
            ]
        )
        assert correct
    print(
        format_table(
            ["mapping", "correct", "cycles", "input words", "C traffic", "C path"],
            rows,
            title="Fused executions on the XS PE array",
        )
    )
    print()

    # The plain systolic modes, for reference.
    array = SystolicArray(32, 32)
    for mode in ("os", "ws", "is"):
        result, stats = array.matmul(a, b, mode)
        assert np.allclose(result, a @ b)
        print(f"single matmul, {mode.upper()} dataflow: {stats.cycles} cycles")
    print()
    print(
        "All mappings produce bit-identical results; the fused mappings "
        "moved zero intermediate words -- the architectural claim of "
        "paper Sec. IV."
    )


if __name__ == "__main__":
    main()
