"""Compare the five platforms of paper Table III on any Table II model.

For each platform (TPUv4i, Gemmini, Planaria, UnfCU, FuseCU) the workload
graph is optimized within the platform's dataflow space and pushed through
the performance model, reporting memory access, cycles, utilization and
speedup -- a one-model slice of Fig. 10.

Run:  python examples/accelerator_comparison.py [model] [buffer_kb]
      python examples/accelerator_comparison.py LLaMA2 1024
"""

import sys

from repro.arch import ALL_PLATFORMS, MemorySpec, evaluate_graph
from repro.experiments import format_table
from repro.workloads import build_layer_graph, model_by_name


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "Bert"
    buffer_kb = int(sys.argv[2]) if len(sys.argv) > 2 else 512
    model = model_by_name(model_name)
    memory = MemorySpec(buffer_bytes=buffer_kb * 1024)
    graph = build_layer_graph(model)

    print(
        f"{model.name}: heads={model.heads}, seq={model.seq_len}, "
        f"hidden={model.hidden}, batch={model.batch}; buffer {buffer_kb} KB, "
        f"{128}x{128}x4 PEs, 1 TB/s"
    )
    print()

    perfs = {}
    for factory in ALL_PLATFORMS:
        spec = factory(memory)
        perfs[spec.name] = evaluate_graph(graph, spec)

    baseline = perfs["TPUv4i"]
    rows = []
    for name, perf in perfs.items():
        rows.append(
            [
                name,
                perf.total_memory_access,
                round(perf.total_memory_access / baseline.total_memory_access, 3),
                int(perf.total_cycles),
                round(perf.utilization, 3),
                f"{perf.speedup_over(baseline):.2f}x",
            ]
        )
    print(
        format_table(
            [
                "platform",
                "memory access",
                "MA (norm.)",
                "cycles",
                "utilization",
                "speedup vs TPUv4i",
            ],
            rows,
            title=f"Fig. 10 slice: {model.name}",
        )
    )
    print()

    fusecu_perf = perfs["FuseCU"]
    print("FuseCU execution segments:")
    for segment in fusecu_perf.segments:
        bound = "memory" if segment.memory_bound else "compute"
        shape = segment.array_shape or "vector unit"
        print(
            f"  {segment.name}: {segment.cycles:.0f} cycles ({bound}-bound, "
            f"array {shape}, spatial util {segment.spatial_utilization:.2f})"
        )


if __name__ == "__main__":
    main()
