"""Apply the principles to convolutions (ResNet-50 layers).

Demonstrates the paper's generalization claim ("Principle 1-4 can be
extended to other tensor operators"): each conv layer is im2col-lowered to
a matmul, classified into a buffer regime, and optimized one-shot; the
early spatial-heavy and late channel-heavy stages land in different
regimes and pick different NRA dataflows.

Run:  python examples/resnet_conv_analysis.py [buffer_kb]
"""

import sys

from repro.core import classify_buffer, optimize_intra
from repro.experiments import bar_chart, format_table
from repro.ir import conv2d_as_matmul
from repro.workloads import RESNET50_LAYERS


def main() -> None:
    buffer_kb = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    buffer_elems = buffer_kb * 1024

    rows = []
    redundancy = {}
    for name, shape in RESNET50_LAYERS.items():
        op = conv2d_as_matmul(name, shape)
        regime = classify_buffer(op, buffer_elems).regime.value
        result = optimize_intra(op, buffer_elems)
        rows.append(
            [
                name,
                f"{shape.gemm_m}x{shape.gemm_k}x{shape.gemm_l}",
                regime,
                str(result.nra_class),
                result.label,
                result.memory_access,
                round(result.redundancy, 2),
                round(shape.input_traffic_correction, 1),
            ]
        )
        redundancy[name] = result.redundancy
    print(
        format_table(
            [
                "layer",
                "im2col GEMM",
                "regime",
                "NRA",
                "chosen dataflow",
                "MA",
                "MA/ideal",
                "im2col dup.",
            ],
            rows,
            title=f"ResNet-50 conv layers at {buffer_kb} KB (batch 16)",
        )
    )
    print()
    print(
        bar_chart(
            redundancy,
            title="Redundant-access factor (1.0 = communication lower bound)",
            unit="x",
        )
    )
    print()
    print(
        "Notes: the im2col lowering duplicates overlapping windows (last "
        "column); accelerators with on-the-fly expansion divide the "
        "A-tensor traffic by that factor. Early layers (huge M, small K) "
        "reach Three-NRA easily -- the filter fits on-chip; the 7x7-input "
        "stages are channel-bound and stay in lower regimes at small "
        "buffers."
    )


if __name__ == "__main__":
    main()
