"""Quickstart: principle-based dataflow optimization in five minutes.

Reproduces the paper's worked example (Sec. III-A4): a BERT matrix
multiplication ``A(1024,768) x B(768,768)`` against a 512 KB buffer --
classify the buffer regime, apply the matching principle, and compare the
one-shot result against brute-force search.

Run:  python examples/quickstart.py
"""

from repro.core import (
    classify_buffer,
    one_shot_dataflow,
    optimize_intra,
    principle1,
    principle2,
    principle3,
)
from repro.ir import matmul
from repro.search import exhaustive_search


def main() -> None:
    # The paper's example operator and buffer.
    op = matmul("bert_mm", 1024, 768, 768)
    buffer_elems = 512 * 1024  # 512 KB of 1-byte elements

    print(f"Operator: {op}")
    print(f"Ideal (infinite-buffer) memory access: {op.ideal_memory_access()}")
    print()

    # Step 1: classify the buffer (Sec. III-A4's four regimes).
    regime = classify_buffer(op, buffer_elems)
    print(
        f"Buffer {buffer_elems} elements -> regime '{regime.regime}' "
        f"(Dmin={regime.d_min}, Dmin^2/2={regime.d_min ** 2 // 2}, "
        f"Tensor_min={regime.tensor_min})"
    )
    print()

    # Step 2: the principles, as statements.
    for principle in (principle1(op), principle2(op), principle3(op)):
        print(f"Principle {principle.number} ({principle.title}):")
        print(f"  tiling:     {principle.tiling_rule}")
        print(f"  scheduling: {principle.scheduling_rule}")
        print(f"  here:       {principle.recommendation}")
    print()

    # Step 3: one-shot optimization.
    result = optimize_intra(op, buffer_elems)
    print(f"Principle-based optimum: {result.describe()}")
    for name, entry in result.report.per_tensor.items():
        marker = "non-redundant" if entry.non_redundant else (
            f"x{entry.multiplier} redundant"
        )
        print(f"  {name}: {entry.accesses} accesses ({marker})")
    print()

    # The paper's claim for this example: B is accessed exactly 2KL.
    assert result.report.per_tensor["bert_mm.B"].accesses == 2 * 768 * 768

    # Step 4: validate against search (the Fig. 9 experiment, in miniature).
    searched = exhaustive_search(op, buffer_elems)
    print(
        f"Exhaustive search over {searched.evaluations} grid points: "
        f"MA={searched.memory_access}"
    )
    print(
        f"Principles matched or beat search: "
        f"{result.memory_access <= searched.memory_access} "
        f"(principle MA={result.memory_access})"
    )

    # The regime-table shortcut gives the same answer in O(1).
    one_shot = one_shot_dataflow(op, buffer_elems)
    print(f"One-shot regime procedure agrees: "
          f"{one_shot.memory_access == result.memory_access}")


if __name__ == "__main__":
    main()
