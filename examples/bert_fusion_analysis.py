"""Fusion analysis of a full BERT encoder layer (paper Sec. III-B).

Builds the layer's operator graph (projections, per-head attention, FFN),
runs the graph-level fusion planner, and reports:

* which chains fuse and under which Fig. 4 pattern,
* the memory-access saving of each fusion,
* the Principle 4 prediction next to the measured decision.

Run:  python examples/bert_fusion_analysis.py [buffer_kb]
"""

import sys

from repro.core import decide_fusion, optimize_graph
from repro.experiments import format_table
from repro.workloads import BERT, build_layer_graph


def main() -> None:
    buffer_kb = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    buffer_elems = buffer_kb * 1024
    graph = build_layer_graph(BERT)

    print(f"BERT encoder layer: {len(graph)} operators, "
          f"{graph.macs / 1e9:.1f} GMACs, buffer {buffer_kb} KB")
    print()

    # ------------------------------------------------------------------
    # Per-chain fusion decisions.
    # ------------------------------------------------------------------
    rows = []
    for chain in graph.chains():
        if len(chain) < 2:
            continue
        decision = decide_fusion(chain, buffer_elems)
        pattern = decision.fused.pattern.label if decision.fused else "-"
        rows.append(
            [
                " -> ".join(op.name.split(".")[-1] for op in chain),
                decision.unfused_memory_access,
                decision.fused_memory_access or "-",
                pattern,
                "yes" if decision.predicted_profitable else "no",
                "yes" if decision.profitable else "no",
                f"{decision.saving:.1%}",
            ]
        )
    print(
        format_table(
            [
                "chain",
                "unfused MA",
                "fused MA",
                "pattern",
                "P4 predicts",
                "profitable",
                "saving",
            ],
            rows,
            title="Per-chain fusion decisions (Fig. 4 patterns)",
        )
    )
    print()

    # ------------------------------------------------------------------
    # Whole-graph plan.
    # ------------------------------------------------------------------
    fused_plan = optimize_graph(graph, buffer_elems)
    unfused_plan = optimize_graph(graph, buffer_elems, enable_fusion=False)
    print(fused_plan.describe())
    print()
    saving = 1 - fused_plan.memory_access / unfused_plan.memory_access
    print(
        f"Graph totals: unfused MA={unfused_plan.memory_access}, "
        f"fused MA={fused_plan.memory_access} (fusion saves {saving:.1%})"
    )
    print(
        f"Infinite-buffer floor (externals only): "
        f"{graph.ideal_memory_access()}"
    )


if __name__ == "__main__":
    main()
