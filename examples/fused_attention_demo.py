"""Fused attention, end to end: analytics -> mapping -> exact execution.

Walks the paper's flagship chain (QK^T -> softmax -> AV) through all three
layers of the library:

1. the *analytical* planner fuses the chain and predicts its traffic;
2. the *mapping compiler* emits the FuseCU configuration;
3. the *functional executor* runs it with real data and online softmax,
   proving the tiled fused dataflow is numerically exact while the S x S
   score/probability matrices never move.

Run:  python examples/fused_attention_demo.py
"""

import numpy as np

from repro.arch import (
    FuseCUConfig,
    compile_fused_mapping,
    execute_fused_attention,
    fused_attention_traffic_model,
    reference_attention,
)
from repro.core import optimize_fused
from repro.experiments import format_table
from repro.ir import matmul, rowwise_softmax


def main() -> None:
    seq, head_dim = 256, 64
    buffer_elems = 64 * 1024

    # ------------------------------------------------------------------
    # 1. Analytical plan.
    # ------------------------------------------------------------------
    qk = matmul("qk", seq, head_dim, seq)
    softmax = rowwise_softmax("softmax", qk.output)
    av = matmul("av", seq, seq, head_dim, a=softmax.output)
    result = optimize_fused([qk, softmax, av], buffer_elems)
    assert result is not None
    print("Analytical plan:")
    print("  " + result.describe())
    unfused_intermediates = 2 * seq * seq * 2  # S and P, write + read each
    print(
        f"  intermediates elided: {unfused_intermediates} elements "
        f"(2 x {seq}x{seq} matrices, write+read)"
    )
    print()

    # ------------------------------------------------------------------
    # 2. FuseCU configuration.
    # ------------------------------------------------------------------
    program = compile_fused_mapping(result, FuseCUConfig(n=128))
    print("FuseCU configuration:")
    print(f"  {program.description}")
    print(f"  array shape {program.array_shape}, "
          f"CU modes {[s.mode.name for s in program.cu_settings]}")
    print()

    # ------------------------------------------------------------------
    # 3. Exact functional execution (online softmax over tiles).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    q = rng.normal(size=(seq, head_dim))
    k = rng.normal(size=(seq, head_dim))
    v = rng.normal(size=(seq, head_dim))
    tiling = result.dataflow.resolved_tiling(result.chain)
    tile_m = tiling["M"]
    tile_l = tiling["L"]
    execution = execute_fused_attention(
        q, k, v, tile_m=max(1, min(tile_m, seq)), tile_l=max(1, min(tile_l, seq))
    )
    exact = np.allclose(execution.output, reference_attention(q, k, v))
    model = fused_attention_traffic_model(
        seq, seq, head_dim, head_dim, max(1, min(tile_m, seq))
    )
    rows = [
        [name, execution.traffic.reads.get(name, 0)
         if name != "O" else execution.traffic.writes.get(name, 0),
         model[name]]
        for name in ("Q", "K", "V", "O")
    ]
    print(
        format_table(
            ["tensor", "measured traffic", "model"],
            rows,
            title=f"Functional execution (tile_m={tile_m}, tile_l={tile_l})",
        )
    )
    print()
    print(f"numerically exact vs softmax(QK^T)V: {exact}")
    print(f"score/probability traffic: {execution.score_traffic} elements")
    total = sum(execution.traffic.reads.values()) + sum(
        execution.traffic.writes.values()
    )
    print(
        f"total fused traffic {total} vs {unfused_intermediates} for the "
        f"intermediates alone unfused ({unfused_intermediates / total:.1f}x)"
    )


if __name__ == "__main__":
    main()
