"""Visualize the four buffer regimes (paper Sec. III-A4).

Prints the regime map for a family of square-ish matmuls: rows are
operators (growing dimension size), columns are buffer sizes, each cell
the regime the classifier assigns -- the staircase structure of the
paper's table made visible -- followed by the MA(BS) staircase of one
operator with its shift band and Three-NRA threshold marked.

Run:  python examples/regime_map.py
"""

from repro.core import classify_buffer, shift_point_band, three_nra_threshold
from repro.experiments import line_chart, run_sweep
from repro.ir import matmul

REGIME_GLYPH = {"tiny": "t", "small": "s", "medium": "M", "large": "L"}


def main() -> None:
    dims = [64, 128, 256, 512, 1024, 2048]
    buffers_kb = [8, 32, 128, 512, 2048, 8192, 32768]

    print("Regime map (rows: square MM of size D; columns: buffer size)")
    print("  t=tiny  s=small  M=medium  L=large")
    print()
    header = "D \\ BS   " + "".join(f"{kb:>8}K" for kb in buffers_kb)
    print(header)
    for d in dims:
        op = matmul(f"mm{d}", d, d, d)
        cells = []
        for kb in buffers_kb:
            regime = classify_buffer(op, kb * 1024).regime.value
            cells.append(f"{REGIME_GLYPH[regime]:>9}")
        print(f"{d:<9}" + "".join(cells))
    print()

    # One operator's staircase with annotations.
    op = matmul("bert_mm", 1024, 768, 768)
    low, high = shift_point_band(op)
    threshold = three_nra_threshold(op)
    print(
        f"{op.name}: shift band [{low:.0f}, {high:.0f}] elements "
        f"(Dmin^2/4 .. Dmin^2/2); Three-NRA threshold ~{threshold} elements"
    )
    (curve,) = run_sweep([op], max_points=20)
    import math

    xs = [math.log2(point.buffer_elems) for point in curve.points]
    print(
        line_chart(
            xs,
            {
                "MA/ideal": [
                    point.memory_access / curve.ideal for point in curve.points
                ]
            },
            title="MA lower bound (normalized) vs log2(buffer elements)",
            height=10,
            width=56,
        )
    )
    print()
    print(
        "Reading: the staircase drops fastest around the shift band "
        f"(log2 ~ {math.log2(low):.1f}-{math.log2(high):.1f}) where Two-NRA "
        "takes over, and flattens at 1.0 once the smallest tensor fits "
        f"(log2 ~ {math.log2(threshold):.1f})."
    )


if __name__ == "__main__":
    main()
