"""``ReproClient``: a retrying, connection-reusing client for the daemon.

One persistent ``http.client.HTTPConnection`` per client (re-opened
transparently when the server or a middlebox drops it), deterministic
retry/backoff on admission pushback (429/503, honoring the server's
``Retry-After`` hint up to a cap) and on transient transport errors,
batch submission that round-trips the engine's byte-exact JSON-lines
stream, and a protocol handshake that warns *loudly* on a version
mismatch instead of silently misreading responses.

Backoff reuses :class:`repro.service.resilience.RetryPolicy`: delays are
hashed from the request path and attempt number, never drawn from a
random source, so a flaky session replays identically.
"""

from __future__ import annotations

import http.client
import json
import socket
import sys
import time
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import urlsplit

from ..service.resilience import RetryPolicy
from .protocol import PROTOCOL_VERSION

#: HTTP statuses that mean "try again later" (admission pushback).
RETRYABLE_STATUSES = (429, 503)

PayloadLike = Union[Mapping[str, Any], str]


class ClientError(Exception):
    """Base class for client-side failures."""


class ServerUnavailableError(ClientError):
    """The server could not be reached (after any configured retries)."""


class ServerError(ClientError):
    """The server answered with an error status.

    ``status`` is the HTTP status; ``retry_after`` carries the server's
    hint (seconds) when one was sent; ``payload`` is the decoded error
    body when it was JSON.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        payload: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after
        self.payload = payload or {}


class ProtocolMismatchWarning(UserWarning):
    """The server speaks a different protocol version than this client."""


class ReproClient:
    """Talk to a ``repro serve`` daemon.

    >>> with ReproClient(port=8177) as client:
    ...     record = client.analyze(
    ...         {"kind": "intra", "m": 64, "k": 32, "l": 48,
    ...          "buffer_elems": 4096}
    ...     )

    ``max_attempts`` covers admission pushback (429/503) and transient
    transport failures alike; permanent HTTP errors (400, 404...) never
    retry.  ``sleep`` is injectable so tests never wait.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        timeout: float = 60.0,
        max_attempts: int = 5,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 2.0,
        client_id: str = "repro-client",
        check_protocol: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.client_id = client_id
        self.check_protocol = check_protocol
        self.retry_max_delay = retry_max_delay
        self._policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay=retry_base_delay,
            max_delay=retry_max_delay,
            sleep=sleep,
        )
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None
        self._server_info: Optional[Dict[str, Any]] = None

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "ReproClient":
        """Build a client from ``http://host:port`` (path/scheme ignored)."""
        parsed = urlsplit(url if "//" in url else f"//{url}")
        if not parsed.hostname:
            raise ValueError(f"cannot parse server URL {url!r}")
        return cls(
            host=parsed.hostname, port=parsed.port or 8177, **kwargs
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        retry: bool = True,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange with deterministic retry/backoff.

        Retries transient transport errors and 429/503 responses (up to
        ``max_attempts`` total); the backoff before attempt ``n`` is the
        larger of the deterministic policy delay and the server's
        ``Retry-After`` hint capped at ``retry_max_delay``.
        """

        send_headers = {
            "X-Repro-Client": self.client_id,
            "Accept": "application/json",
        }
        if headers:
            send_headers.update(headers)
        attempts = self.max_attempts if retry else 1
        attempt = 0
        last_error: Optional[Exception] = None
        while attempt < attempts:
            attempt += 1
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                data = response.read()
                status = response.status
                response_headers = {
                    key.lower(): value
                    for key, value in response.getheaders()
                }
            except (
                ConnectionError,
                socket.timeout,
                http.client.HTTPException,
                OSError,
            ) as exc:
                # Transient transport failure: reconnect and retry.
                self._drop_connection()
                last_error = exc
                if attempt < attempts:
                    self._policy.backoff(attempt + 1, key=path)
                    continue
                raise ServerUnavailableError(
                    f"{method} {self.url}{path} failed after "
                    f"{attempt} attempt(s): {exc}"
                ) from exc
            if status in RETRYABLE_STATUSES and attempt < attempts:
                hint = self._retry_after(response_headers, data)
                delay = self._policy.delay_for(attempt + 1, key=path)
                if hint is not None:
                    delay = max(delay, min(hint, self.retry_max_delay))
                if delay > 0:
                    self._sleep(delay)
                continue
            if status >= 400:
                raise self._server_error(status, response_headers, data)
            return status, response_headers, data
        raise ServerUnavailableError(
            f"{method} {self.url}{path} failed after {attempts} "
            f"attempt(s): {last_error}"
        )

    @staticmethod
    def _retry_after(
        headers: Mapping[str, str], data: bytes
    ) -> Optional[float]:
        try:
            payload = json.loads(data.decode("utf-8"))
            precise = payload.get("error", {}).get("retry_after_seconds")
            if precise is not None:
                return float(precise)
        except (ValueError, AttributeError):
            pass
        raw = headers.get("retry-after")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    @staticmethod
    def _server_error(
        status: int, headers: Mapping[str, str], data: bytes
    ) -> ServerError:
        message = data.decode("utf-8", "replace").strip()
        payload: Optional[Dict[str, Any]] = None
        try:
            decoded = json.loads(message)
            if isinstance(decoded, dict):
                payload = decoded
                error = decoded.get("error", {})
                message = error.get("message", message)
        except ValueError:
            pass
        return ServerError(
            status,
            message,
            retry_after=ReproClient._retry_after(headers, data),
            payload=payload,
        )

    # ------------------------------------------------------------------
    # Handshake + observability
    # ------------------------------------------------------------------
    def handshake(self) -> Dict[str, Any]:
        """GET /healthz, check the protocol version, cache the result.

        A mismatch warns loudly -- a :class:`ProtocolMismatchWarning`
        *and* a stderr line -- but does not raise: an operator mid-rollout
        should see the skew, not an outage.
        """

        if self._server_info is not None:
            return self._server_info
        info = self.health()
        server_protocol = info.get("protocol")
        if self.check_protocol and server_protocol != PROTOCOL_VERSION:
            message = (
                f"protocol mismatch: server {self.url} speaks protocol "
                f"{server_protocol!r} (version {info.get('version')!r}), "
                f"this client speaks {PROTOCOL_VERSION}; responses may be "
                "misinterpreted -- upgrade the older side"
            )
            warnings.warn(message, ProtocolMismatchWarning, stacklevel=2)
            print(f"repro client: WARNING: {message}", file=sys.stderr)
        self._server_info = info
        return info

    def health(self) -> Dict[str, Any]:
        _, _, data = self._request("GET", "/healthz")
        return json.loads(data.decode("utf-8"))

    def ready(self) -> bool:
        try:
            self._request("GET", "/readyz", retry=False)
        except (ServerError, ServerUnavailableError):
            return False
        return True

    def stats(self) -> Dict[str, Any]:
        _, _, data = self._request("GET", "/stats")
        return json.loads(data.decode("utf-8"))

    def metrics(self, fmt: str = "text") -> str:
        path = "/metrics?format=json" if fmt == "json" else "/metrics"
        _, _, data = self._request("GET", path)
        return data.decode("utf-8")

    def reshard(self, shards: int) -> Dict[str, Any]:
        """POST /admin/reshard: live-resize a sharded tier to ``shards``.

        Never retried client-side -- a reshard is not idempotent-cheap
        (each attempt moves journal segments), and the server already
        answers 409 with a Retry-After while one is in flight.  Raises
        :class:`ServerError` on 4xx/5xx (including 409 busy).
        """

        body = json.dumps({"shards": int(shards)}).encode("utf-8")
        _, _, data = self._request(
            "POST",
            "/admin/reshard",
            body=body,
            headers={"Content-Type": "application/json"},
            retry=False,
        )
        return json.loads(data.decode("utf-8"))

    def compact(self) -> Dict[str, Any]:
        """POST /admin/compact: fold the journal(s) down to live records.

        Not retried client-side: compaction is idempotent but heavy (it
        rewrites every journal), so back-to-back retries against a slow
        disk only pile on.  Raises :class:`ServerError` on 4xx/5xx
        (including 409 when the server has no journal or it is
        degraded).
        """

        _, _, data = self._request(
            "POST",
            "/admin/compact",
            body=b"{}",
            headers={"Content-Type": "application/json"},
            retry=False,
        )
        return json.loads(data.decode("utf-8"))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _analyze_headers(
        self, deadline: Optional[float], content_type: str
    ) -> Dict[str, str]:
        headers = {"Content-Type": content_type}
        if deadline is not None:
            headers["X-Repro-Deadline"] = f"{deadline:g}"
        return headers

    def analyze(
        self,
        request: Mapping[str, Any],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evaluate one request; returns its deterministic result record."""
        self.handshake()
        body = json.dumps(dict(request)).encode("utf-8")
        _, _, data = self._request(
            "POST",
            "/v1/analyze",
            body=body,
            headers=self._analyze_headers(deadline, "application/json"),
        )
        return json.loads(data.decode("utf-8"))

    @staticmethod
    def _encode_batch(payloads: Iterable[PayloadLike]) -> bytes:
        """JSON-lines encoding; raw strings pass through untouched.

        A raw (undecodable) line still occupies its input position, so
        the server's engine records its structured error at the right
        index -- the same contract as ``repro batch`` reading a file.
        """

        lines: List[str] = []
        for payload in payloads:
            if isinstance(payload, str):
                lines.append(payload.replace("\n", " "))
            else:
                lines.append(json.dumps(dict(payload)))
        return ("\n".join(lines) + "\n").encode("utf-8")

    def batch_lines(
        self,
        payloads: Iterable[PayloadLike],
        deadline: Optional[float] = None,
    ) -> List[str]:
        """Submit a batch; returns the server's raw JSON-lines verbatim.

        These are byte-for-byte the lines ``repro batch`` would print
        for the same requests (the server serves the engine's
        deterministic stream unmodified).
        """

        self.handshake()
        body = self._encode_batch(payloads)
        if len(body) == 1:  # just the newline: nothing to submit
            return []
        _, _, data = self._request(
            "POST",
            "/v1/analyze",
            body=body,
            headers=self._analyze_headers(deadline, "application/x-ndjson"),
        )
        text = data.decode("utf-8")
        return [line for line in text.splitlines() if line]

    def run_batch(
        self,
        payloads: Iterable[PayloadLike],
        deadline: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Submit a batch; returns decoded result records in input order."""
        return [json.loads(line) for line in self.batch_lines(payloads, deadline)]

    def stream_batch(
        self,
        payloads: Iterable[PayloadLike],
        chunk_size: int = 64,
        deadline: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a large batch in chunks, yielding records as chunks land.

        Indexes are rewritten to the global input position, so the
        record stream is identical to one monolithic submission; each
        chunk rides the ordinary retry/backoff machinery independently,
        bounding both request size and the blast radius of a retry.
        """

        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        base = 0
        chunk: List[PayloadLike] = []
        for payload in payloads:
            chunk.append(payload)
            if len(chunk) >= chunk_size:
                for record in self.run_batch(chunk, deadline=deadline):
                    record["index"] = base + record["index"]
                    yield record
                base += len(chunk)
                chunk = []
        if chunk:
            for record in self.run_batch(chunk, deadline=deadline):
                record["index"] = base + record["index"]
                yield record


def canonical_record_line(record: Mapping[str, Any]) -> str:
    """Serialize a result record exactly as the engine's JSON-lines do."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))
