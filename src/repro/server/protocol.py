"""Shared protocol identity for the serving daemon and its clients.

One place names the wire contract: the package version, the protocol
version (bumped on any incompatible change to endpoints, payload shapes,
or admission semantics), and the persisted-cache schema the server's
engine speaks.  The daemon reports it from ``GET /healthz``, the CLI
from ``repro --version``, and :class:`~repro.server.client.ReproClient`
checks it during its handshake -- a mismatch is warned about loudly on
the client side instead of silently misinterpreting responses.
"""

from __future__ import annotations

from typing import Any, Dict

from .. import __version__ as PACKAGE_VERSION
from ..service.engine import CACHE_SCHEMA_VERSION

#: Wire-protocol version.  Bump on any incompatible change to the HTTP
#: endpoints, request/response shapes, or admission headers.
PROTOCOL_VERSION = 1

#: Server software identity reported by ``/healthz``.
SERVER_NAME = "repro-server"


def protocol_info() -> Dict[str, Any]:
    """The handshake payload shared by ``/healthz`` and the client."""
    return {
        "server": SERVER_NAME,
        "version": PACKAGE_VERSION,
        "protocol": PROTOCOL_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
    }


def version_banner() -> str:
    """Human-readable one-liner for ``repro --version``."""
    return (
        f"repro {PACKAGE_VERSION} "
        f"(protocol {PROTOCOL_VERSION}, cache schema {CACHE_SCHEMA_VERSION})"
    )
