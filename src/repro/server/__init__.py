"""Network serving daemon over the batch analysis engine.

Turns the one-shot CLI stack into a long-lived, queryable service: a
stdlib-only threaded HTTP/JSON daemon (:mod:`~repro.server.app`,
:mod:`~repro.server.http`) exposing ``POST /v1/analyze`` over the exact
request schemas and content keys of :mod:`repro.service.requests` -- so
the LRU result cache and the process-wide intra-operator cache keep
earning across calls -- plus live observability (``/healthz``,
``/readyz``, ``/metrics``, ``/stats``).  Admission control
(:mod:`~repro.server.admission`) sheds load before it hurts: per-client
token-bucket rate limiting (429), a bounded wait queue with backpressure
(503 + ``Retry-After``), a max-concurrency semaphore, and per-request
deadlines mapped onto the engine's ``deadline_seconds``.
:class:`~repro.server.client.ReproClient` speaks the protocol with
connection reuse, deterministic retry/backoff, and batch streaming; a
version handshake (:mod:`~repro.server.protocol`) warns loudly on skew.
Shutdown reuses :mod:`repro.service.shutdown` semantics: SIGTERM stops
admission, drains in-flight work losslessly, and flushes the journal.

Quick start::

    from repro.server import ReproServer, ServerConfig, ReproClient

    server = ReproServer(ServerConfig(port=0)).start()
    with ReproClient(port=server.port) as client:
        record = client.analyze(
            {"kind": "intra", "m": 64, "k": 32, "l": 48,
             "buffer_elems": 4096}
        )
    server.shutdown(drain=True)
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    ServerDrainingError,
    TokenBucket,
)
from .app import (
    DRAIN_RETRY_AFTER,
    BadRequestError,
    ReproServer,
    ServerApp,
    ServerConfig,
)
from .client import (
    RETRYABLE_STATUSES,
    ClientError,
    ProtocolMismatchWarning,
    ReproClient,
    ServerError,
    ServerUnavailableError,
    canonical_record_line,
)
from .http import HttpResponse, ReproHTTPServer
from .protocol import (
    PROTOCOL_VERSION,
    SERVER_NAME,
    protocol_info,
    version_banner,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BadRequestError",
    "ClientError",
    "DRAIN_RETRY_AFTER",
    "HttpResponse",
    "PROTOCOL_VERSION",
    "ProtocolMismatchWarning",
    "QueueFullError",
    "RETRYABLE_STATUSES",
    "RateLimitedError",
    "RateLimiter",
    "ReproClient",
    "ReproHTTPServer",
    "ReproServer",
    "SERVER_NAME",
    "ServerApp",
    "ServerConfig",
    "ServerDrainingError",
    "ServerError",
    "ServerUnavailableError",
    "TokenBucket",
    "canonical_record_line",
    "protocol_info",
    "version_banner",
]
