"""Admission control for the serving daemon.

Three independent gates stand between a socket and the engine, applied
in order:

1. **Rate limiting** (:class:`RateLimiter`): a token bucket per client
   identity.  An empty bucket rejects immediately with 429 and a
   ``Retry-After`` hint derived from the refill rate -- never a sleep on
   the server, so one chatty client cannot occupy a handler thread.
2. **Bounded queue** (:class:`AdmissionController`): at most
   ``max_concurrency`` requests execute; up to ``queue_depth`` more may
   wait for a slot.  Beyond that the server is genuinely overloaded and
   sheds load with 503 + ``Retry-After`` instead of queueing unboundedly.
3. **Concurrency semaphore**: the slot itself.  Admitted requests block
   (in their own handler thread) until a slot frees, then run.

Every admitted request is guaranteed to run to completion -- the drain
logic counts admissions, not executions -- which is what makes SIGTERM
lossless for accepted work.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..service.cache import LRUCache


def jittered_retry_after(
    base: float, key: str, seed: int = 0, spread: float = 0.5
) -> float:
    """Deterministic per-client jitter on a ``Retry-After`` hint.

    After a mass rejection (a shard respawn 503s a burst, a drain turns
    everyone away) every client holding the *same* hint retries in
    lockstep and recreates the thundering herd.  Spreading the hint
    multiplicatively over ``[base, base * (1 + spread)]`` breaks the
    herd up -- and deriving the offset from ``SHA-256(seed ':' key)``
    instead of an RNG keeps it reproducible: a given (seed, client)
    pair always receives the same hint, so responses stay byte-stable
    for tests and for the chaos harness's oracle comparisons.
    """

    if base <= 0.0 or spread <= 0.0:
        return base
    digest = hashlib.sha256(
        f"{seed}:{key}".encode("utf-8", "replace")
    ).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (1.0 + spread * fraction)


class AdmissionError(Exception):
    """A request was refused admission (rate limit or queue bound).

    ``status`` is the HTTP status the refusal maps to; ``retry_after``
    is the server's (advisory) seconds-until-retry hint.
    """

    status = 503
    error_type = "AdmissionError"

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = max(retry_after, 0.0)


class RateLimitedError(AdmissionError):
    """The client's token bucket is empty (HTTP 429)."""

    status = 429
    error_type = "RateLimitedError"


class QueueFullError(AdmissionError):
    """Both the execution slots and the wait queue are full (HTTP 503)."""

    status = 503
    error_type = "QueueFullError"


class ServerDrainingError(AdmissionError):
    """The server is draining for shutdown; no new work (HTTP 503)."""

    status = 503
    error_type = "ServerDrainingError"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` never blocks: it returns 0.0 on success or the
    seconds until enough tokens will have refilled.  The clock is
    injectable so tests never sleep.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; else return seconds until refill."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._updated) * self.rate,
            )
            self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self) -> float:
        with self._lock:
            now = self._clock()
            return min(
                float(self.burst),
                self._tokens + (now - self._updated) * self.rate,
            )


class RateLimiter:
    """Per-client token buckets behind a bounded LRU.

    Client identities are free-form strings (the daemon uses the
    ``X-Repro-Client`` header, falling back to the peer address).  The
    bucket table is itself bounded: a flood of distinct identities
    evicts the least-recently-seen bucket instead of growing without
    bound -- an evicted client simply starts over with a full bucket,
    which errs on the side of admitting.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = int(burst) if burst is not None else max(1, int(rate))
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        self._clock = clock
        self._buckets = LRUCache(max_clients)
        self._lock = threading.Lock()

    def check(self, client: str) -> None:
        """Admit or raise :class:`RateLimitedError` with a retry hint."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets.put(client, bucket)
        wait = bucket.try_acquire()
        if wait > 0.0:
            raise RateLimitedError(
                f"client {client!r} exceeded {self.rate:g} requests/s "
                f"(burst {self.burst})",
                retry_after=wait,
            )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
        }


class AdmissionController:
    """Bounded queue + concurrency semaphore (+ optional rate limiter).

    ``admit`` is a context manager: entered, the caller holds one of the
    ``max_concurrency`` execution slots (having possibly waited in the
    bounded queue for it); exiting releases the slot.  Refusals raise
    :class:`RateLimitedError` / :class:`QueueFullError` *before* any
    waiting happens, so rejected requests cost nothing.
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        queue_depth: int = 16,
        rate_limit: float = 0.0,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.limiter = (
            RateLimiter(rate_limit, burst=burst, clock=clock)
            if rate_limit > 0
            else None
        )
        self._slots = threading.BoundedSemaphore(max_concurrency)
        self._lock = threading.Lock()
        self._waiting = 0
        self._active = 0
        self._rejected_rate = 0
        self._rejected_queue = 0
        self._admitted = 0

    @contextmanager
    def admit(self, client: str) -> Iterator[None]:
        if self.limiter is not None:
            try:
                self.limiter.check(client)
            except RateLimitedError:
                with self._lock:
                    self._rejected_rate += 1
                raise
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._waiting >= self.queue_depth:
                    self._rejected_queue += 1
                    raise QueueFullError(
                        f"server saturated: {self.max_concurrency} "
                        f"executing and {self._waiting} queued "
                        f"(queue_depth {self.queue_depth})",
                        retry_after=1.0,
                    )
                self._waiting += 1
            try:
                self._slots.acquire()
            finally:
                with self._lock:
                    self._waiting -= 1
        try:
            with self._lock:
                self._admitted += 1
                self._active += 1
            yield
        finally:
            with self._lock:
                self._active -= 1
            self._slots.release()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            snap: Dict[str, Any] = {
                "max_concurrency": self.max_concurrency,
                "queue_depth": self.queue_depth,
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "rejected_rate_limited": self._rejected_rate,
                "rejected_queue_full": self._rejected_queue,
            }
        snap["rate_limit"] = (
            None if self.limiter is None else self.limiter.snapshot()
        )
        return snap
