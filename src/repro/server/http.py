"""HTTP plumbing for the serving daemon (stdlib ``http.server`` only).

The transport layer and nothing else: a threaded HTTP/1.1 server whose
handler reads the request (with a bounded body), hands ``(method, path,
query, headers, body, client)`` to the application's ``handle`` method,
and writes the returned :class:`HttpResponse` back with an explicit
``Content-Length`` so keep-alive connections work.  All routing,
admission, and engine logic lives in :mod:`repro.server.app`; everything
here is mechanical and app-agnostic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__ as PACKAGE_VERSION
from .protocol import PROTOCOL_VERSION

#: Refuse request bodies larger than this many bytes (HTTP 413).
DEFAULT_MAX_BODY_BYTES = 8 << 20


@dataclass
class HttpResponse:
    """One response to write: status, body bytes, and headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
        sort_keys: bool = True,
    ) -> "HttpResponse":
        body = json.dumps(payload, sort_keys=sort_keys, indent=2) + "\n"
        return cls(
            status=status,
            body=body.encode("utf-8"),
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def ndjson(
        cls,
        text: str,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        if text and not text.endswith("\n"):
            text += "\n"
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="application/x-ndjson",
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls,
        text: str,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
            headers=dict(headers or {}),
        )

    @classmethod
    def error(
        cls,
        status: int,
        error_type: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> "HttpResponse":
        """A structured JSON error, optionally with a ``Retry-After`` hint.

        ``Retry-After`` is integral seconds (per RFC 9110), rounded up so
        the hint never undershoots; the exact float rides in the JSON
        body as ``retry_after_seconds`` for clients that want precision.
        """

        headers: Dict[str, str] = {}
        payload: Dict[str, Any] = {
            "ok": False,
            "error": {"type": error_type, "message": message, "status": status},
        }
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
            payload["error"]["retry_after_seconds"] = round(retry_after, 3)
        return cls.json(payload, status=status, headers=headers)


class RequestHandler(BaseHTTPRequestHandler):
    """Reads one request, delegates to ``server.app``, writes the response."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{PACKAGE_VERSION}"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET", body=b"")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        body = self._read_body()
        if body is None:
            return  # error already written
        self._dispatch("POST", body=body)

    # ------------------------------------------------------------------
    def _read_body(self) -> Optional[bytes]:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._write(
                HttpResponse.error(
                    411, "LengthRequired", "POST requires Content-Length"
                )
            )
            return None
        try:
            length = int(length_header)
        except ValueError:
            self._write(
                HttpResponse.error(
                    400, "BadRequest", "malformed Content-Length"
                )
            )
            return None
        limit = self.server.app.max_body_bytes
        if length > limit:
            self._write(
                HttpResponse.error(
                    413,
                    "PayloadTooLarge",
                    f"request body of {length} bytes exceeds the "
                    f"{limit}-byte limit; split the batch",
                )
            )
            return None
        return self.rfile.read(length)

    def _client_identity(self) -> str:
        header = self.headers.get("X-Repro-Client")
        if header:
            return header.strip()
        return self.client_address[0]

    def _dispatch(self, method: str, body: bytes) -> None:
        app = self.server.app
        parsed = urlsplit(self.path)
        query = parse_qs(parsed.query)
        headers = {key.lower(): value for key, value in self.headers.items()}
        try:
            response = app.handle(
                method,
                parsed.path,
                query,
                headers,
                body,
                client=self._client_identity(),
            )
        except Exception as exc:  # noqa: BLE001 - the transport must answer
            app.log(f"500 on {method} {parsed.path}: {exc!r}")
            response = HttpResponse.error(
                500, type(exc).__name__, f"internal server error: {exc}"
            )
        self._write(response)

    def _write(self, response: HttpResponse) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            self.send_header("X-Repro-Protocol", str(PROTOCOL_VERSION))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response; nothing to salvage.
            self.close_connection = True

    # Route http.server's chatty per-request logging through the app's
    # verbosity switch instead of unconditionally spamming stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        self.server.app.log(
            f"{self.client_address[0]} {format % args}", access=True
        )


class ReproHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one application object."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: Any):
        super().__init__(address, RequestHandler)
        self.app = app

    @property
    def port(self) -> int:
        return self.server_address[1]


def first_query_value(
    query: Dict[str, List[str]], name: str
) -> Optional[str]:
    values = query.get(name)
    return values[0] if values else None
