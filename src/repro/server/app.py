"""The serving application: routes, engine wiring, drain, observability.

:class:`ServerApp` is the daemon's brain.  It owns exactly one result
cache, one intra-operator cache (process-wide already), one circuit
breaker, and one counter registry -- shared by every request -- while
each ``POST /v1/analyze`` call gets a lightweight
:class:`~repro.service.engine.BatchEngine` facade over that shared state
so per-request knobs (the deadline) never race between calls.  Requests
ride the exact schemas and content keys of :mod:`repro.service.requests`,
so a result served over the wire is byte-identical to the same analysis
run through ``run_batch`` directly, and the LRU cache keeps earning
across calls.

Endpoints
---------
``POST /v1/analyze``  one JSON request object, or a JSON-lines /
                      ``{"requests": [...]}`` batch; responses mirror the
                      batch engine's deterministic result records
``GET  /healthz``     liveness + protocol handshake (always 200)
``GET  /readyz``      readiness (503 while draining)
``GET  /metrics``     text exposition (Prometheus-flavored) or
                      ``?format=json``
``GET  /stats``       cache / admission / resilience / certification
                      rollups as JSON

Shutdown follows :mod:`repro.service.shutdown` semantics: draining stops
*admission* (503 + ``Retry-After``), every already-accepted request runs
to completion, and the journal (if any) is flushed before the process
exits -- SIGTERM never loses accepted work.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..service.engine import BatchEngine, EngineConfig
from ..service.intra_cache import intra_cache_stats
from ..service.journal import BatchJournal
from ..service.metrics import CounterRegistry, LatencyReservoir, Stopwatch
from ..service.report import BatchReport
from .admission import (
    AdmissionController,
    AdmissionError,
    ServerDrainingError,
    jittered_retry_after,
)
from .http import HttpResponse, ReproHTTPServer, first_query_value
from .protocol import protocol_info

#: Retry-After hint handed out while the server drains for shutdown.
DRAIN_RETRY_AFTER = 2.0


class BadRequestError(ValueError):
    """The request body could not be understood (HTTP 400)."""


def parse_analyze_payloads(
    body: bytes, content_type: str
) -> Tuple[List[Union[Dict[str, Any], str]], bool]:
    """Decode a ``POST /v1/analyze`` body into engine payloads.

    Returns ``(payloads, single)``.  Accepted shapes: one JSON object
    (single mode), a JSON array, ``{"requests": [...]}``, or JSON-lines
    (forced by an ``application/x-ndjson`` content type).  Undecodable
    JSON-lines entries pass through as raw strings so the engine records
    a structured per-line error at the right index, exactly like
    ``repro batch``.  Shared by the single-process :class:`ServerApp`
    and the sharded router, so both fronts accept identical bodies.
    """

    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequestError(f"body is not valid UTF-8: {exc}") from None
    stripped = text.strip()
    if not stripped:
        raise BadRequestError("empty request body")
    ndjson = content_type.split(";")[0].strip() == "application/x-ndjson"
    if not ndjson:
        try:
            decoded = json.loads(stripped)
        except ValueError:
            ndjson = True  # multi-line body: fall through to JSON-lines
        else:
            if isinstance(decoded, list):
                return list(decoded), False
            if isinstance(decoded, dict) and "requests" in decoded:
                requests = decoded["requests"]
                if not isinstance(requests, list):
                    raise BadRequestError('"requests" must be a list')
                return list(requests), False
            if isinstance(decoded, dict):
                return [decoded], True
            raise BadRequestError(
                "body must be a JSON object, array, or JSON lines"
            )
    payloads: List[Union[Dict[str, Any], str]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payloads.append(json.loads(line))
        except ValueError:
            payloads.append(line)  # engine records the structured error
    if not payloads:
        raise BadRequestError("empty request body")
    return payloads, False


def resolve_deadline(
    query: Dict[str, List[str]],
    headers: Mapping[str, str],
    default_deadline: Optional[float],
    max_deadline: Optional[float],
) -> Optional[float]:
    """The effective per-request deadline for one analyze call.

    ``X-Repro-Deadline`` (or ``?deadline=``) wins over the server
    default, clamped by ``max_deadline``; malformed values raise
    :class:`BadRequestError`.
    """

    raw = headers.get("x-repro-deadline") or first_query_value(
        query, "deadline"
    )
    if raw is None:
        return default_deadline
    try:
        deadline = float(raw)
    except ValueError:
        raise BadRequestError(
            f"deadline must be a positive number, got {raw!r}"
        ) from None
    if deadline <= 0:
        raise BadRequestError("deadline must be positive")
    if max_deadline is not None:
        deadline = min(deadline, max_deadline)
    return deadline


def render_metrics_text(stats: Dict[str, Any]) -> str:
    """Prometheus-flavored text exposition of a /stats payload.

    Shared by the single-process app and the sharded router: the router
    feeds an *aggregated* stats dict (reservoirs merged, counters
    summed) and gets the same metric names out, plus per-shard health
    gauges when a ``shards`` rollup is present.
    """

    lines: List[str] = ["# repro serve metrics"]

    def emit(name: str, value: Any, labels: str = "") -> None:
        if value is None or isinstance(value, bool):
            return
        lines.append(f"repro_{name}{labels} {value}")

    emit("uptime_seconds", stats["uptime_seconds"])
    for name, value in stats["serving"].items():
        emit("serving_total", value, f'{{counter="{name}"}}')
    admission = stats["admission"]
    for name in (
        "active",
        "waiting",
        "admitted",
        "rejected_rate_limited",
        "rejected_queue_full",
    ):
        emit(f"admission_{name}", admission[name])
    latency = stats["latency"]
    emit("latency_seconds_count", latency["count"])
    for quantile in ("p50", "p95", "p99"):
        emit(
            "latency_seconds",
            latency[quantile],
            f'{{quantile="{quantile[1:]}"}}',
        )
    emit("latency_seconds_max", latency["max"])
    for scope in ("cache", "intra_cache"):
        for name in ("hits", "misses", "evictions", "size"):
            emit(f"{scope}_{name}", stats[scope][name])
    for name, value in stats["engine_counters"].items():
        emit("engine_total", value, f'{{counter="{name}"}}')
    journal = stats.get("journal")
    if journal:
        emit("journal_degraded", 1 if journal.get("degraded") else 0)
        emit("journal_appended_total", journal.get("appended"))
        emit("journal_write_errors_total", journal.get("write_errors"))
        emit("journal_records", journal.get("completed"))
        emit("journal_bytes", journal.get("file_bytes"))
        emit("journal_compactions_total", journal.get("compactions"))
        emit(
            "journal_corrupt_quarantined_total",
            journal.get("corrupt_quarantined"),
        )
        emit("journal_replay_seconds", journal.get("replay_seconds"))
    shards = stats.get("shards")
    if shards:
        emit("shards_total", shards["count"])
        emit("shards_ready", shards["ready"])
        emit("shards_failed", shards.get("failed"))
        emit("shards_respawns_total", shards["respawns"])
        emit("shards_contained_total", shards.get("contained"))
        emit("shards_timeouts_total", shards.get("timeouts"))
        emit(
            "shards_journals_degraded", shards.get("journals_degraded")
        )
        # Tier-wide durable-state rollups (summed across shard journals).
        emit("journal_records", shards.get("journal_records"))
        emit("journal_bytes", shards.get("journal_bytes"))
        emit("journal_compactions_total", shards.get("journal_compactions"))
        emit(
            "journal_corrupt_quarantined_total",
            shards.get("journal_corrupt_quarantined"),
        )
        emit("journal_replay_seconds", shards.get("journal_replay_seconds"))
        for shard in shards["shards"]:
            emit(
                "shard_up",
                1 if shard["state"] == "ready" else 0,
                f'{{shard="{shard["label"]}"}}',
            )
            emit(
                "shard_respawns",
                shard["respawns"],
                f'{{shard="{shard["label"]}"}}',
            )
    resharding = stats.get("resharding")
    if resharding:
        emit("resharding_active", 1 if resharding.get("active") else 0)
        emit("handoff_pending", resharding.get("pending"))
        emit("reshards_total", resharding.get("reshards_completed"))
        emit("reshard_keys_moved_total", resharding.get("keys_moved"))
    hot_keys = stats.get("hot_keys")
    if hot_keys:
        emit("hot_keys", hot_keys.get("hot"))
        emit("hot_keys_tracked", hot_keys.get("tracked"))
        emit("replica_reads_total", hot_keys.get("replica_reads"))
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class ServerConfig:
    """Daemon tuning knobs (engine + admission + transport)."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: Engine pool width for each analyze call (thread executor).
    jobs: int = 1
    cache_size: int = 4096
    #: Concurrent analyze calls executing (each may fan out ``jobs`` wide).
    max_concurrency: int = 4
    #: Analyze calls allowed to wait for a slot before 503s start.
    queue_depth: int = 16
    #: Per-client admission rate in requests/second (0 disables).
    rate_limit: float = 0.0
    #: Token-bucket burst capacity (None: max(1, int(rate_limit))).
    burst: Optional[int] = None
    #: Default per-request deadline applied when the client sends none.
    default_deadline: Optional[float] = None
    #: Ceiling on client-requested deadlines (None: unbounded).
    max_deadline: Optional[float] = None
    #: Run every certifiable request under paranoid certification.
    paranoid: bool = False
    #: Write-ahead journal path (None: no journal).
    journal_path: Optional[str] = None
    #: Auto-compact the journal past this many on-disk lines (None: off).
    compact_max_records: Optional[int] = None
    #: Auto-compact the journal past this many on-disk bytes (None: off).
    compact_max_bytes: Optional[int] = None
    max_body_bytes: int = 8 << 20
    #: Ceiling on requests per analyze call (split bigger batches).
    max_batch_requests: int = 10000
    #: Seed for the deterministic per-client Retry-After jitter on
    #: 429/503 responses (see ``admission.jittered_retry_after``).
    retry_jitter_seed: int = 0
    #: Log per-request access lines to stderr.
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if self.rate_limit < 0:
            raise ValueError("rate_limit must be non-negative")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if self.max_deadline is not None and self.max_deadline <= 0:
            raise ValueError("max_deadline must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be positive")
        if self.compact_max_records is not None and self.compact_max_records < 1:
            raise ValueError("compact_max_records must be positive (or None)")
        if self.compact_max_bytes is not None and self.compact_max_bytes < 1:
            raise ValueError("compact_max_bytes must be positive (or None)")


class ServerApp:
    """Routes + shared engine state + graceful drain."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self._engine_config = EngineConfig(
            jobs=self.config.jobs,
            cache_size=self.config.cache_size,
            executor="thread",
            deadline_seconds=self.config.default_deadline,
            paranoid=self.config.paranoid,
        )
        #: Owns the shared cache / counters / breaker every call reuses.
        self._base = BatchEngine(self._engine_config)
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            rate_limit=self.config.rate_limit,
            burst=self.config.burst,
        )
        self.serving = CounterRegistry()
        self.latency = LatencyReservoir()
        self.uptime = Stopwatch()
        self.max_body_bytes = self.config.max_body_bytes
        self._journal: Optional[BatchJournal] = None
        if self.config.journal_path:
            self._journal = BatchJournal(
                self.config.journal_path,
                resume=True,
                compact_max_records=self.config.compact_max_records,
                compact_max_bytes=self.config.compact_max_bytes,
            )
            # Boot is the cheapest compaction point: replay just paid for
            # reading every line, so fold the journal down before serving.
            self._journal.maybe_compact()
        #: The journal is single-writer; journaled runs serialize on this.
        self._journal_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting analyze work; in-flight requests keep running."""
        with self._state_lock:
            self._draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no analyze call is in flight; True if drained."""
        with self._idle:
            if self._inflight == 0:
                return True
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self._journal is not None:
            self._journal.flush()
            self._journal.close()
            self._journal = None

    def log(self, message: str, access: bool = False) -> None:
        if access and not self.config.verbose:
            return
        import sys

        print(f"repro serve: {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Engine access
    # ------------------------------------------------------------------
    def _engine_for(self, deadline: Optional[float]) -> BatchEngine:
        """A per-call engine facade over the shared cache/counters/breaker.

        ``run_batch`` keeps per-run state on the engine instance, so
        concurrent calls each get their own; the expensive, shared parts
        (LRU cache, counter registry, circuit breaker -- all thread-safe)
        are swapped in so results and statistics accumulate across calls.
        """

        if deadline == self._engine_config.deadline_seconds:
            config = self._engine_config
        else:
            config = replace(self._engine_config, deadline_seconds=deadline)
        engine = BatchEngine(config)
        engine.cache = self._base.cache
        engine.counters = self._base.counters
        engine.breaker = self._base.breaker
        return engine

    def arm_journal_fault(self, mode: str, after: int = 0) -> bool:
        """Arm a one-shot journal write fault (chaos harness only).

        Returns False when the app runs without a journal.  Reached via
        the shard worker's env-guarded ``chaos`` op; the injected
        ``OSError`` then exercises the journal's real degrade path.
        """

        if self._journal is None:
            return False
        self._journal.inject_write_fault(mode, after=after)
        return True

    def arm_compact_kill(self, step: str) -> bool:
        """Arm a SIGKILL at a compaction step (chaos harness only).

        Returns False when the app runs without a journal.  Reached via
        the shard worker's env-guarded ``chaos`` op; the next compaction
        then dies at ``step``, proving the crash-safe rewrite end to end.
        """

        if self._journal is None:
            return False
        self._journal.inject_compact_kill(step)
        return True

    def compact_journal(self) -> Optional[Dict[str, Any]]:
        """Force a journal compaction now (the admin surface).

        Serialized with journaled batches on the journal lock.  Returns
        the compaction summary, or ``None`` when the app runs without a
        journal or the journal is degraded (a failing volume is no place
        to rewrite the only valid copy).
        """

        if self._journal is None:
            return None
        with self._journal_lock:
            return self._journal.compact()

    def journal_stats(self) -> Optional[Dict[str, Any]]:
        return self._journal.stats() if self._journal is not None else None

    def load_cache(self, path: str) -> int:
        return self._base.load_cache(path)

    def save_cache(self, path: str) -> int:
        return self._base.save_cache(path)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        self.serving.increment("http_requests")
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/readyz" and method == "GET":
            return self._readyz()
        if path == "/metrics" and method == "GET":
            return self._metrics(query)
        if path == "/stats" and method == "GET":
            return self._stats()
        if path == "/admin/compact":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /admin/compact"
                )
            return self._admin_compact()
        if path == "/v1/analyze":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /v1/analyze"
                )
            return self._analyze(query, headers, body, client)
        self.serving.increment("http_not_found")
        return HttpResponse.error(
            404,
            "NotFound",
            f"no route {method} {path}; see /healthz /readyz /metrics "
            "/stats /admin/compact /v1/analyze",
        )

    def _admin_compact(self) -> HttpResponse:
        if self._journal is None:
            return HttpResponse.error(
                409,
                "NoJournal",
                "this server runs without a journal; nothing to compact",
            )
        summary = self.compact_journal()
        if summary is None:
            return HttpResponse.error(
                409,
                "JournalDegraded",
                "journal is degraded (non-durable); fix the volume and "
                "restart before compacting",
            )
        self.serving.increment("compactions")
        return HttpResponse.json({"ok": True, "compact": summary})

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> HttpResponse:
        payload = dict(protocol_info())
        payload.update(
            {
                "ok": True,
                "draining": self.draining,
                "uptime_seconds": round(self.uptime.elapsed(), 3),
            }
        )
        return HttpResponse.json(payload)

    def _readyz(self) -> HttpResponse:
        if self.draining:
            return HttpResponse.error(
                503,
                "ServerDrainingError",
                "server is draining for shutdown",
                retry_after=DRAIN_RETRY_AFTER,
            )
        return HttpResponse.json({"ready": True})

    def stats_dict(self) -> Dict[str, Any]:
        """The /stats payload: every rollup the daemon keeps."""
        serving = self.serving.as_dict()
        return {
            "protocol": protocol_info(),
            "uptime_seconds": round(self.uptime.elapsed(), 3),
            "config": {
                "jobs": self.config.jobs,
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
                "rate_limit": self.config.rate_limit,
                "paranoid": self.config.paranoid,
                "journal": bool(self.config.journal_path),
                "compact_max_records": self.config.compact_max_records,
                "compact_max_bytes": self.config.compact_max_bytes,
                "default_deadline": self.config.default_deadline,
            },
            "serving": serving,
            "admission": self.admission.snapshot(),
            "latency": self.latency.summary(),
            "cache": self._base.cache.stats().as_dict(),
            "intra_cache": intra_cache_stats().as_dict(),
            "engine_counters": self._base.counters.as_dict(),
            "breaker": self._base.breaker.snapshot(),
            "certification": {
                "certified": serving.get("certified", 0),
                "discrepancies": serving.get("discrepancies", 0),
            },
            "journal": (
                self._journal.stats() if self._journal is not None else None
            ),
        }

    def _stats(self) -> HttpResponse:
        return HttpResponse.json(self.stats_dict())

    def _metrics(self, query: Dict[str, List[str]]) -> HttpResponse:
        stats = self.stats_dict()
        if first_query_value(query, "format") == "json":
            return HttpResponse.json(stats)
        return HttpResponse.text(render_metrics_text(stats))

    # ------------------------------------------------------------------
    # The analyze endpoint
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_payloads(
        body: bytes, content_type: str
    ) -> Tuple[List[Union[Dict[str, Any], str]], bool]:
        return parse_analyze_payloads(body, content_type)

    def _deadline_from(
        self, query: Dict[str, List[str]], headers: Mapping[str, str]
    ) -> Optional[float]:
        return resolve_deadline(
            query,
            headers,
            self.config.default_deadline,
            self.config.max_deadline,
        )

    def _analyze(
        self,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        watch = Stopwatch()
        self.serving.increment("analyze_calls")
        with self._state_lock:
            if self._draining:
                self.serving.increment("rejected_draining")
                drain = ServerDrainingError(
                    "server is draining for shutdown; retry against "
                    "another instance",
                    retry_after=DRAIN_RETRY_AFTER,
                )
                return self._admission_response(drain, client)
            # Accepted: from here the request is guaranteed to complete
            # (the drain waits on this counter).
            self._inflight += 1
        try:
            try:
                payloads, single = self._parse_payloads(
                    body, headers.get("content-type", "")
                )
                deadline = self._deadline_from(query, headers)
            except BadRequestError as exc:
                self.serving.increment("bad_requests")
                return HttpResponse.error(400, "BadRequest", str(exc))
            if len(payloads) > self.config.max_batch_requests:
                self.serving.increment("bad_requests")
                return HttpResponse.error(
                    400,
                    "BatchTooLarge",
                    f"{len(payloads)} requests exceed the per-call limit "
                    f"of {self.config.max_batch_requests}; split the batch",
                )
            try:
                with self.admission.admit(client):
                    report = self._run(payloads, deadline)
            except AdmissionError as exc:
                return self._admission_response(exc, client)
            return self._report_response(report, single)
        finally:
            self.latency.record(watch.stop())
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def run_payloads(
        self,
        payloads: List[Union[Dict[str, Any], str]],
        deadline: Optional[float] = None,
    ) -> BatchReport:
        """Run decoded payloads through the shared engine state.

        The non-HTTP entry point shard workers use: identical engine
        semantics (cache, journal, serving counters) and identical
        per-call latency accounting as ``POST /v1/analyze``, minus the
        transport and admission layers (the router owns those).
        """

        watch = Stopwatch()
        try:
            return self._run(payloads, deadline)
        finally:
            self.latency.record(watch.stop())

    def _run(
        self,
        payloads: List[Union[Dict[str, Any], str]],
        deadline: Optional[float],
    ) -> BatchReport:
        engine = self._engine_for(deadline)
        if self._journal is not None:
            with self._journal_lock:
                report = engine.run_batch(payloads, journal=self._journal)
        else:
            report = engine.run_batch(payloads)
        self.serving.increment("requests_served", report.requests)
        self.serving.increment("request_errors", report.errors)
        self.serving.increment("cached_answers", report.cached_answers)
        self.serving.increment("computed", report.computed)
        if report.certified:
            self.serving.increment("certified", report.certified)
        discrepancies = len(report.discrepancies())
        if discrepancies:
            self.serving.increment("discrepancies", discrepancies)
        return report

    def _admission_response(
        self, exc: AdmissionError, client: str
    ) -> HttpResponse:
        self.serving.increment(f"http_{exc.status}")
        return HttpResponse.error(
            exc.status,
            exc.error_type,
            str(exc),
            retry_after=jittered_retry_after(
                exc.retry_after, client, self.config.retry_jitter_seed
            ),
        )

    @staticmethod
    def _report_response(report: BatchReport, single: bool) -> HttpResponse:
        headers = {
            "X-Repro-Requests": str(report.requests),
            "X-Repro-Errors": str(report.errors),
            "X-Repro-Cached": str(report.cached_answers),
        }
        if single:
            record = report.entries[0].result_record()
            body = json.dumps(record, sort_keys=True, separators=(",", ":"))
            return HttpResponse(
                status=200,
                body=(body + "\n").encode("utf-8"),
                content_type="application/json",
                headers=headers,
            )
        # The exact bytes `repro batch` would print: the wire format IS
        # the engine's deterministic JSON-lines stream.
        return HttpResponse.ndjson(report.to_jsonl(), headers=headers)


class ReproServer:
    """The daemon: an HTTP server bound to a :class:`ServerApp`.

    ``start()`` serves from a background thread (tests, embedding);
    ``serve_forever()`` blocks (the CLI).  ``shutdown(drain=True)``
    performs the lossless drain: stop admission, wait for in-flight
    work, stop the listener, flush the journal.
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.app = ServerApp(self.config)
        self.httpd = ReproHTTPServer(
            (self.config.host, self.config.port), self.app
        )
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self._drained = True

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the daemon; returns True if the drain completed.

        Idempotent: explicit calls compose with ``__exit__`` (the second
        call reports the first call's drain outcome).
        """
        if self._stopped:
            return self._drained
        self._stopped = True
        drained = True
        if drain:
            self.app.begin_drain()
            drained = self.app.wait_idle(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()
        self._drained = drained
        return drained

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)
