"""Architecture substrate: functional simulators and analytical models.

* :mod:`repro.arch.pe` / :mod:`repro.arch.systolic` / :mod:`repro.arch.fusecu`
  -- register-accurate functional models of the XS PE, systolic arrays and
  the FuseCU fusion mappings (the RTL stand-in).
* :mod:`repro.arch.memory` / :mod:`repro.arch.perf` -- the memory system and
  first-order cycle/utilization model.
* :mod:`repro.arch.accelerators` -- the five evaluated platforms and their
  dataflow spaces (paper Table III).
* :mod:`repro.arch.area` -- the gate-level area model (paper Fig. 12).
"""

from .memory import KIB, MIB, MemorySpec, PAPER_BUFFER_SWEEP_BYTES, PAPER_DEFAULT_MEMORY
from .pe import PEMode, PEOutputs, XSPE
from .systolic import RunStats, SystolicArray
from .fusecu import FuseCUArray, FuseCUConfig, FusedRunResult
from .perf import (
    PlatformPerf,
    SegmentPerf,
    fill_efficiency,
    matmul_segment_perf,
    spatial_efficiency,
    streaming_segment_perf,
)
from .accelerators import (
    ALL_PLATFORMS,
    AcceleratorSpec,
    TilingFlex,
    constrained_intra,
    evaluate_graph,
    fusecu,
    gemmini,
    planaria,
    single_nra_square,
    tpuv4i,
    unfcu,
    weight_tensor,
)
from .controller import CUSetting, FuseCUProgram, compile_fused_mapping, compile_intra_mapping
from .execution import ExecutionResult, TrafficCounter, execute_matmul_dataflow, validate_against_analytical
from .fused_execution import (
    FusedExecutionResult,
    execute_fused_pair,
    validate_fused_against_analytical,
)
from .attention_execution import (
    AttentionExecutionResult,
    execute_fused_attention,
    fused_attention_traffic_model,
    reference_attention,
)
from .energy import EnergyModel, EnergyReport, energy_of
from .area import (
    AreaBreakdown,
    AreaComponent,
    fusecu_area,
    gemmini_area,
    planaria_area,
    tpuv4i_area,
    unfcu_area,
)

__all__ = [
    "AttentionExecutionResult",
    "execute_fused_attention",
    "fused_attention_traffic_model",
    "reference_attention",
    "FusedExecutionResult",
    "execute_fused_pair",
    "validate_fused_against_analytical",
    "CUSetting",
    "FuseCUProgram",
    "compile_fused_mapping",
    "compile_intra_mapping",
    "ExecutionResult",
    "TrafficCounter",
    "execute_matmul_dataflow",
    "validate_against_analytical",
    "EnergyModel",
    "EnergyReport",
    "energy_of",
    "KIB",
    "MIB",
    "MemorySpec",
    "PAPER_BUFFER_SWEEP_BYTES",
    "PAPER_DEFAULT_MEMORY",
    "PEMode",
    "PEOutputs",
    "XSPE",
    "RunStats",
    "SystolicArray",
    "FuseCUArray",
    "FuseCUConfig",
    "FusedRunResult",
    "PlatformPerf",
    "SegmentPerf",
    "fill_efficiency",
    "matmul_segment_perf",
    "spatial_efficiency",
    "streaming_segment_perf",
    "ALL_PLATFORMS",
    "AcceleratorSpec",
    "TilingFlex",
    "constrained_intra",
    "evaluate_graph",
    "fusecu",
    "gemmini",
    "planaria",
    "single_nra_square",
    "tpuv4i",
    "unfcu",
    "weight_tensor",
    "AreaBreakdown",
    "AreaComponent",
    "fusecu_area",
    "gemmini_area",
    "planaria_area",
    "tpuv4i_area",
    "unfcu_area",
]
