"""Execute analytical dataflows on the functional array (a dataflow VM).

This module closes the loop between the two halves of the library: the
*analytical* side (a :class:`~repro.dataflow.spec.Dataflow` and its
predicted memory-access counts) and the *functional* side (the
register-accurate systolic array).  :func:`execute_matmul_dataflow` walks
the tiled loop nest exactly as scheduled -- fetching operand tiles from a
simulated memory into a one-tile-per-tensor buffer, running each innermost
tile computation on a :class:`~repro.arch.systolic.SystolicArray`, and
spilling/merging output tiles -- while counting every element that crosses
the memory<->buffer boundary.

Two guarantees are then testable end to end:

* **numerics**: the result equals ``A @ B`` bit-for-bit (float64);
* **traffic**: the counted fetch/spill elements equal the analytical
  per-tensor access counts from :func:`repro.dataflow.cost.memory_access`
  (the same reuse rule, now realized operationally with real data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..ir.operator import TensorOperator
from ..dataflow.cost import memory_access
from ..dataflow.spec import Dataflow
from .systolic import SystolicArray


@dataclass
class TrafficCounter:
    """Element counts crossing the memory<->buffer boundary, per tensor."""

    reads: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, int] = field(default_factory=dict)

    def read(self, tensor: str, elements: int) -> None:
        self.reads[tensor] = self.reads.get(tensor, 0) + elements

    def write(self, tensor: str, elements: int) -> None:
        self.writes[tensor] = self.writes.get(tensor, 0) + elements

    def accesses(self, tensor: str) -> int:
        return self.reads.get(tensor, 0) + self.writes.get(tensor, 0)


@dataclass
class ExecutionResult:
    """Outcome of executing a dataflow with real data."""

    output: np.ndarray
    traffic: TrafficCounter
    tile_computations: int
    array_cycles: int


class _BufferSlot:
    """One buffered tile with its identity (tile indices per dim)."""

    __slots__ = ("tile_id", "data")

    def __init__(self) -> None:
        self.tile_id: Optional[Tuple[int, ...]] = None
        self.data: Optional[np.ndarray] = None


def _tile_slice(start: int, tile: int, extent: int) -> slice:
    return slice(start, min(start + tile, extent))


def execute_matmul_dataflow(
    operator: TensorOperator,
    dataflow: Dataflow,
    a: np.ndarray,
    b: np.ndarray,
    array: Optional[SystolicArray] = None,
) -> ExecutionResult:
    """Run an MM dataflow tile by tile with real operands.

    The buffer holds exactly one tile per tensor (the analytical model's
    working set).  The output tile accumulates in the buffer while inner
    reduction loops run; when the schedule revisits an output tile after
    eviction, the partial sums round-trip through memory -- counted as a
    write then a read, realizing the redundancy the multiplier rule
    predicts.  The paper's SINGLE convention counts one access per element
    per pass; :meth:`TrafficCounter` tracks reads and writes separately so
    both conventions can be checked.
    """

    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    dims = dict(operator.dims)
    m_dim, k_dim = operator.dims_of(operator.inputs[0].name)
    l_dim = operator.dims_of(operator.inputs[1].name)[1]
    if a.shape != (dims[m_dim], dims[k_dim]):
        raise ValueError(f"A shape {a.shape} mismatches operator dims")
    if b.shape != (dims[k_dim], dims[l_dim]):
        raise ValueError(f"B shape {b.shape} mismatches operator dims")

    tiling = dataflow.tiling.for_operator(operator)
    order = dataflow.schedule.order
    trip_counts = [math.ceil(dims[dim] / tiling[dim]) for dim in order]
    a_name = operator.inputs[0].name
    b_name = operator.inputs[1].name
    c_name = operator.output.name

    memory_c = np.zeros((dims[m_dim], dims[l_dim]))
    # Track which C tiles have ever been spilled (per (m,l) tile index).
    spilled: Dict[Tuple[int, int], bool] = {}

    slots = {a_name: _BufferSlot(), b_name: _BufferSlot(), c_name: _BufferSlot()}
    traffic = TrafficCounter()
    if array is None:
        array = SystolicArray(max(1, tiling[m_dim]), max(1, tiling[l_dim]))
    tile_computations = 0
    array_cycles = 0

    def loops(level: int, indices: Dict[str, int]) -> None:
        nonlocal tile_computations, array_cycles
        if level == len(order):
            _compute_tile(indices)
            return
        dim = order[level]
        for index in range(trip_counts[level]):
            indices[dim] = index
            loops(level + 1, indices)
        del indices[dim]

    def _fetch(
        name: str,
        tile_id: Tuple[int, ...],
        loader,
    ) -> np.ndarray:
        slot = slots[name]
        if slot.tile_id != tile_id:
            if name == c_name and slot.tile_id is not None:
                _spill_c(slot)
            slot.data = loader()
            slot.tile_id = tile_id
            if name != c_name:
                traffic.read(name, slot.data.size)
        assert slot.data is not None
        return slot.data

    def _spill_c(slot: _BufferSlot) -> None:
        assert slot.tile_id is not None and slot.data is not None
        m_idx, l_idx = slot.tile_id
        row = _tile_slice(m_idx * tiling[m_dim], tiling[m_dim], dims[m_dim])
        col = _tile_slice(l_idx * tiling[l_dim], tiling[l_dim], dims[l_dim])
        memory_c[row, col] = slot.data
        traffic.write(c_name, slot.data.size)
        spilled[(m_idx, l_idx)] = True

    def _load_c(m_idx: int, l_idx: int) -> np.ndarray:
        row = _tile_slice(m_idx * tiling[m_dim], tiling[m_dim], dims[m_dim])
        col = _tile_slice(l_idx * tiling[l_dim], tiling[l_dim], dims[l_dim])
        if spilled.get((m_idx, l_idx)):
            # Re-loading previously spilled partial sums: a memory read.
            traffic.read(c_name, memory_c[row, col].size)
            return memory_c[row, col].copy()
        return np.zeros((row.stop - row.start, col.stop - col.start))

    def _compute_tile(indices: Dict[str, int]) -> None:
        nonlocal tile_computations, array_cycles
        m_idx = indices[m_dim]
        k_idx = indices[k_dim]
        l_idx = indices[l_dim]
        row = _tile_slice(m_idx * tiling[m_dim], tiling[m_dim], dims[m_dim])
        red = _tile_slice(k_idx * tiling[k_dim], tiling[k_dim], dims[k_dim])
        col = _tile_slice(l_idx * tiling[l_dim], tiling[l_dim], dims[l_dim])
        a_tile = _fetch(a_name, (m_idx, k_idx), lambda: a[row, red].copy())
        b_tile = _fetch(b_name, (k_idx, l_idx), lambda: b[red, col].copy())
        c_tile = _fetch(c_name, (m_idx, l_idx), lambda: _load_c(m_idx, l_idx))
        partial, stats = array.matmul(a_tile, b_tile, mode="os")
        c_tile += partial
        tile_computations += 1
        array_cycles += stats.cycles

    loops(0, {})
    final_slot = slots[c_name]
    if final_slot.tile_id is not None:
        _spill_c(final_slot)
    return ExecutionResult(
        output=memory_c,
        traffic=traffic,
        tile_computations=tile_computations,
        array_cycles=array_cycles,
    )


def validate_against_analytical(
    operator: TensorOperator,
    dataflow: Dataflow,
    a: np.ndarray,
    b: np.ndarray,
) -> Tuple[bool, Dict[str, Tuple[int, int]]]:
    """Execute and compare measured vs. analytical per-tensor accesses.

    Returns ``(traffic_matches, {tensor: (measured, predicted)})`` under
    the paper's SINGLE convention (one access per element per pass: the
    output's re-loads are the redundant passes; its first-write is the
    single non-redundant access).
    """

    result = execute_matmul_dataflow(operator, dataflow, a, b)
    predicted = memory_access(operator, dataflow)
    comparison: Dict[str, Tuple[int, int]] = {}
    matches = True
    for tensor in operator.tensors:
        name = tensor.name
        if name == operator.output.name:
            # SINGLE convention: passes = spills; final state counts once.
            measured = result.traffic.writes.get(name, 0)
        else:
            measured = result.traffic.reads.get(name, 0)
        expected = predicted.per_tensor[name].accesses
        comparison[name] = (measured, expected)
        if measured != expected:
            matches = False
    return matches, comparison
