"""Execute fused dataflows with real data (the fused half of the VM).

Counterpart of :mod:`repro.arch.execution` for two-matmul chains: walks a
:class:`~repro.dataflow.fusion_nest.FusedDataflow`'s shared loops, runs the
producer's private nest to complete each intermediate tile *on the compute
unit* (zero memory traffic, the FuseCU claim), then the consumer's private
nest -- counting every element crossing the memory<->buffer boundary and
verifying numerics against ``(a @ b) @ d``.

Together with :func:`repro.dataflow.fusion_nest.fused_memory_access` this
makes the paper's Sec. III-B analytics operationally testable: for every
Fig. 4 pattern, measured traffic equals the analytical prediction and the
intermediate truly never moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..ir.operator import TensorOperator
from ..dataflow.fusion_nest import FusedChain, FusedDataflow, fused_memory_access
from .execution import TrafficCounter


@dataclass
class FusedExecutionResult:
    """Outcome of executing a fused pair with real operands."""

    output: np.ndarray
    traffic: TrafficCounter
    intermediate_traffic: int
    tile_computations: int


def _tile_slice(index: int, tile: int, extent: int) -> slice:
    start = index * tile
    return slice(start, min(start + tile, extent))


def execute_fused_pair(
    op1: TensorOperator,
    op2: TensorOperator,
    dataflow: FusedDataflow,
    a: np.ndarray,
    b: np.ndarray,
    d: np.ndarray,
) -> FusedExecutionResult:
    """Run a fused ``(a @ b) @ d`` chain under a fused dataflow.

    The chain must be ``op1: A x B = C`` and ``op2: C x D = E`` with
    ``op2.inputs[0] is op1.output``.  The intermediate tile accumulates in
    compute-unit storage and contributes zero memory traffic; the final
    output tile is buffered with spill/merge semantics identical to the
    single-operator engine, realizing the redundancy the multiplier rule
    predicts.
    """

    chain = FusedChain.from_ops([op1, op2])
    dataflow.validate(chain)
    tiling = dataflow.resolved_tiling(chain)
    dims = dict(chain.global_dims)

    # Global dim names: producer (M, K, L); consumer reduction is L, output
    # dim is its remaining global dim.
    m_dim, k_dim = chain.global_dims_of_tensor(0, op1.inputs[0].name)
    l_dim = chain.global_dims_of_tensor(0, op1.inputs[1].name)[1]
    n_dim = chain.global_dims_of_tensor(1, op2.output.name)[1]

    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    if a.shape != (dims[m_dim], dims[k_dim]):
        raise ValueError(f"A shape {a.shape} mismatches chain dims")
    if b.shape != (dims[k_dim], dims[l_dim]):
        raise ValueError(f"B shape {b.shape} mismatches chain dims")
    if d.shape != (dims[l_dim], dims[n_dim]):
        raise ValueError(f"D shape {d.shape} mismatches chain dims")

    a_name, b_name = op1.inputs[0].name, op1.inputs[1].name
    d_name, e_name = op2.inputs[1].name, op2.output.name

    traffic = TrafficCounter()
    memory_e = np.zeros((dims[m_dim], dims[n_dim]))
    spilled_e: Dict[Tuple[int, int], bool] = {}
    buffered: Dict[str, Tuple[Optional[tuple], Optional[np.ndarray]]] = {
        a_name: (None, None),
        b_name: (None, None),
        d_name: (None, None),
        e_name: (None, None),
    }
    tile_computations = 0

    def fetch(name: str, tile_id: tuple, loader) -> np.ndarray:
        current_id, data = buffered[name]
        if current_id != tile_id:
            if name == e_name and current_id is not None:
                spill_e(current_id, data)
            data = loader()
            buffered[name] = (tile_id, data)
            if name != e_name:
                traffic.read(name, data.size)
        assert data is not None
        return data

    def spill_e(tile_id: tuple, data: Optional[np.ndarray]) -> None:
        assert data is not None
        m_idx, n_idx = tile_id
        row = _tile_slice(m_idx, tiling[m_dim], dims[m_dim])
        col = _tile_slice(n_idx, tiling[n_dim], dims[n_dim])
        memory_e[row, col] = data
        traffic.write(e_name, data.size)
        spilled_e[tile_id] = True

    def load_e(m_idx: int, n_idx: int) -> np.ndarray:
        row = _tile_slice(m_idx, tiling[m_dim], dims[m_dim])
        col = _tile_slice(n_idx, tiling[n_dim], dims[n_dim])
        if spilled_e.get((m_idx, n_idx)):
            traffic.read(e_name, memory_e[row, col].size)
            return memory_e[row, col].copy()
        return np.zeros((row.stop - row.start, col.stop - col.start))

    def trip(dim: str) -> int:
        return math.ceil(dims[dim] / tiling[dim])

    # Shared loops cover the intermediate's dims (M and L, validated).
    shared = dataflow.shared_order
    producer_private = dataflow.private_orders[op1.name]
    consumer_private = dataflow.private_orders[op2.name]

    def shared_loop(level: int, indices: Dict[str, int]) -> None:
        nonlocal tile_computations
        if level == len(shared):
            body(indices)
            return
        dim = shared[level]
        for index in range(trip(dim)):
            indices[dim] = index
            shared_loop(level + 1, indices)
        del indices[dim]

    def body(indices: Dict[str, int]) -> None:
        nonlocal tile_computations
        m_idx = indices[m_dim]
        l_idx = indices[l_dim]
        row = _tile_slice(m_idx, tiling[m_dim], dims[m_dim])
        mid = _tile_slice(l_idx, tiling[l_dim], dims[l_dim])
        # Producer phase: complete the C tile in compute-unit storage.
        c_tile = np.zeros((row.stop - row.start, mid.stop - mid.start))
        for k_idx in range(trip(k_dim)):
            red = _tile_slice(k_idx, tiling[k_dim], dims[k_dim])
            a_tile = fetch(a_name, (m_idx, k_idx), lambda: a[row, red].copy())
            b_tile = fetch(b_name, (k_idx, l_idx), lambda: b[red, mid].copy())
            c_tile += a_tile @ b_tile
            tile_computations += 1
        # Consumer phase: stream D, accumulate E.
        for n_idx in range(trip(n_dim)):
            col = _tile_slice(n_idx, tiling[n_dim], dims[n_dim])
            d_tile = fetch(d_name, (l_idx, n_idx), lambda: d[mid, col].copy())
            e_tile = fetch(e_name, (m_idx, n_idx), lambda: load_e(m_idx, n_idx))
            e_tile += c_tile @ d_tile
            tile_computations += 1

    shared_loop(0, {})
    last_id, last_data = buffered[e_name]
    if last_id is not None:
        spill_e(last_id, last_data)
    return FusedExecutionResult(
        output=memory_e,
        traffic=traffic,
        intermediate_traffic=traffic.accesses(op1.output.name),
        tile_computations=tile_computations,
    )


def validate_fused_against_analytical(
    op1: TensorOperator,
    op2: TensorOperator,
    dataflow: FusedDataflow,
    a: np.ndarray,
    b: np.ndarray,
    d: np.ndarray,
) -> Tuple[bool, Dict[str, Tuple[int, int]]]:
    """Execute a fused pair and compare traffic with the analytical counts.

    Same convention as the single-operator validator: inputs compare reads,
    the output compares writes (one access per element per pass), and the
    intermediate must measure zero.
    """

    chain = FusedChain.from_ops([op1, op2])
    result = execute_fused_pair(op1, op2, dataflow, a, b, d)
    predicted = fused_memory_access(chain, dataflow)
    comparison: Dict[str, Tuple[int, int]] = {}
    matches = True
    for name, entry in predicted.per_tensor.items():
        if name == op2.output.name:
            measured = result.traffic.writes.get(name, 0)
        else:
            measured = result.traffic.reads.get(name, 0)
        comparison[name] = (measured, entry.accesses)
        if measured != entry.accesses:
            matches = False
    return matches, comparison
