"""Analytical models of the five evaluated platforms (paper Table III).

========  ================ =========== ============
platform  stationary flex.  tiling flex. tensor fusion
========  ================ =========== ============
TPUv4i    no (WS only)      low          no
Gemmini   yes               low          no
Planaria  no (WS only)      high         no
UnfCU     yes               middle       no
FuseCU    yes               middle       yes
========  ================ =========== ============

All platforms share the paper's compute envelope (128 x 128 x 4 PEs,
1 TB/s on-chip bandwidth) and "undergo our optimization process to select
the best dataflow within their supported spaces" (Sec. V-A).  The supported
spaces are modeled as:

* **stationary flexibility** -- inflexible platforms must keep the weight
  operand (the second input) non-redundant/PE-resident; flexible platforms
  may pick any operand.
* **tiling flexibility** -- ``low`` restricts buffer tiles to squares (the
  classic fixed systolic tiling, no untiled dimensions, Single-NRA only);
  ``middle``/``high`` open the full tiling space of the principles.  At the
  mapping level, ``low`` offers only the native 128x128 array; ``middle``
  adds FuseCU/UnfCU's CU recombinations (square/narrow/wide up to 2N);
  ``high`` is Planaria's pod fission (many aspect ratios).
* **fusion** -- FuseCU alone runs the graph-level fusion planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.mapping import ArrayShape
from ..dataflow.scheduling import stationary_schedule
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling
from ..core.fusion import FusedResult, FusionMedium
from ..core.graph_optimizer import Segment, optimize_graph
from ..core.intra import optimize_intra
from ..core.nra import (
    NRACandidate,
    all_candidates,
    is_mm_like,
    is_streaming,
    max_feasible_pair,
    streaming_dataflow,
)
from .memory import MemorySpec, PAPER_DEFAULT_MEMORY
from .perf import (
    PlatformPerf,
    SegmentPerf,
    matmul_segment_perf,
    streaming_segment_perf,
)


class TilingFlex(Enum):
    """Tiling-flexibility classes of paper Table III."""

    LOW = "low"
    MIDDLE = "middle"
    HIGH = "high"


@dataclass(frozen=True)
class AcceleratorSpec:
    """A platform's dataflow space and physical geometry."""

    name: str
    stationary_flexible: bool
    tiling: TilingFlex
    fusion: bool
    shapes: Tuple[ArrayShape, ...]
    total_pes: int = 128 * 128 * 4
    memory: MemorySpec = PAPER_DEFAULT_MEMORY

    def with_memory(self, memory: MemorySpec) -> "AcceleratorSpec":
        return AcceleratorSpec(
            name=self.name,
            stationary_flexible=self.stationary_flexible,
            tiling=self.tiling,
            fusion=self.fusion,
            shapes=self.shapes,
            total_pes=self.total_pes,
            memory=memory,
        )

    def attributes(self) -> Dict[str, str]:
        """Table III row for this platform."""
        return {
            "Platform": self.name,
            "Stationary Flex.": "yes" if self.stationary_flexible else "no",
            "Tiling Flex.": self.tiling.value,
            "Tensor Fusion": "yes" if self.fusion else "no",
        }


def _fixed_shapes() -> Tuple[ArrayShape, ...]:
    return (ArrayShape(128, 128),)


def _fusecu_shapes() -> Tuple[ArrayShape, ...]:
    return (
        ArrayShape(128, 128),
        ArrayShape(256, 128),
        ArrayShape(128, 256),
        ArrayShape(256, 256),
    )


def _planaria_shapes() -> Tuple[ArrayShape, ...]:
    rows = (16, 32, 64, 128, 256, 512, 1024)
    return tuple(ArrayShape(r, 16384 // r) for r in rows)


def tpuv4i(memory: MemorySpec = PAPER_DEFAULT_MEMORY) -> AcceleratorSpec:
    """TPUv4i [5]: fixed weight-stationary 128x128 MXUs."""
    return AcceleratorSpec(
        name="TPUv4i",
        stationary_flexible=False,
        tiling=TilingFlex.LOW,
        fusion=False,
        shapes=_fixed_shapes(),
        memory=memory,
    )


def gemmini(memory: MemorySpec = PAPER_DEFAULT_MEMORY) -> AcceleratorSpec:
    """Gemmini [16]: per-PE stationary flexibility, fixed square tiling."""
    return AcceleratorSpec(
        name="Gemmini",
        stationary_flexible=True,
        tiling=TilingFlex.LOW,
        fusion=False,
        shapes=_fixed_shapes(),
        memory=memory,
    )


def planaria(memory: MemorySpec = PAPER_DEFAULT_MEMORY) -> AcceleratorSpec:
    """Planaria [17]: weight-stationary pods with fission (flexible shapes)."""
    return AcceleratorSpec(
        name="Planaria",
        stationary_flexible=False,
        tiling=TilingFlex.HIGH,
        fusion=False,
        shapes=_planaria_shapes(),
        memory=memory,
    )


def unfcu(memory: MemorySpec = PAPER_DEFAULT_MEMORY) -> AcceleratorSpec:
    """UnfCU: FuseCU's flexibility without tensor fusion (paper ablation)."""
    return AcceleratorSpec(
        name="UnfCU",
        stationary_flexible=True,
        tiling=TilingFlex.MIDDLE,
        fusion=False,
        shapes=_fusecu_shapes(),
        memory=memory,
    )


def fusecu(memory: MemorySpec = PAPER_DEFAULT_MEMORY) -> AcceleratorSpec:
    """FuseCU: XS PEs + CU recombination + tensor operator fusion."""
    return AcceleratorSpec(
        name="FuseCU",
        stationary_flexible=True,
        tiling=TilingFlex.MIDDLE,
        fusion=True,
        shapes=_fusecu_shapes(),
        memory=memory,
    )


ALL_PLATFORMS = (tpuv4i, gemmini, planaria, unfcu, fusecu)


# ----------------------------------------------------------------------
# Constrained dataflow selection
# ----------------------------------------------------------------------
def weight_tensor(operator: TensorOperator) -> TensorOperator:
    """The operand treated as "weights" by stationary-inflexible designs.

    By convention the second input: the parameter matrix of projections and
    FFNs, and the loaded-side operand of activation-activation products.
    """

    if len(operator.inputs) < 2:
        raise ValueError(f"operator {operator.name!r} has no weight operand")
    return operator.inputs[1]


def single_nra_square(
    operator: TensorOperator, stationary: str, buffer_elems: int
) -> Optional[Dataflow]:
    """Single-NRA with a *square* stationary tile (low tiling flexibility)."""
    from ..core.nra import max_feasible

    dim_x, dim_y = operator.dims_of(stationary)
    remaining = [d for d in operator.dim_names if d not in (dim_x, dim_y)]
    if len(remaining) != 1:
        return None
    dim_z = remaining[0]
    # Square constraint: both stationary tile dims share one edge length,
    # clamped to each dim's extent but never grown asymmetrically past the
    # square edge -- that asymmetric growth is exactly what low-flexibility
    # designs lack.
    upper = min(operator.dims[dim_x], operator.dims[dim_y])

    def square_footprint(edge: int) -> int:
        tiling = Tiling({dim_x: edge, dim_y: edge, dim_z: 1})
        return tiling.buffer_footprint(operator)

    edge = max_feasible(square_footprint, upper, buffer_elems)
    if edge is None:
        return None
    tiling = Tiling({dim_x: edge, dim_y: edge, dim_z: 1})
    return Dataflow(tiling, stationary_schedule(operator, stationary))


def constrained_intra(
    operator: TensorOperator,
    spec: AcceleratorSpec,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
):
    """Best intra-operator dataflow within a platform's supported space.

    Returns ``(dataflow, report, label)``.
    """

    buffer_elems = spec.memory.buffer_elems
    if is_streaming(operator):
        dataflow = streaming_dataflow(operator)
        return dataflow, memory_access(operator, dataflow, convention), "streaming"
    if not is_mm_like(operator):
        raise ValueError(f"operator {operator.name!r} unsupported")
    weight_name = weight_tensor(operator).name
    options: List[Tuple[Dataflow, str]] = []
    if spec.tiling is TilingFlex.LOW:
        stationaries = (
            [tensor.name for tensor in operator.tensors]
            if spec.stationary_flexible
            else [weight_name]
        )
        for stationary in stationaries:
            dataflow = single_nra_square(operator, stationary, buffer_elems)
            if dataflow is not None:
                options.append((dataflow, f"single-square[{stationary}]"))
    else:
        for candidate in all_candidates(operator, buffer_elems):
            if not spec.stationary_flexible:
                report = memory_access(operator, candidate.dataflow, convention)
                if report.per_tensor[weight_name].multiplier != 1:
                    continue
            options.append((candidate.dataflow, candidate.label))
    if not options:
        raise ValueError(
            f"{spec.name} has no feasible dataflow for {operator.name!r} "
            f"(buffer {buffer_elems} elements)"
        )
    best: Optional[Tuple[Dataflow, object, str]] = None
    for dataflow, label in options:
        report = memory_access(operator, dataflow, convention)
        if best is None or report.total < best[1].total:
            best = (dataflow, report, label)
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Graph evaluation
# ----------------------------------------------------------------------
def _mm_mapping_dims(
    operator: TensorOperator, spec: AcceleratorSpec
) -> Tuple[Tuple[int, int], int]:
    """(stationary-dims extents, streaming extent) for mapping an MM.

    Inflexible platforms park the weight operand in the PEs; flexible ones
    pick the operand whose dims best cover the available shapes.
    """

    from .perf import spatial_efficiency

    def dims_of(tensor_name: str) -> Tuple[int, int]:
        dims = operator.dims_of(tensor_name)
        return (operator.dims[dims[0]], operator.dims[dims[1]])

    if not spec.stationary_flexible:
        resident = weight_tensor(operator).name
    else:
        resident = max(
            (tensor.name for tensor in operator.tensors),
            key=lambda name: spatial_efficiency(dims_of(name), spec.shapes)[1],
        )
    resident_dims = set(operator.dims_of(resident))
    stream_dim = next(d for d in operator.dim_names if d not in resident_dims)
    return dims_of(resident), operator.dims[stream_dim]


def _segment_perf(
    segment: Segment, spec: AcceleratorSpec
) -> SegmentPerf:
    ops = segment.ops
    macs = sum(op.macs for op in ops)
    ma_elems = segment.memory_access
    if len(ops) == 1 and is_streaming(ops[0]):
        return streaming_segment_perf(
            name=ops[0].name,
            points=macs,
            ma_elems=ma_elems,
            total_pes=spec.total_pes,
            memory=spec.memory,
        )
    if len(ops) == 1:
        stationary_dims, stream_len = _mm_mapping_dims(ops[0], spec)
        return matmul_segment_perf(
            name=ops[0].name,
            macs=macs,
            ma_elems=ma_elems,
            stationary_dims=stationary_dims,
            stream_len=stream_len,
            shapes=spec.shapes,
            total_pes=spec.total_pes,
            memory=spec.memory,
        )
    # Fused group: the intermediate tensor tile is the PE-resident tile
    # (tile fusion) or the moving tile between halves (column fusion); both
    # map the intermediate's dims across the group, and the private dims
    # stream through the pipelined passes.
    result = segment.result
    assert isinstance(result, FusedResult)
    chain = result.chain
    intermediate = chain.intermediates()[0]
    stationary_dims = (intermediate.shape[0], intermediate.shape[1])
    common = set(chain.common_dims)
    private_extents = [
        extent
        for dim, extent in chain.global_dims.items()
        if dim not in common
    ]
    stream_len = max(private_extents) if private_extents else 1
    return matmul_segment_perf(
        name="+".join(op.name for op in ops),
        macs=macs,
        ma_elems=ma_elems,
        stationary_dims=stationary_dims,
        stream_len=stream_len,
        shapes=spec.shapes,
        total_pes=spec.total_pes,
        memory=spec.memory,
    )


def evaluate_graph(
    graph: OperatorGraph,
    spec: AcceleratorSpec,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> PlatformPerf:
    """Run a workload graph through a platform's dataflow space.

    FuseCU and UnfCU use the principle planner directly (with and without
    fusion); constrained platforms optimize each operator within their
    restricted candidate sets.
    """

    buffer_elems = spec.memory.buffer_elems
    segments: List[SegmentPerf] = []
    if spec.tiling is TilingFlex.MIDDLE and spec.stationary_flexible:
        plan = optimize_graph(
            graph,
            buffer_elems,
            enable_fusion=spec.fusion,
            convention=convention,
            # FuseCU fuses on the compute unit (paper Table I): the
            # intermediate tile may live in the PE accumulators instead of
            # the buffer; BEST takes the better medium per pattern.
            medium=FusionMedium.BEST,
            register_elems=spec.total_pes,
        )
        for segment in plan.segments:
            segments.append(_segment_perf(segment, spec))
    else:
        for operator in graph.topological_order():
            dataflow, report, _label = constrained_intra(operator, spec, convention)
            if is_streaming(operator):
                segments.append(
                    streaming_segment_perf(
                        name=operator.name,
                        points=operator.macs,
                        ma_elems=report.total,
                        total_pes=spec.total_pes,
                        memory=spec.memory,
                    )
                )
            else:
                stationary_dims, stream_len = _mm_mapping_dims(operator, spec)
                segments.append(
                    matmul_segment_perf(
                        name=operator.name,
                        macs=operator.macs,
                        ma_elems=report.total,
                        stationary_dims=stationary_dims,
                        stream_len=stream_len,
                        shapes=spec.shapes,
                        total_pes=spec.total_pes,
                        memory=spec.memory,
                    )
                )
    return PlatformPerf(
        platform=spec.name,
        workload=graph.name,
        segments=tuple(segments),
        total_pes=spec.total_pes,
    )
