"""FuseCU: the operator-fused compute-unit architecture (paper Sec. IV).

FuseCU groups four ``n x n`` compute units (CUs) of XS PEs and adds MUXes on
the array ports so edge PEs can take data from memory *or* from an adjacent
CU (Fig. 7(a)).  This enables:

* **tile fusion** (Fig. 5(a)/7(b)): the intermediate tile C is produced in
  the PE accumulators by an OS pass and consumed in place by an IS pass --
  C never crosses the array boundary;
* **column fusion** (Fig. 5(b)/7(c)): half the CUs run IS producing C
  columns that stream straight into the other half running OS;
* **adaptive array shapes** (Fig. 7(c)-(e)): CUs recombine into square,
  narrow (``2n x n``-ish) and wide (``n x 2n``-ish) configurations, because
  the principles show untiled dimensions only pay off below ``2n``
  (Sec. IV-B: ``BS = n^2 > Dmin^2/4  =>  Dmin < 2n``).

The functional simulators here are register-accurate (they reuse the
wavefront machinery of :mod:`repro.arch.systolic`) and are the reproduction
stand-in for the paper's open-sourced Chisel RTL: tests verify exact
numerics and that the intermediate tensor contributes zero memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..dataflow.mapping import ArrayShape
from .systolic import RunStats, SystolicArray


@dataclass(frozen=True)
class FuseCUConfig:
    """Geometry of a FuseCU group."""

    n: int = 128
    cus: int = 4

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("CU dimension n must be positive")
        if self.cus not in (1, 2, 4):
            raise ValueError("FuseCU groups 1, 2 or 4 CUs")

    @property
    def total_pes(self) -> int:
        return self.cus * self.n * self.n

    @property
    def max_untiled(self) -> int:
        """Largest untiled dimension the principles require support for (2n)."""
        return 2 * self.n

    def array_shapes(self) -> Tuple[ArrayShape, ...]:
        """Array shapes reachable by recombining the CUs.

        Square (each CU alone), wide (two CUs side by side) and narrow (two
        CUs stacked); with four CUs also the 2n x 2n square.
        """

        n = self.n
        shapes = [ArrayShape(n, n)]
        if self.cus >= 2:
            shapes.append(ArrayShape(n, 2 * n))
            shapes.append(ArrayShape(2 * n, n))
        if self.cus >= 4:
            shapes.append(ArrayShape(2 * n, 2 * n))
        return tuple(shapes)


@dataclass
class FusedRunResult:
    """Result + accounting for a fused two-matmul execution."""

    result: np.ndarray
    stats: RunStats
    intermediate_traffic: int

    @property
    def fused_on_chip(self) -> bool:
        """True when the intermediate tensor never reached memory."""
        return self.intermediate_traffic == 0


class FuseCUArray:
    """Functional model of one FuseCU group executing fused matmuls."""

    def __init__(self, config: FuseCUConfig = FuseCUConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def tile_fusion(
        self, a: np.ndarray, b: np.ndarray, d: np.ndarray
    ) -> FusedRunResult:
        """Execute ``(a @ b) @ d`` with the intermediate tile resident.

        Phase 1 runs OS: ``c = a @ b`` accumulates in the PE registers.
        Phase 2 reconfigures the PEs to IS (``promote_acc`` -- the C element
        becomes the stationary operand) and streams ``d`` through, with the
        partial sums for ``e`` flowing out along the rows.

        Tile-size constraints follow Fig. 5(a): the intermediate tile
        ``(m, l)`` must fit one CU.
        """

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        m, k = a.shape
        k2, l = b.shape
        l2, n_out = d.shape
        if k != k2 or l != l2:
            raise ValueError("tile fusion shape mismatch")
        cu = self.config.n
        if m > cu or l > cu:
            raise ValueError(
                f"intermediate tile {m}x{l} exceeds CU size {cu}x{cu}"
            )
        array = SystolicArray(cu, cu)
        c_tile, stats_os = array.run_os(a, b)
        # Phase 2: C stationary; D streams down the columns, psums flow
        # right along the rows (the XS PE's column-fusion output MUX).
        e_tile, stats_is = _row_is_pass(c_tile, d)
        stats = RunStats(
            cycles=stats_os.cycles + stats_is.cycles,
            input_words=stats_os.input_words + stats_is.input_words,
            output_words=stats_is.output_words,
            stationary_loads=0,  # C promoted in place, never reloaded
        )
        return FusedRunResult(result=e_tile, stats=stats, intermediate_traffic=0)

    # ------------------------------------------------------------------
    def column_fusion(
        self, a: np.ndarray, b: np.ndarray, d: np.ndarray
    ) -> FusedRunResult:
        """Execute ``(a @ b) @ d`` with C streaming between two CU halves.

        The producer half runs IS with ``a`` stationary, emitting one column
        of ``c`` per beat; the consumer half runs OS, accumulating the outer
        product of each ``c`` column with the matching ``d`` row into the
        resident ``e`` tile (Fig. 5(b)).  The two halves are pipelined: the
        consumer starts as soon as the first column arrives.
        """

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        m, k = a.shape
        k2, l = b.shape
        l2, n_out = d.shape
        if k != k2 or l != l2:
            raise ValueError("column fusion shape mismatch")
        cu = self.config.n
        if m > cu or n_out > cu or k > cu:
            raise ValueError(
                f"column fusion tiles (m={m}, k={k}, n={n_out}) exceed CU "
                f"size {cu}"
            )
        producer = SystolicArray(cu, cu)
        # Producer: a stationary, stream all of b; columns of c emerge in
        # order.  (Functionally we compute them in one IS pass.)
        c_full, stats_is = producer.run_is(a, b)
        # Consumer: accumulate E column-by-column as the columns arrive.
        e_tile = np.zeros((m, n_out))
        for j in range(l):
            e_tile += np.outer(c_full[:, j], d[j, :])
        # Pipelined timing: producer pass overlapped with consumer
        # accumulation; the consumer trails by its fill latency.
        consumer_fill = m + n_out - 1
        cycles = stats_is.cycles + consumer_fill + n_out
        stats = RunStats(
            cycles=cycles,
            input_words=a.size + b.size + d.size,
            output_words=e_tile.size,
            stationary_loads=a.size,
        )
        return FusedRunResult(result=e_tile, stats=stats, intermediate_traffic=0)

    # ------------------------------------------------------------------
    def column_fusion_pipelined(
        self, a: np.ndarray, b: np.ndarray, d: np.ndarray
    ) -> FusedRunResult:
        """Cycle-locked co-simulation of column fusion (Fig. 5(b)/7(e)).

        The producer half runs weight-stationary with ``a`` resident
        (computing ``c = a @ b`` column-wavefront by column-wavefront);
        every cycle, the values leaving its bottom psum ports cross a
        one-cycle wire register into the consumer half's left activation
        ports, where an output-stationary array accumulates ``e = c @ d``.
        Both arrays advance in a single clock loop -- the intermediate
        exists only on the inter-CU wires.

        The skews compose exactly: the producer emits ``c[i, col]`` at cycle
        ``col + (k-1) + i`` from its column-``i`` port, which is precisely
        the diagonal wavefront the consumer's OS skew expects ``k`` cycles
        later, so no reorder buffer is needed (the architectural point of
        the paper's column-fusion wiring).
        """

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        m, k = a.shape
        k2, l = b.shape
        l2, n_out = d.shape
        if k != k2 or l != l2:
            raise ValueError("column fusion shape mismatch")
        cu = self.config.n
        if m > cu or n_out > cu or k > cu:
            raise ValueError(
                f"column fusion tiles (m={m}, k={k}, n={n_out}) exceed CU "
                f"size {cu}"
            )
        # Producer: WS array, W = a.T (k rows, m cols), activations = b.T.
        w = a.T
        prod_act = np.zeros((k, m))
        prod_psum = np.zeros((k, m))
        rows_idx = np.arange(k)
        # Consumer: OS array, (m rows, l "reduction", n cols) -- registers
        # sized (m, n_out); its a-inputs come from the wire, b-inputs are
        # rows of d, skewed.
        cons_a = np.zeros((m, n_out))
        cons_b = np.zeros((m, n_out))
        cons_acc = np.zeros((m, n_out))
        cons_rows = np.arange(m)
        cons_cols = np.arange(n_out)
        wire = np.zeros(m)  # one-cycle register between the halves
        # Consumer clock offset: (k-1) producer wavefront depth + the wire
        # register beat.
        lag = k
        total_cycles = lag + (l + m + n_out - 2)
        for t in range(total_cycles):
            # --- producer step (active while its wavefronts drain) ---
            new_wire = np.zeros(m)
            if t < (l + k + m - 2) + 1:
                act_shift = np.empty_like(prod_act)
                act_shift[:, 1:] = prod_act[:, :-1]
                feed = t - rows_idx
                valid = (feed >= 0) & (feed < l)
                # activation entering row r is b.T[feed, r] = b[r, feed]
                act_shift[:, 0] = np.where(
                    valid, b[rows_idx, np.clip(feed, 0, l - 1)], 0.0
                )
                psum_shift = np.empty_like(prod_psum)
                psum_shift[1:, :] = prod_psum[:-1, :]
                psum_shift[0, :] = 0.0
                prod_psum = psum_shift + w * act_shift
                prod_act = act_shift
                # Bottom ports: column j of the producer feeds row j of the
                # consumer; value is c[j, t-(k-1)-j] when in range.
                emit = t - (k - 1) - np.arange(m)
                ready = (emit >= 0) & (emit < l)
                new_wire[ready] = prod_psum[k - 1, np.arange(m)[ready]]
            # --- consumer step (starts after the lag) ---
            tc = t - lag
            if 0 <= tc:
                a_shift = np.empty_like(cons_a)
                a_shift[:, 1:] = cons_a[:, :-1]
                a_shift[:, 0] = wire  # last cycle's producer emissions
                b_shift = np.empty_like(cons_b)
                b_shift[1:, :] = cons_b[:-1, :]
                feed_b = tc - cons_cols
                valid_b = (feed_b >= 0) & (feed_b < l)
                b_shift[0, :] = np.where(
                    valid_b, d[np.clip(feed_b, 0, l - 1), cons_cols], 0.0
                )
                cons_acc += a_shift * b_shift
                cons_a, cons_b = a_shift, b_shift
            wire = new_wire
        stats = RunStats(
            cycles=total_cycles + n_out,  # + drain of the E tile
            input_words=a.size + b.size + d.size,
            output_words=m * n_out,
            stationary_loads=a.size,
        )
        return FusedRunResult(
            result=cons_acc, stats=stats, intermediate_traffic=0
        )

    # ------------------------------------------------------------------
    def unfused_reference(
        self, a: np.ndarray, b: np.ndarray, d: np.ndarray
    ) -> FusedRunResult:
        """Baseline: two separate passes with C round-tripping to memory."""
        cu = self.config.n
        array = SystolicArray(cu, cu)
        c_full, stats1 = array.matmul(a, b, mode="os")
        e_full, stats2 = array.matmul(c_full, d, mode="os")
        stats = stats1.merge(stats2)
        return FusedRunResult(
            result=e_full,
            stats=stats,
            intermediate_traffic=2 * c_full.size,  # write + read of C
        )


def _row_is_pass(c_tile: np.ndarray, d: np.ndarray) -> Tuple[np.ndarray, RunStats]:
    """Register-accurate IS pass with C resident: ``e = c_tile @ d``.

    ``d[j, nu]`` enters the top of column ``j`` at cycle ``nu + j`` and
    moves down; the partial sum for output column ``nu`` enters row ``i`` at
    cycle ``nu + i`` and moves right, accumulating ``c[i, j] * d[j, nu]`` at
    PE ``(i, j)`` on cycle ``nu + i + j``; results exit the right edge.
    """

    m, l = c_tile.shape
    l2, n_out = d.shape
    if l != l2:
        raise ValueError("row-IS shape mismatch")
    d_reg = np.zeros((m, l))
    psum = np.zeros((m, l))
    out = np.zeros((m, n_out))
    total_cycles = n_out + m + l - 2
    cols_idx = np.arange(l)
    rows_idx = np.arange(m)
    for t in range(total_cycles):
        d_shift = np.empty_like(d_reg)
        d_shift[1:, :] = d_reg[:-1, :]
        feed = t - cols_idx
        valid = (feed >= 0) & (feed < n_out)
        d_shift[0, :] = np.where(valid, d[cols_idx, np.clip(feed, 0, n_out - 1)], 0.0)
        p_shift = np.empty_like(psum)
        p_shift[:, 1:] = psum[:, :-1]
        p_shift[:, 0] = 0.0
        psum = p_shift + c_tile * d_shift
        d_reg = d_shift
        emit = t - (l - 1) - rows_idx
        ready = (emit >= 0) & (emit < n_out)
        out[rows_idx[ready], np.clip(emit, 0, n_out - 1)[ready]] = psum[
            rows_idx[ready], l - 1
        ]
    stats = RunStats(
        cycles=total_cycles + 1,
        input_words=d.size,
        output_words=out.size,
    )
    return out, stats
