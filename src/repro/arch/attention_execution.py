"""Functional fused attention: QK^T -> softmax -> AV on tiles, exactly.

The paper's flagship fusion chain tiles the score matrix's column dimension
(the shared ``L`` loop), but softmax normalizes over *entire* rows -- a
naively per-tile softmax would be wrong.  The established fix (FlashAttention
[18], which the paper cites among the memory-medium fusion works) is
*online softmax*: keep a running row-max and running denominator, and
rescale the partial output whenever the max improves.  This module
implements exactly that over the fused dataflow's tile structure, so the
reproduction can demonstrate that

* the fused attention dataflow is **numerically exact** (not an
  approximation) for any tiling of the L dimension, and
* the S x S score/probability intermediates never travel to memory --
  per-tile traffic touches only Q, K, V and the output.

Numerics are float64 and checked against the reference
``softmax(Q K^T) V`` in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from .execution import TrafficCounter


@dataclass
class AttentionExecutionResult:
    """Outcome of a fused attention execution."""

    output: np.ndarray
    traffic: TrafficCounter
    score_traffic: int
    tile_computations: int


def reference_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Unfused reference: ``softmax(q @ k.T, rows) @ v``."""
    scores = q @ k.T
    scores = scores - scores.max(axis=1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=1, keepdims=True)
    return weights @ v


def execute_fused_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    tile_m: int,
    tile_l: int,
) -> AttentionExecutionResult:
    """Fused QK^T -> softmax -> AV with online softmax over L tiles.

    ``tile_m`` tiles the query rows (the shared M loop); ``tile_l`` tiles
    the key/value rows (the shared L loop).  For each (m, l) tile the score
    block is produced on the compute unit, folded into the running softmax
    state, and its contribution accumulated into the output block -- the
    score and probability matrices exist only one tile at a time.
    """

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    seq_q, head_dim = q.shape
    seq_k, head_dim_k = k.shape
    seq_v, out_dim = v.shape
    if head_dim != head_dim_k or seq_k != seq_v:
        raise ValueError("attention operand shapes are inconsistent")
    if not 1 <= tile_m <= seq_q or not 1 <= tile_l <= seq_k:
        raise ValueError("tile sizes out of range")

    traffic = TrafficCounter()
    output = np.zeros((seq_q, out_dim))
    tile_computations = 0

    for m_start in range(0, seq_q, tile_m):
        m_stop = min(m_start + tile_m, seq_q)
        q_tile = q[m_start:m_stop]
        traffic.read("Q", q_tile.size)
        rows = m_stop - m_start
        running_max = np.full((rows, 1), -np.inf)
        running_denominator = np.zeros((rows, 1))
        accumulated = np.zeros((rows, out_dim))
        for l_start in range(0, seq_k, tile_l):
            l_stop = min(l_start + tile_l, seq_k)
            k_tile = k[l_start:l_stop]
            v_tile = v[l_start:l_stop]
            traffic.read("K", k_tile.size)
            traffic.read("V", v_tile.size)
            # Producer phase: the score block, on the compute unit.
            scores = q_tile @ k_tile.T
            tile_computations += 1
            # Online softmax fold: rescale history when the max improves.
            block_max = scores.max(axis=1, keepdims=True)
            new_max = np.maximum(running_max, block_max)
            rescale = np.exp(running_max - new_max)
            rescale[np.isinf(running_max) & (running_max < 0)] = 0.0
            weights = np.exp(scores - new_max)
            running_denominator = (
                running_denominator * rescale + weights.sum(axis=1, keepdims=True)
            )
            accumulated = accumulated * rescale + weights @ v_tile
            tile_computations += 1
            running_max = new_max
        block = accumulated / running_denominator
        output[m_start:m_stop] = block
        traffic.write("O", block.size)
    return AttentionExecutionResult(
        output=output,
        traffic=traffic,
        score_traffic=traffic.accesses("S") + traffic.accesses("P"),
        tile_computations=tile_computations,
    )


def fused_attention_traffic_model(
    seq_q: int,
    seq_k: int,
    head_dim: int,
    out_dim: int,
    tile_m: int,
) -> Dict[str, int]:
    """Analytical traffic of the fused execution above.

    Q and the output stream once; K and V are re-read once per M tile
    (the redundant tensors of the Two-NRA-style fused dataflow); the score
    and probability matrices contribute nothing.
    """

    m_tiles = math.ceil(seq_q / tile_m)
    return {
        "Q": seq_q * head_dim,
        "K": seq_k * head_dim * m_tiles,
        "V": seq_k * out_dim * m_tiles,
        "O": seq_q * out_dim,
    }
