"""FuseCU configuration compiler (paper Sec. IV-A, Fig. 7).

Translates an *analytical* optimization result into the *architectural*
configuration FuseCU would load: per-CU XS stationarity, inter-CU port
connections, and the recombined array shape.  This is the mapping step of
the dataflow triple -- decided by principle (paper Table I's
"principle-based mapping"), not by search:

* an intra-operator dataflow maps by its stationary tensor:
  output-stationary (C in PEs), weight-stationary (B), or input-stationary
  (A);
* a fused dataflow maps by its intermediate tile's shape (Sec. IV-A):
  **tile-like** tiles (both dims sizable) use *tile fusion* -- the whole
  group runs OS for the producer then IS for the consumer with C promoted
  in place; **column-like** tiles (one dim minimized) use *column fusion*
  -- producer CUs run IS, consumer CUs run OS, and C streams across the
  inter-CU MUXes.

The compiler also enforces the Sec. IV-B sizing rule: spatially-mapped
untiled dimensions must not exceed ``2N`` (beyond that, untiling is not
optimal and the recombined shapes cannot cover it in one pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..core.fusion import FusedResult
from ..core.intra import IntraResult
from ..dataflow.mapping import (
    ArrayShape,
    FusedMappingKind,
    best_array_utilization,
    classify_intermediate_tile,
)
from .fusecu import FuseCUConfig
from .pe import PEMode


class MappingError(ValueError):
    """Raised when a dataflow cannot be configured on the group."""


@dataclass(frozen=True)
class CUSetting:
    """Configuration of one compute unit."""

    cu_id: int
    mode: PEMode
    forward_result: bool = False


@dataclass(frozen=True)
class FuseCUProgram:
    """A complete group configuration for one execution segment."""

    kind: Optional[FusedMappingKind]
    array_shape: ArrayShape
    cu_settings: Tuple[CUSetting, ...]
    connections: Tuple[Tuple[int, int], ...]
    utilization: float
    description: str

    @property
    def fused(self) -> bool:
        return self.kind is not None


def _mode_for_stationary(result: IntraResult) -> PEMode:
    """XS mode from the buffer dataflow's stationary tensor."""
    stationary = result.dataflow.stationary_tensor_name(result.operator)
    operator = result.operator
    if stationary is None or stationary == operator.output.name:
        return PEMode.OS
    if len(operator.inputs) >= 2 and stationary == operator.inputs[1].name:
        return PEMode.WS
    return PEMode.IS


def compile_intra_mapping(
    result: IntraResult, config: FuseCUConfig = FuseCUConfig()
) -> FuseCUProgram:
    """Configure the group for a single (unfused) operator."""
    operator = result.operator
    mode = _mode_for_stationary(result)
    if mode is PEMode.OS:
        resident = operator.output.name
    elif mode is PEMode.WS:
        resident = operator.inputs[1].name
    else:
        resident = operator.inputs[0].name
    dims = operator.dims_of(resident)
    tile_dims = (operator.dims[dims[0]], operator.dims[dims[1]])
    shape, utilization = best_array_utilization(
        tile_dims[0], tile_dims[1], config.array_shapes()
    )
    settings = tuple(
        CUSetting(cu_id=cu, mode=mode) for cu in range(config.cus)
    )
    return FuseCUProgram(
        kind=None,
        array_shape=shape,
        cu_settings=settings,
        connections=(),
        utilization=utilization,
        description=(
            f"intra {operator.name}: {mode.name} with {resident} resident "
            f"on {shape}"
        ),
    )


def compile_fused_mapping(
    result: FusedResult, config: FuseCUConfig = FuseCUConfig()
) -> FuseCUProgram:
    """Configure the group for a fused chain (Fig. 7(b)-(e))."""
    chain = result.chain
    intermediates = chain.intermediates()
    if not intermediates:
        raise MappingError("fused result has no intermediate tensor")
    intermediate = intermediates[0]
    tiling = result.dataflow.resolved_tiling(chain)
    axes = chain.global_dims_of_tensor(0, intermediate.name)
    tile_shape = (tiling[axes[0]], tiling[axes[1]])

    # Sec. IV-B: spatially-mapped untiled dims must stay within 2N.
    for axis, tile in zip(axes, tile_shape):
        extent = chain.global_dims[axis]
        if tile == extent and extent > config.max_untiled:
            raise MappingError(
                f"untiled dim {axis} (extent {extent}) exceeds the 2N bound "
                f"({config.max_untiled}); the principles say untiling is "
                "not optimal here"
            )

    kind = classify_intermediate_tile(tile_shape)
    if kind is FusedMappingKind.TILE_FUSION:
        shape, utilization = best_array_utilization(
            tile_shape[0], tile_shape[1], config.array_shapes()
        )
        settings = tuple(
            CUSetting(cu_id=cu, mode=PEMode.OS) for cu in range(config.cus)
        )
        # All CUs flip OS -> IS when the producer drains (promote_acc);
        # narrow/wide variants connect diagonal CUs (Fig. 7(d)).
        connections = ()
        if shape.rows != shape.cols and config.cus >= 2:
            connections = ((config.cus - 1, 0),)
        description = (
            f"tile fusion: C tile {tile_shape[0]}x{tile_shape[1]} stationary "
            f"on {shape}; OS phase then IS phase (accumulators promoted)"
        )
    else:
        if config.cus < 2:
            raise MappingError("column fusion needs at least two CUs")
        producer_cus = config.cus // 2
        settings = tuple(
            CUSetting(
                cu_id=cu,
                mode=PEMode.IS if cu < producer_cus else PEMode.OS,
                forward_result=cu < producer_cus,
            )
            for cu in range(config.cus)
        )
        connections = tuple(
            (cu, cu + producer_cus) for cu in range(producer_cus)
        )
        long_dim = max(tile_shape)
        if long_dim > config.n:
            shape = ArrayShape(config.n, 2 * config.n)
        else:
            shape = ArrayShape(config.n, config.n)
        utilization = best_array_utilization(
            max(tile_shape), 1, (ArrayShape(shape.rows, 1),)
        )[1]
        description = (
            f"column fusion: C columns ({tile_shape[0]}x{tile_shape[1]}) "
            f"stream from {producer_cus} IS CU(s) into "
            f"{config.cus - producer_cus} OS CU(s)"
        )
    return FuseCUProgram(
        kind=kind,
        array_shape=shape,
        cu_settings=settings,
        connections=connections,
        utilization=utilization,
        description=description,
    )
