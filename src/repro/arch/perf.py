"""Analytical performance (cycle/utilization) model for spatial accelerators.

The paper reports performance "normalized to the target accelerator's peak
FLOPs, indicating utilization" (Sec. V-C).  This model reproduces that
metric from three effects:

* **memory boundedness** -- a segment's memory cycles are its memory
  accesses divided by the on-chip bandwidth (1 TB/s in the paper's setup);
  cycles are ``max(compute, memory)`` per segment (double-buffered overlap).
* **spatial efficiency** -- the PE-resident (stationary) tile's dimensions
  must cover the physical array; a 64-wide attention head on a fixed
  128x128 array wastes half the rows.  Flexible-shape platforms (Planaria
  fission, FuseCU/UnfCU CU recombination) recover this.
* **pipeline fill** -- an array pass pays a fill latency of roughly
  ``rows + cols`` cycles.  Production systolic arrays double-buffer the
  stationary operand so consecutive passes overlap fill with compute; the
  default model therefore charges the fill once per segment.  The
  ``overlap_fill=False`` variant charges it per pass (a naive,
  non-double-buffered array) and is exposed for the ablation bench.

The model is deliberately first-order: it captures who wins and by roughly
what factor, not absolute silicon numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..dataflow.mapping import ArrayShape, SpatialMapping, best_array_utilization
from .memory import MemorySpec


@dataclass(frozen=True)
class SegmentPerf:
    """Performance of one execution segment (an operator or fused group)."""

    name: str
    macs: int
    ma_elems: int
    compute_cycles: float
    memory_cycles: float
    spatial_utilization: float
    array_shape: Optional[ArrayShape]

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles


@dataclass(frozen=True)
class PlatformPerf:
    """Aggregate performance of a workload graph on one platform."""

    platform: str
    workload: str
    segments: Tuple[SegmentPerf, ...]
    total_pes: int

    @property
    def total_cycles(self) -> float:
        return sum(segment.cycles for segment in self.segments)

    @property
    def total_macs(self) -> int:
        return sum(segment.macs for segment in self.segments)

    @property
    def total_memory_access(self) -> int:
        return sum(segment.ma_elems for segment in self.segments)

    @property
    def utilization(self) -> float:
        """Achieved MACs per PE-cycle: performance normalized to peak FLOPs."""
        cycles = self.total_cycles
        if cycles <= 0:
            return 0.0
        return self.total_macs / (self.total_pes * cycles)

    def speedup_over(self, other: "PlatformPerf") -> float:
        """How much faster this platform runs the same workload."""
        if self.total_macs != other.total_macs:
            raise ValueError(
                "speedup comparison requires identical workloads "
                f"({self.total_macs} vs {other.total_macs} MACs)"
            )
        if self.total_cycles <= 0:
            raise ValueError("degenerate cycle count")
        return other.total_cycles / self.total_cycles


def spatial_efficiency(
    stationary_dims: Tuple[int, int],
    shapes: Sequence[ArrayShape],
) -> Tuple[ArrayShape, float]:
    """Best-shape utilization for a stationary tile of the given full dims."""
    return best_array_utilization(
        stationary_dims[0], stationary_dims[1], tuple(shapes)
    )


def fill_efficiency(shape: ArrayShape, stream_len: int) -> float:
    """Fraction of a pass spent streaming vs. filling the array pipeline."""
    if stream_len <= 0:
        raise ValueError("stream length must be positive")
    fill = shape.rows + shape.cols
    return stream_len / (stream_len + fill)


def matmul_segment_perf(
    name: str,
    macs: int,
    ma_elems: int,
    stationary_dims: Tuple[int, int],
    stream_len: int,
    shapes: Sequence[ArrayShape],
    total_pes: int,
    memory: MemorySpec,
    overlap_fill: bool = True,
) -> SegmentPerf:
    """Performance of an MM-like segment.

    ``stationary_dims`` are the full extents of the two dimensions mapped
    across PEs (the PE-resident tensor's dims); ``stream_len`` is the extent
    of the dimension streamed through per pass.  With ``overlap_fill`` the
    array double-buffers stationary loads and the fill latency is paid once;
    without it every pass serializes behind its fill.
    """

    best_shape = None
    best_cycles = None
    best_util = 0.0
    for shape in shapes:
        mapping = SpatialMapping(stationary_dims[0], stationary_dims[1], shape)
        utilization = mapping.utilization
        if utilization <= 0:
            continue
        base = macs / (total_pes * utilization)
        if overlap_fill:
            cycles = base + shape.rows + shape.cols
        else:
            cycles = base / fill_efficiency(shape, stream_len)
        if best_cycles is None or cycles < best_cycles:
            best_shape, best_cycles, best_util = shape, cycles, utilization
    if best_shape is None or best_cycles is None:
        raise ValueError(f"segment {name!r} has zero mapping efficiency")
    compute_cycles = best_cycles
    shape, utilization = best_shape, best_util
    memory_cycles = ma_elems / memory.elems_per_cycle
    return SegmentPerf(
        name=name,
        macs=macs,
        ma_elems=ma_elems,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        spatial_utilization=utilization,
        array_shape=shape,
    )


def streaming_segment_perf(
    name: str,
    points: int,
    ma_elems: int,
    total_pes: int,
    memory: MemorySpec,
) -> SegmentPerf:
    """Performance of a streaming (softmax/elementwise) segment.

    Handled by the vector/softmax unit alongside the array (paper Fig. 12
    keeps a softmax unit outside the overhead accounting); compute is one
    point per lane per cycle and is almost always memory-bound.
    """

    compute_cycles = points / max(1, total_pes)
    memory_cycles = ma_elems / memory.elems_per_cycle
    return SegmentPerf(
        name=name,
        macs=points,
        ma_elems=ma_elems,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        spatial_utilization=1.0,
        array_shape=None,
    )
