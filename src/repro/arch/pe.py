"""The X-Stationary (XS) processing element (paper Sec. IV-B, Fig. 6).

A conventional systolic PE hard-wires one stationarity; the XS PE adds
multiplexers on its datapaths so one physical PE supports:

* **OS** (output-stationary): both operands stream through (A rightward,
  B downward) while the product accumulates in the local register.
* **WS/IS** (weight-/input-stationary): one operand is preloaded into the
  stationary register, the other streams rightward, and partial sums flow
  downward.  WS vs. IS is just which operand is preloaded ("simply swapping
  the positions of activations and weights", Sec. IV-B).
* **Column-fusion forwarding**: a MUX on the activation output selects
  between forwarding the input activation and emitting the locally
  accumulated result, letting a producer half-array stream intermediate
  columns directly into a consumer half-array (Fig. 5(b)).

This scalar implementation is the behavioral reference; the vectorized
array simulator (:mod:`repro.arch.systolic`) implements identical semantics
and is cross-checked against grids of these PEs in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PEMode(Enum):
    """Stationarity configuration of an XS PE."""

    OS = "output_stationary"
    WS = "weight_stationary"
    IS = "input_stationary"


@dataclass
class PEOutputs:
    """Signals leaving a PE after one cycle."""

    right: float
    down: float


class XSPE:
    """One X-Stationary processing element.

    State: one stationary register (``stationary``) and one accumulator
    (``acc``).  In OS mode ``acc`` holds the output element; in WS/IS mode
    ``stationary`` holds the preloaded operand and ``acc`` is unused (the
    partial sum travels on the ``down`` wire).
    """

    def __init__(self, mode: PEMode = PEMode.OS, forward_result: bool = False):
        self.mode = mode
        self.forward_result = forward_result
        self.stationary = 0.0
        self.acc = 0.0

    # ------------------------------------------------------------------
    def configure(self, mode: PEMode, forward_result: bool = False) -> None:
        """Switch datapath MUXes; registers are preserved (tile fusion
        relies on the OS accumulator surviving a switch to IS)."""
        self.mode = mode
        self.forward_result = forward_result

    def load_stationary(self, value: float) -> None:
        self.stationary = value

    def clear(self) -> None:
        self.stationary = 0.0
        self.acc = 0.0

    def promote_acc(self) -> None:
        """Move the OS accumulator into the stationary register.

        Models the tile-fusion hand-off: the C element just produced in OS
        mode becomes the stationary operand for the following IS phase
        without leaving the PE.
        """

        self.stationary = self.acc

    # ------------------------------------------------------------------
    def step(self, left_in: float, top_in: float) -> PEOutputs:
        """Advance one cycle.

        In OS mode ``left_in``/``top_in`` are the two streaming operands;
        in WS/IS mode ``left_in`` is the streaming operand and ``top_in``
        the incoming partial sum.
        """

        if self.mode is PEMode.OS:
            self.acc += left_in * top_in
            right = self.acc if self.forward_result else left_in
            return PEOutputs(right=right, down=top_in)
        product = self.stationary * left_in
        down = top_in + product
        right = self.acc if self.forward_result else left_in
        return PEOutputs(right=right, down=down)
