"""Memory-system specification for the spatial-architecture models.

Matches the paper's experiment setup (Sec. V-A, Fig. 8): an on-chip buffer
between DRAM and the PE array, evaluated at buffer sizes from 32 KB to
32 MB, with 1 TB/s of on-chip bandwidth feeding a TPUv4i-class array.
Buffer capacities are stored in bytes and converted to *elements* (the unit
of the analytical models) via ``dtype_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class MemorySpec:
    """On-chip buffer + bandwidth configuration.

    Parameters
    ----------
    buffer_bytes:
        On-chip buffer capacity in bytes.
    dtype_bytes:
        Element width (1 for the paper's int8-style accounting).
    bandwidth_gbps:
        Memory<->buffer bandwidth in GB/s (paper: 1 TB/s = 1000 GB/s).
    frequency_ghz:
        Array clock; with the default 1 GHz, bytes/cycle equals GB/s / 1.
    """

    buffer_bytes: int = 512 * KIB
    dtype_bytes: int = 1
    bandwidth_gbps: float = 1000.0
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")

    @property
    def buffer_elems(self) -> int:
        """Buffer capacity in elements (the analytical models' unit)."""
        return self.buffer_bytes // self.dtype_bytes

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained memory bandwidth per array clock cycle."""
        return self.bandwidth_gbps / self.frequency_ghz

    @property
    def elems_per_cycle(self) -> float:
        return self.bytes_per_cycle / self.dtype_bytes

    def with_buffer(self, buffer_bytes: int) -> "MemorySpec":
        """Copy with a different buffer capacity (for BS sweeps)."""
        return MemorySpec(
            buffer_bytes=buffer_bytes,
            dtype_bytes=self.dtype_bytes,
            bandwidth_gbps=self.bandwidth_gbps,
            frequency_ghz=self.frequency_ghz,
        )


#: The paper's Fig. 9 buffer-size sweep: 32 KB to 32 MB.
PAPER_BUFFER_SWEEP_BYTES: Tuple[int, ...] = tuple(
    32 * KIB * (2 ** i) for i in range(11)
)

#: The paper's main evaluation buffer (TPUv4i-class common memory slice).
PAPER_DEFAULT_MEMORY = MemorySpec(buffer_bytes=512 * KIB)
