"""Analytical area model (reproduction stand-in for paper Fig. 12).

The paper synthesizes FuseCU's Chisel RTL with Synopsys Design Compiler at
28 nm and reports an area *breakdown* plus two headlines: FuseCU costs
+12.0% over the TPUv4i-style baseline array (almost all of it the XS PE
MUXes), with the inter-CU resize interconnect and fusion control together
below 0.1%; Planaria's richer interconnect costs 12.6%.

Without a synthesis flow we reproduce the breakdown from per-component
gate-equivalent (GE, NAND2-equivalent) estimates -- standard digital-design
rules of thumb for an int8 MAC PE -- and convert to square millimeters with
a 28 nm NAND2 footprint.  Absolute areas are indicative; the *breakdown
shape and overhead percentages* are the reproduced quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: 28 nm NAND2-equivalent cell footprint (um^2 per gate equivalent).
UM2_PER_GE_28NM = 0.49

# ----------------------------------------------------------------------
# Per-PE component estimates (gate equivalents)
# ----------------------------------------------------------------------
#: int8 x int8 multiplier.
GE_MULTIPLIER = 420
#: 32-bit accumulator adder.
GE_ADDER = 350
#: 32-bit accumulator register.
GE_ACC_REGISTER = 200
#: Operand pipeline registers (2 x 8 bit).
GE_OPERAND_REGISTERS = 96
#: Base per-PE sequencing/control.
GE_BASE_CONTROL = 30
#: XS additions: two 8-bit datapath MUXes + one 32-bit psum MUX + the
#: activation-output (column fusion) MUX -- the paper's Fig. 6 additions.
GE_XS_MUXES = 130
#: Gemmini-style per-PE stationary select (subset of the XS additions).
GE_STATIONARY_SELECT = 55
#: Planaria's per-PE omni-directional bypass links (12.6% of its PE).
GE_PLANARIA_LINKS = 138
#: Per-edge-PE port MUX for FuseCU CU recombination.
GE_EDGE_PORT_MUX = 17
#: Per-CU fusion/resize control FSM.
GE_CU_CONTROL = 2600


@dataclass(frozen=True)
class AreaComponent:
    """One row of the area breakdown."""

    name: str
    gate_equivalents: int
    overhead: bool

    @property
    def um2(self) -> float:
        return self.gate_equivalents * UM2_PER_GE_28NM

    @property
    def mm2(self) -> float:
        return self.um2 / 1e6


@dataclass(frozen=True)
class AreaBreakdown:
    """Complete area accounting for one platform's compute array."""

    platform: str
    components: Tuple[AreaComponent, ...]

    @property
    def total_ge(self) -> int:
        return sum(component.gate_equivalents for component in self.components)

    @property
    def total_mm2(self) -> float:
        return sum(component.mm2 for component in self.components)

    @property
    def overhead_ge(self) -> int:
        return sum(
            component.gate_equivalents
            for component in self.components
            if component.overhead
        )

    @property
    def base_ge(self) -> int:
        return self.total_ge - self.overhead_ge

    def overhead_over(self, baseline: "AreaBreakdown") -> float:
        """Fractional area increase relative to a baseline platform."""
        if baseline.total_ge <= 0:
            raise ValueError("baseline has no area")
        return self.total_ge / baseline.total_ge - 1.0

    def fraction(self, component_name: str) -> float:
        """A component's share of this platform's total area."""
        for component in self.components:
            if component.name == component_name:
                return component.gate_equivalents / self.total_ge
        raise KeyError(f"no component named {component_name!r}")

    def rows(self) -> List[Dict[str, object]]:
        total = self.total_ge
        return [
            {
                "component": component.name,
                "GE": component.gate_equivalents,
                "mm2": round(component.mm2, 3),
                "share": round(component.gate_equivalents / total, 4),
                "overhead": component.overhead,
            }
            for component in self.components
        ]


def _base_pe_components(total_pes: int) -> List[AreaComponent]:
    return [
        AreaComponent("multipliers", GE_MULTIPLIER * total_pes, overhead=False),
        AreaComponent("adders", GE_ADDER * total_pes, overhead=False),
        AreaComponent("accumulators", GE_ACC_REGISTER * total_pes, overhead=False),
        AreaComponent(
            "base PE registers", GE_OPERAND_REGISTERS * total_pes, overhead=False
        ),
        AreaComponent("control logic", GE_BASE_CONTROL * total_pes, overhead=False),
    ]


def tpuv4i_area(total_pes: int = 128 * 128 * 4) -> AreaBreakdown:
    """Baseline fixed weight-stationary array (no flexibility hardware)."""
    return AreaBreakdown(
        platform="TPUv4i", components=tuple(_base_pe_components(total_pes))
    )


def gemmini_area(total_pes: int = 128 * 128 * 4) -> AreaBreakdown:
    """Gemmini: per-PE stationary select on top of the base array."""
    components = _base_pe_components(total_pes)
    components.append(
        AreaComponent(
            "stationary select", GE_STATIONARY_SELECT * total_pes, overhead=True
        )
    )
    return AreaBreakdown(platform="Gemmini", components=tuple(components))


def planaria_area(total_pes: int = 128 * 128 * 4) -> AreaBreakdown:
    """Planaria: fission via per-PE omni-directional bypass links."""
    components = _base_pe_components(total_pes)
    components.append(
        AreaComponent(
            "fission interconnect", GE_PLANARIA_LINKS * total_pes, overhead=True
        )
    )
    return AreaBreakdown(platform="Planaria", components=tuple(components))


def fusecu_area(
    total_pes: int = 128 * 128 * 4, cu_dim: int = 128, cus: int = 4
) -> AreaBreakdown:
    """FuseCU: XS PE MUXes + edge-port resize MUXes + fusion control.

    The XS PE logic scales with the PE count (the dominant overhead); the
    resize interconnect touches only the ``4 * cu_dim`` edge PEs per CU and
    the control FSM is per-CU -- which is why both stay below 0.1% of the
    array (the paper's second headline).
    """

    components = _base_pe_components(total_pes)
    components.append(
        AreaComponent("XS PE logic", GE_XS_MUXES * total_pes, overhead=True)
    )
    edge_pes = cus * 4 * cu_dim
    components.append(
        AreaComponent(
            "FuseCU resize interconnect",
            GE_EDGE_PORT_MUX * edge_pes,
            overhead=True,
        )
    )
    components.append(
        AreaComponent("fusion control units", GE_CU_CONTROL * cus, overhead=True)
    )
    return AreaBreakdown(platform="FuseCU", components=tuple(components))


def unfcu_area(total_pes: int = 128 * 128 * 4, cu_dim: int = 128, cus: int = 4) -> AreaBreakdown:
    """UnfCU: FuseCU minus the fusion control (keeps XS + resize MUXes)."""
    components = _base_pe_components(total_pes)
    components.append(
        AreaComponent("XS PE logic", GE_XS_MUXES * total_pes, overhead=True)
    )
    edge_pes = cus * 4 * cu_dim
    components.append(
        AreaComponent(
            "FuseCU resize interconnect",
            GE_EDGE_PORT_MUX * edge_pes,
            overhead=True,
        )
    )
    return AreaBreakdown(platform="UnfCU", components=tuple(components))
