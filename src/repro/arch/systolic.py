"""Cycle-driven systolic-array simulator (vectorized XS PE semantics).

Register-accurate numpy implementation of an ``rows x cols`` array of
:class:`~repro.arch.pe.XSPE` elements.  Each ``run_*`` method advances the
array cycle by cycle with properly skewed operand wavefronts, returns the
numerically exact result, and reports cycle/port statistics; the test suite
checks every mode against ``numpy.matmul`` and against small grids of the
scalar reference PE.

This simulator substitutes for the paper's Chisel RTL: it demonstrates that
the XS datapaths and the FuseCU fusion mappings (:mod:`repro.arch.fusecu`)
compute correct results with the intermediate tensor never leaving the
array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class RunStats:
    """Cycle and port-traffic statistics for one or more array runs."""

    cycles: int = 0
    input_words: int = 0
    output_words: int = 0
    stationary_loads: int = 0

    def merge(self, other: "RunStats") -> "RunStats":
        return RunStats(
            cycles=self.cycles + other.cycles,
            input_words=self.input_words + other.input_words,
            output_words=self.output_words + other.output_words,
            stationary_loads=self.stationary_loads + other.stationary_loads,
        )


class SystolicArray:
    """A rectangular array of XS PEs with cycle-driven semantics."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"array shape {rows}x{cols} invalid")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------
    # Output-stationary: A streams rightward, B downward, C accumulates.
    # ------------------------------------------------------------------
    def run_os(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, RunStats]:
        """Compute ``a @ b`` with the output tile resident in the PEs.

        ``a`` is ``(m, k)`` with ``m <= rows``; ``b`` is ``(k, l)`` with
        ``l <= cols``; ``k`` is unbounded (it streams through).
        """

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        m, k = a.shape
        k2, l = b.shape
        if k != k2:
            raise ValueError(f"inner dims mismatch: {k} vs {k2}")
        if m > self.rows or l > self.cols:
            raise ValueError(
                f"OS tile {m}x{l} exceeds array {self.rows}x{self.cols}"
            )
        a_reg = np.zeros((m, l))
        b_reg = np.zeros((m, l))
        acc = np.zeros((m, l))
        total_cycles = k + m + l - 2
        rows_idx = np.arange(m)
        cols_idx = np.arange(l)
        for t in range(total_cycles):
            a_shift = np.empty_like(a_reg)
            a_shift[:, 1:] = a_reg[:, :-1]
            feed = t - rows_idx
            valid = (feed >= 0) & (feed < k)
            a_shift[:, 0] = np.where(valid, a[rows_idx, np.clip(feed, 0, k - 1)], 0.0)
            b_shift = np.empty_like(b_reg)
            b_shift[1:, :] = b_reg[:-1, :]
            feed_b = t - cols_idx
            valid_b = (feed_b >= 0) & (feed_b < k)
            b_shift[0, :] = np.where(
                valid_b, b[np.clip(feed_b, 0, k - 1), cols_idx], 0.0
            )
            acc += a_shift * b_shift
            a_reg, b_reg = a_shift, b_shift
        # Drain: one column of results exits per cycle.
        stats = RunStats(
            cycles=total_cycles + l,
            input_words=a.size + b.size,
            output_words=m * l,
        )
        return acc, stats

    # ------------------------------------------------------------------
    # Weight-stationary: W preloaded, activations stream, psums flow down.
    # ------------------------------------------------------------------
    def run_ws(self, w: np.ndarray, act: np.ndarray) -> Tuple[np.ndarray, RunStats]:
        """Compute ``act @ w`` with ``w`` resident in the PEs.

        ``w`` is ``(k, l)`` with ``k <= rows``, ``l <= cols``; ``act`` is
        ``(m, k)`` with unbounded ``m``.
        """

        w = np.asarray(w, dtype=np.float64)
        act = np.asarray(act, dtype=np.float64)
        k, l = w.shape
        m, k2 = act.shape
        if k != k2:
            raise ValueError(f"inner dims mismatch: {k} vs {k2}")
        if k > self.rows or l > self.cols:
            raise ValueError(
                f"WS tile {k}x{l} exceeds array {self.rows}x{self.cols}"
            )
        act_reg = np.zeros((k, l))
        psum = np.zeros((k, l))
        out = np.zeros((m, l))
        total_cycles = m + k + l - 2
        rows_idx = np.arange(k)
        cols_idx = np.arange(l)
        for t in range(total_cycles):
            act_shift = np.empty_like(act_reg)
            act_shift[:, 1:] = act_reg[:, :-1]
            feed = t - rows_idx
            valid = (feed >= 0) & (feed < m)
            act_shift[:, 0] = np.where(
                valid, act[np.clip(feed, 0, m - 1), rows_idx], 0.0
            )
            psum_shift = np.empty_like(psum)
            psum_shift[1:, :] = psum[:-1, :]
            psum_shift[0, :] = 0.0
            psum = psum_shift + w * act_shift
            act_reg = act_shift
            emit = t - (k - 1) - cols_idx
            ready = (emit >= 0) & (emit < m)
            out[np.clip(emit, 0, m - 1)[ready], cols_idx[ready]] = psum[
                k - 1, cols_idx[ready]
            ]
            # Values produced on the last iteration for the last outputs are
            # collected inside the loop; total_cycles covers all of them.
        stats = RunStats(
            cycles=total_cycles + 1,  # preload pipelining + final drain beat
            input_words=act.size,
            output_words=m * l,
            stationary_loads=w.size,
        )
        return out, stats

    # ------------------------------------------------------------------
    # Input-stationary: the left operand is preloaded.
    # ------------------------------------------------------------------
    def run_is(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, RunStats]:
        """Compute ``a @ b`` with ``a`` resident in the PEs.

        Implemented by operand transposition over the WS datapath -- the XS
        PE supports IS "by simply swapping the positions of activations and
        weights" (paper Sec. IV-B).  ``a`` is ``(m, k)`` with ``k <= rows``
        (transposed into the array), ``m <= cols``; ``b`` streams.
        """

        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        out_t, stats = self.run_ws(a.T, b.T)
        return out_t.T, stats

    # ------------------------------------------------------------------
    # Tiled full matmul (host-side tiling loop over array-sized tiles)
    # ------------------------------------------------------------------
    def matmul(
        self, a: np.ndarray, b: np.ndarray, mode: str = "os"
    ) -> Tuple[np.ndarray, RunStats]:
        """Full ``a @ b`` of arbitrary size, tiled over the array."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        m, k = a.shape
        k2, l = b.shape
        if k != k2:
            raise ValueError(f"inner dims mismatch: {k} vs {k2}")
        out = np.zeros((m, l))
        stats = RunStats()
        if mode == "os":
            for i in range(0, m, self.rows):
                for j in range(0, l, self.cols):
                    tile, tile_stats = self.run_os(
                        a[i : i + self.rows, :], b[:, j : j + self.cols]
                    )
                    out[i : i + self.rows, j : j + self.cols] = tile
                    stats = stats.merge(tile_stats)
        elif mode == "ws":
            for p in range(0, k, self.rows):
                for j in range(0, l, self.cols):
                    tile, tile_stats = self.run_ws(
                        b[p : p + self.rows, j : j + self.cols],
                        a[:, p : p + self.rows],
                    )
                    out[:, j : j + self.cols] += tile
                    stats = stats.merge(tile_stats)
        elif mode == "is":
            for i in range(0, m, self.cols):
                for p in range(0, k, self.rows):
                    tile, tile_stats = self.run_is(
                        a[i : i + self.cols, p : p + self.rows],
                        b[p : p + self.rows, :],
                    )
                    out[i : i + self.cols, :] += tile
                    stats = stats.merge(tile_stats)
        else:
            raise ValueError(f"unknown mode {mode!r}; use 'os', 'ws' or 'is'")
        return out, stats
