"""First-order energy model for the platform comparison.

The paper motivates dataflow optimization with memory access being "a key
factor in the energy consumption of tensor applications"; this extension
quantifies it.  Per-access/per-op energies follow the standard
Horowitz-style scaling ratios (DRAM access costs orders of magnitude more
than an on-chip SRAM access, which costs more than a register access or an
int8 MAC), normalized to picojoules per *element* for the library's
element-denominated traffic counts.

The decomposition per workload segment:

* DRAM energy      = memory accesses (the MA the principles minimize) x ``dram_pj``
* buffer energy    = operand deliveries, approximated as 3 buffer touches
  per MAC divided by the PE-array reuse width (systolic forwarding means a
  fetched element is shared along a row/column) x ``sram_pj``
* compute energy   = MACs x ``mac_pj`` (+ register traffic folded in)

Only relative comparisons between platforms are meaningful; the model's
purpose is to show MA savings translating into energy savings at realistic
cost ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from .perf import PlatformPerf


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs (picojoules per element / per MAC)."""

    dram_pj: float = 20.0
    sram_pj: float = 1.0
    mac_pj: float = 0.25
    #: Effective buffer touches per MAC after systolic operand forwarding.
    buffer_touches_per_mac: float = 3.0 / 128.0

    def __post_init__(self) -> None:
        for name in ("dram_pj", "sram_pj", "mac_pj", "buffer_touches_per_mac"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class EnergyReport:
    """Energy decomposition for one workload on one platform."""

    platform: str
    workload: str
    dram_pj: float
    buffer_pj: float
    compute_pj: float

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.buffer_pj + self.compute_pj

    @property
    def total_mj(self) -> float:
        return self.total_pj / 1e9

    @property
    def dram_share(self) -> float:
        return self.dram_pj / self.total_pj

    def saving_over(self, other: "EnergyReport") -> float:
        """Fractional total-energy saving relative to another platform."""
        if other.total_pj <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.total_pj / other.total_pj


def energy_of(
    perf: PlatformPerf, model: EnergyModel = EnergyModel()
) -> EnergyReport:
    """Energy decomposition from a platform-performance result."""
    dram = perf.total_memory_access * model.dram_pj
    buffer = perf.total_macs * model.buffer_touches_per_mac * model.sram_pj
    compute = perf.total_macs * model.mac_pj
    return EnergyReport(
        platform=perf.platform,
        workload=perf.workload,
        dram_pj=dram,
        buffer_pj=buffer,
        compute_pj=compute,
    )
