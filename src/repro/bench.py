"""Micro-benchmark harness: ``repro bench``.

Times the three layers whose speed the roadmap actually tracks:

* ``optimize_intra`` -- the principle-based single-operator optimizer
  (the paper's core loop; microseconds matter because sweeps call it
  thousands of times);
* ``optimize_fused`` -- the fused-chain dataflow search;
* end-to-end ``repro batch`` throughput through the full service stack
  (parse -> cache -> pool -> report), in requests/second.

Methodology: every measurement is the **median of best-of-``repeats``
wall times** on fixed, representative shapes -- medians because a shared
CI box has tail noise, fixed shapes so numbers are comparable across
commits.  Results land in a ``BENCH_<date>.json`` with enough machine
context (python version, platform) to judge whether two files are even
comparable.  This is a trend tool, not a marketing tool: compare numbers
from the same machine class only.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from typing import Any, Callable, Dict, List

from .core import optimize_fused, optimize_intra
from .ir import matmul
from .service import BatchEngine, EngineConfig, intra_request

#: Bumped when the measurement methodology changes enough that old and
#: new BENCH files must not be trend-compared.
BENCH_SCHEMA_VERSION = 1

#: Fixed shapes: a small, a paper-typical, and a skinny-K operator.
INTRA_SHAPES = ((64, 32, 48), (512, 256, 256), (1024, 16, 1024))
FUSED_CHAINS = ((64, 32, 48, 56), (512, 256, 256, 128))
BUFFER_ELEMS = 64 << 10

#: Fixed DAG-planning point for the cold/warm memoization comparison.
PLAN_SCENARIO = "attention"
PLAN_BUFFER_ELEMS = 32 << 10


def _time_call(fn: Callable[[], Any], repeats: int) -> Dict[str, Any]:
    """Median/min/max of ``repeats`` timed calls (seconds)."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "repeats": repeats,
        "median_seconds": round(statistics.median(times), 6),
        "min_seconds": round(min(times), 6),
        "max_seconds": round(max(times), 6),
    }


def bench_intra(repeats: int) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for m, k, l in INTRA_SHAPES:
        op = matmul("mm", m, k, l)
        out[f"{m}x{k}x{l}"] = _time_call(
            lambda op=op: optimize_intra(op, BUFFER_ELEMS), repeats
        )
    return out


def bench_fused(repeats: int) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for m, k, l, n in FUSED_CHAINS:
        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        out[f"{m}x{k}x{l}x{n}"] = _time_call(
            lambda ops=[op1, op2]: optimize_fused(ops, BUFFER_ELEMS), repeats
        )
    return out


def bench_batch(batch_requests: int, jobs: int) -> Dict[str, Any]:
    """Cold-cache end-to-end batch throughput (requests/second).

    Every request is unique (the ``m`` dimension varies) so the LRU
    cache cannot answer any of them -- this measures the compute path,
    not cache lookup.
    """

    requests = [
        intra_request(32 + index, 24, 40, 4096)
        for index in range(batch_requests)
    ]
    engine = BatchEngine(EngineConfig(jobs=jobs, cache_size=4))
    start = time.perf_counter()
    report = engine.run_batch(requests)
    wall = time.perf_counter() - start
    if report.errors:
        raise RuntimeError(
            f"bench batch had {report.errors} errors; timings are invalid"
        )
    return {
        "requests": batch_requests,
        "jobs": jobs,
        "wall_seconds": round(wall, 6),
        "requests_per_second": round(batch_requests / wall, 3) if wall else 0.0,
    }


def bench_dag_plan(repeats: int) -> Dict[str, Any]:
    """Cold vs warm DAG planning: the memoization delta.

    ``cold`` drops the shared intra/fused/NRA caches before every call;
    ``warm`` reuses them -- the planner's steady state inside sweeps,
    the enumerative baseline, and the serving tier, where identical
    segments recur across candidate partitions.  The cold/warm ratio is
    the measured payoff of routing ``segment_cost`` through
    :mod:`repro.service.intra_cache`.
    """

    from .core.nra import clear_nra_cache
    from .plan import plan_dag, scenario_graph
    from .service.intra_cache import clear_fused_cache, clear_intra_cache

    graph = scenario_graph(PLAN_SCENARIO)

    def cold() -> None:
        clear_intra_cache()
        clear_fused_cache()
        clear_nra_cache()
        plan_dag(graph, PLAN_BUFFER_ELEMS)

    def warm() -> None:
        plan_dag(graph, PLAN_BUFFER_ELEMS)

    warm()  # prime the caches so the first warm repeat is steady-state
    return {
        "scenario": PLAN_SCENARIO,
        "buffer_elems": PLAN_BUFFER_ELEMS,
        "cold": _time_call(cold, repeats),
        "warm": _time_call(warm, repeats),
    }


def bench_dag_plan_batch(jobs: int) -> Dict[str, Any]:
    """Served ``dag_plan`` throughput over the full scenario matrix."""
    from .plan import SCENARIO_BUFFERS, list_scenarios
    from .service import dag_plan_request

    requests = [
        dag_plan_request(scenario, buffer_elems, baseline=True)
        for scenario in list_scenarios()
        for buffer_elems in SCENARIO_BUFFERS
    ]
    engine = BatchEngine(EngineConfig(jobs=jobs, cache_size=4))
    start = time.perf_counter()
    report = engine.run_batch(requests)
    wall = time.perf_counter() - start
    if report.errors:
        raise RuntimeError(
            f"bench dag_plan batch had {report.errors} errors; "
            "timings are invalid"
        )
    return {
        "requests": len(requests),
        "jobs": jobs,
        "wall_seconds": round(wall, 6),
        "requests_per_second": (
            round(len(requests) / wall, 3) if wall else 0.0
        ),
    }


def run_bench(
    repeats: int = 5, batch_requests: int = 200, jobs: int = 2
) -> Dict[str, Any]:
    """Run every benchmark; returns the JSON-able result document."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "date": time.strftime("%Y-%m-%d"),
        "machine": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "buffer_elems": BUFFER_ELEMS,
        "optimize_intra": bench_intra(repeats),
        "optimize_fused": bench_fused(repeats),
        "batch": bench_batch(batch_requests, jobs),
        "dag_plan": bench_dag_plan(repeats),
        "dag_plan_batch": bench_dag_plan_batch(jobs),
    }


def render_bench_text(result: Dict[str, Any]) -> str:
    lines = [
        "bench summary",
        "-------------",
        f"python {result['machine']['python']} "
        f"({result['machine']['platform']})",
    ]
    for section in ("optimize_intra", "optimize_fused"):
        for shape, timing in result[section].items():
            lines.append(
                f"{section:<16} {shape:<16} "
                f"median={timing['median_seconds'] * 1e3:.3f}ms "
                f"(min={timing['min_seconds'] * 1e3:.3f}ms)"
            )
    batch = result["batch"]
    lines.append(
        f"{'batch':<16} {batch['requests']} reqs @ jobs={batch['jobs']}: "
        f"{batch['requests_per_second']:.1f} req/s "
        f"({batch['wall_seconds']:.3f}s wall)"
    )
    dag_plan = result.get("dag_plan")
    if dag_plan:
        cold = dag_plan["cold"]["median_seconds"]
        warm = dag_plan["warm"]["median_seconds"]
        speedup = cold / warm if warm else float("inf")
        lines.append(
            f"{'dag_plan':<16} {dag_plan['scenario']} "
            f"@ {dag_plan['buffer_elems']} elems: "
            f"cold={cold * 1e3:.3f}ms warm={warm * 1e3:.3f}ms "
            f"({speedup:.1f}x memoization)"
        )
    plan_batch = result.get("dag_plan_batch")
    if plan_batch:
        lines.append(
            f"{'dag_plan_batch':<16} {plan_batch['requests']} reqs @ "
            f"jobs={plan_batch['jobs']}: "
            f"{plan_batch['requests_per_second']:.1f} req/s "
            f"({plan_batch['wall_seconds']:.3f}s wall)"
        )
    return "\n".join(lines)


def write_bench(result: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(result, sort_keys=True, indent=2) + "\n")


def read_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_regression(
    result: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> List[str]:
    """Compare ``result`` to a committed baseline; returns violations.

    Guards the headline number only -- end-to-end batch throughput --
    because micro-benchmark medians on a shared CI box swing too much to
    gate on, while a >30% collapse of whole-stack throughput means a
    real regression (an accidental O(n^2), a lock on the hot path)
    regardless of machine noise.  Schema mismatches refuse loudly
    instead of comparing incomparables.
    """

    if not 0.0 < max_regression < 1.0:
        raise ValueError("max_regression must be in (0, 1)")
    problems: List[str] = []
    if baseline.get("schema") != result.get("schema"):
        problems.append(
            f"bench schema mismatch: baseline schema "
            f"{baseline.get('schema')!r} vs current "
            f"{result.get('schema')!r}; re-baseline instead of comparing"
        )
        return problems
    base_rps = (baseline.get("batch") or {}).get("requests_per_second")
    cur_rps = (result.get("batch") or {}).get("requests_per_second")
    if not base_rps or base_rps <= 0:
        problems.append(
            "baseline has no positive batch.requests_per_second; "
            "re-baseline"
        )
        return problems
    if cur_rps is None:
        problems.append("current result has no batch.requests_per_second")
        return problems
    floor = base_rps * (1.0 - max_regression)
    if cur_rps < floor:
        problems.append(
            f"batch throughput regressed {100 * (1 - cur_rps / base_rps):.1f}%: "
            f"{cur_rps:.1f} req/s vs baseline {base_rps:.1f} req/s "
            f"(floor {floor:.1f} at --max-regression {max_regression:g})"
        )
    return problems
