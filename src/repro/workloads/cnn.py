"""CNN workloads: ResNet-50-class convolution layers.

The paper evaluates attention models, but its principles are derived for
tensor operators in general ("Principle 1-4 can be extended to other tensor
operators"); these ResNet-50 layer shapes exercise the im2col-lowered
convolution path (:mod:`repro.ir.conv`) across very different aspect
ratios -- early layers are spatial-heavy (huge M, small K), late layers
channel-heavy (small M, large K/L) -- which sweeps all four buffer regimes
at realistic buffer sizes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.conv import Conv2DShape

#: Representative ResNet-50 stages (batch 16, as in the paper's setup).
RESNET50_LAYERS: Dict[str, Conv2DShape] = {
    "conv1": Conv2DShape(
        batch=16, in_channels=3, height=224, width=224,
        out_channels=64, kernel_h=7, kernel_w=7, stride=2, padding=3,
    ),
    "conv2_3x3": Conv2DShape(
        batch=16, in_channels=64, height=56, width=56,
        out_channels=64, kernel_h=3, kernel_w=3, stride=1, padding=1,
    ),
    "conv3_3x3": Conv2DShape(
        batch=16, in_channels=128, height=28, width=28,
        out_channels=128, kernel_h=3, kernel_w=3, stride=1, padding=1,
    ),
    "conv4_3x3": Conv2DShape(
        batch=16, in_channels=256, height=14, width=14,
        out_channels=256, kernel_h=3, kernel_w=3, stride=1, padding=1,
    ),
    "conv5_3x3": Conv2DShape(
        batch=16, in_channels=512, height=7, width=7,
        out_channels=512, kernel_h=3, kernel_w=3, stride=1, padding=1,
    ),
    "conv5_1x1": Conv2DShape(
        batch=16, in_channels=512, height=7, width=7,
        out_channels=2048, kernel_h=1, kernel_w=1, stride=1, padding=0,
    ),
}


def layer_names() -> Tuple[str, ...]:
    return tuple(RESNET50_LAYERS)
