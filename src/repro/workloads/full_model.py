"""Whole-model accounting: layer counts and end-to-end totals.

The per-layer graphs of :mod:`repro.workloads.transformer` are exact for
*normalized* comparisons (platform ratios are layer-count invariant); for
absolute end-to-end numbers -- total traffic, cycles, energy per inference
pass -- multiply by the model's depth.  This module records each Table II
model's published layer count and provides the scaled totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.accelerators import AcceleratorSpec, evaluate_graph
from ..arch.energy import EnergyModel, EnergyReport, energy_of
from ..arch.perf import PlatformPerf
from .models import ModelConfig
from .transformer import build_layer_graph

#: Published encoder/decoder depths of the Table II models.
MODEL_LAYERS: Dict[str, int] = {
    "Bert": 12,
    "GPT-2": 12,
    "Blenderbot": 12,     # 2 x (2 enc + 12 dec) family; 12 as representative
    "XLM": 12,
    "DeBERTa-v2": 24,
    "LLaMA2": 32,
    "ALBERT": 12,         # parameter-shared, but 12 computation layers
}


def layer_count(model: ModelConfig) -> int:
    """Layers for a Table II model (defaults to 12 for unknown names)."""
    return MODEL_LAYERS.get(model.name, 12)


@dataclass(frozen=True)
class ModelTotals:
    """End-to-end (all-layer) totals for one model on one platform."""

    model: str
    platform: str
    layers: int
    layer_perf: PlatformPerf

    @property
    def total_memory_access(self) -> int:
        return self.layer_perf.total_memory_access * self.layers

    @property
    def total_cycles(self) -> float:
        return self.layer_perf.total_cycles * self.layers

    @property
    def total_macs(self) -> int:
        return self.layer_perf.total_macs * self.layers

    @property
    def latency_ms(self) -> float:
        """End-to-end latency at 1 GHz (the evaluation clock)."""
        return self.total_cycles / 1e6

    def energy(self, model: EnergyModel = EnergyModel()) -> EnergyReport:
        """All-layer energy decomposition."""
        layer_energy = energy_of(self.layer_perf, model)
        return EnergyReport(
            platform=self.platform,
            workload=f"{self.model} x{self.layers}",
            dram_pj=layer_energy.dram_pj * self.layers,
            buffer_pj=layer_energy.buffer_pj * self.layers,
            compute_pj=layer_energy.compute_pj * self.layers,
        )


def evaluate_model(
    model: ModelConfig,
    spec: AcceleratorSpec,
    layers: int = 0,
) -> ModelTotals:
    """End-to-end totals: one optimized layer scaled by the model's depth."""
    graph = build_layer_graph(model)
    perf = evaluate_graph(graph, spec)
    return ModelTotals(
        model=model.name,
        platform=spec.name,
        layers=layers or layer_count(model),
        layer_perf=perf,
    )
