"""Training-step workloads: forward + backward GEMMs (extension).

The paper evaluates inference; training triples the GEMM count per layer
(forward, input-gradient, weight-gradient) and creates *new* fusion
chains in the backward pass -- the activation-gradient GEMMs form a
producer/consumer chain through the layer just like the forward pass:

* forward FFN:   ``X W1 = FF``, ``FF W2 = Y``                 (chain)
* input grads:   ``dY W2^T = dFF``, ``dFF W1^T = dX``         (chain)
* weight grads:  ``FF^T dY = dW2``, ``X^T dFF = dW1``         (independent)

Transposes are free at the modeling level (a transposed operand is just a
different dim binding), so each GEMM is a plain :func:`matmul` with the
appropriate shape.  The weight-gradient GEMMs consume ``dFF``/``FF`` as
well, so ``dFF`` has *two* consumers -- the chain detector correctly keeps
the input-gradient chain fusable only when modeled per-consumer; here the
weight-gradient ops read separately-materialized copies (the standard
training dataflow keeps activations checkpointed in memory anyway).
"""

from __future__ import annotations

from ..ir.graph import OperatorGraph
from ..ir.operator import matmul
from .models import ModelConfig


def build_ffn_training_graph(config: ModelConfig) -> OperatorGraph:
    """One FFN block's training step: forward, input-grad and weight-grad.

    Dimensions: tokens ``T = batch * seq``, hidden ``H``, expansion ``F``.
    """

    tokens = config.batch * config.seq_len
    hidden = config.hidden
    ffn_hidden = config.ffn_hidden
    graph = OperatorGraph(name=f"{config.name}-ffn-training")

    # Forward chain: X[T,H] W1[H,F] = FF[T,F]; FF W2[F,H] = Y[T,H].
    fwd1 = graph.add(matmul(f"{config.name}.fwd1", tokens, hidden, ffn_hidden))
    graph.add(
        matmul(f"{config.name}.fwd2", tokens, ffn_hidden, hidden, a=fwd1.output)
    )

    # Input-gradient chain: dY[T,H] W2^T[H,F] = dFF[T,F]; dFF W1^T[F,H] = dX.
    bwd1 = graph.add(matmul(f"{config.name}.dgrad2", tokens, hidden, ffn_hidden))
    graph.add(
        matmul(
            f"{config.name}.dgrad1", tokens, ffn_hidden, hidden, a=bwd1.output
        )
    )

    # Weight gradients: FF^T[F,T] dY[T,H] = dW2[F,H]; X^T[H,T] dFF = dW1[H,F].
    graph.add(matmul(f"{config.name}.wgrad2", ffn_hidden, tokens, hidden))
    graph.add(matmul(f"{config.name}.wgrad1", hidden, tokens, ffn_hidden))
    return graph


def training_flops_multiplier() -> int:
    """Training GEMM FLOPs per layer relative to forward-only (the classic
    3x: forward + input gradients + weight gradients)."""
    return 3
