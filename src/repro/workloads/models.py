"""The seven attention-based models of paper Table II.

=========== ======= =========== ===========
model       heads   seq. length hidden size
=========== ======= =========== ===========
Bert        12      1024        768
GPT-2       12      2048        768
Blenderbot  16      256         1024
XLM         16      1024        2048
DeBERTa-v2  24      1024        1536
LLaMA2      32      4096        4096
ALBERT      64      1024        4096
=========== ======= =========== ===========

Batch size 16 (Sec. V-A); LLaMA2 is additionally swept over sequence
lengths 256..16K for Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class ModelConfig:
    """One transformer workload configuration."""

    name: str
    heads: int
    seq_len: int
    hidden: int
    batch: int = 16
    ffn_mult: int = 4

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ValueError(
                f"{self.name}: hidden {self.hidden} not divisible by heads "
                f"{self.heads}"
            )
        for field_name in ("heads", "seq_len", "hidden", "batch", "ffn_mult"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def ffn_hidden(self) -> int:
        return self.hidden * self.ffn_mult

    def with_seq_len(self, seq_len: int) -> "ModelConfig":
        """Copy with a different sequence length (for Fig. 11 sweeps)."""
        return replace(self, seq_len=seq_len)

    def table_row(self) -> Dict[str, object]:
        """Table II row for this model."""
        return {
            "Model": self.name,
            "# of Heads": self.heads,
            "Seq. Length": self.seq_len,
            "Hidden Size": self.hidden,
        }


BERT = ModelConfig("Bert", heads=12, seq_len=1024, hidden=768)
GPT2 = ModelConfig("GPT-2", heads=12, seq_len=2048, hidden=768)
BLENDERBOT = ModelConfig("Blenderbot", heads=16, seq_len=256, hidden=1024)
XLM = ModelConfig("XLM", heads=16, seq_len=1024, hidden=2048)
DEBERTA_V2 = ModelConfig("DeBERTa-v2", heads=24, seq_len=1024, hidden=1536)
LLAMA2 = ModelConfig("LLaMA2", heads=32, seq_len=4096, hidden=4096)
ALBERT = ModelConfig("ALBERT", heads=64, seq_len=1024, hidden=4096)

#: Table II, in the paper's row order.
PAPER_MODELS: Tuple[ModelConfig, ...] = (
    BERT,
    GPT2,
    BLENDERBOT,
    XLM,
    DEBERTA_V2,
    LLAMA2,
    ALBERT,
)

#: Fig. 11 sweep: LLaMA2 at sequence lengths 256 .. 16K.
LLAMA2_SEQ_SWEEP: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192, 16384)


def model_by_name(name: str) -> ModelConfig:
    """Look up a Table II model by (case-insensitive) name."""
    for model in PAPER_MODELS:
        if model.name.lower() == name.lower():
            return model
    raise KeyError(
        f"unknown model {name!r}; choose from "
        + ", ".join(model.name for model in PAPER_MODELS)
    )
