"""Mixture-of-experts FFN workloads (extension).

A sparse-MoE block replaces the dense FFN with ``num_experts`` expert FFNs
of which each token activates ``top_k``.  Per expert the computation is the
same fusable ``ffn1 -> ffn2`` chain with a reduced token count
(``tokens * top_k / num_experts`` under balanced routing), so the structure
exercises the principles on *many small* fusable chains -- the opposite
corner from the single large dense FFN -- plus a streaming router.

This is an extension workload (not in the paper); balanced routing is
assumed, which makes the ``count`` repetition exact.
"""

from __future__ import annotations

import math

from ..ir.graph import OperatorGraph
from ..ir.operator import matmul
from .models import ModelConfig


def build_moe_ffn_graph(
    config: ModelConfig,
    num_experts: int = 8,
    top_k: int = 2,
) -> OperatorGraph:
    """The MoE FFN block: router + per-expert fused FFN chains.

    * router: ``[B*S, H] x [H, E]`` (dense, tiny);
    * experts: ``num_experts`` chains of ``[T_e, H] x [H, 4H]`` then
      ``[T_e, 4H] x [4H, H]`` with ``T_e = tokens * top_k / num_experts``
      tokens each (balanced routing), modeled as one chain with a
      ``num_experts`` repetition count.
    """

    if num_experts <= 0 or not 1 <= top_k <= num_experts:
        raise ValueError("need 1 <= top_k <= num_experts")
    tokens = config.batch * config.seq_len
    hidden = config.hidden
    expert_tokens = max(1, math.ceil(tokens * top_k / num_experts))
    graph = OperatorGraph(name=f"{config.name}-moe{num_experts}x{top_k}")
    graph.add(matmul(f"{config.name}.router", tokens, hidden, num_experts))
    ffn1 = graph.add(
        matmul(
            f"{config.name}.expert_ffn1",
            expert_tokens,
            hidden,
            config.ffn_hidden,
            count=num_experts,
        )
    )
    graph.add(
        matmul(
            f"{config.name}.expert_ffn2",
            expert_tokens,
            config.ffn_hidden,
            hidden,
            a=ffn1.output,
            count=num_experts,
        )
    )
    return graph
