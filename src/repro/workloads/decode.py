"""Decode-phase (autoregressive) transformer workloads.

The paper's Fig. 11 sweeps LLaMA2's *prefill* sequence length; serving
workloads also run the *decode* phase, where each step processes one query
token against a KV cache of ``context`` tokens.  Decode flips the operator
shapes -- the attention products become skinny (M = 1 per head) and the
projections GEMV-like (M = batch) -- exercising the principles' tiny-M
corner and the platforms' utilization behavior on matrix-vector work.

This is an extension study (not a paper figure); it reuses the exact same
graph machinery.
"""

from __future__ import annotations

from ..ir.graph import OperatorGraph
from ..ir.operator import matmul, rowwise_softmax
from .models import ModelConfig


def build_decode_graph(
    config: ModelConfig, context: int
) -> OperatorGraph:
    """One decode step over a KV cache of ``context`` tokens.

    Per layer:

    * q/k/v projections: ``[batch, H] x [H, H]`` (one token per sequence);
    * attention scores: per head ``[1, d_h] x [d_h, context]``;
    * softmax over ``[1, context]``;
    * attention output: per head ``[1, context] x [context, d_h]``;
    * output projection and the FFN pair, all with ``M = batch``.
    """

    if context <= 0:
        raise ValueError("context length must be positive")
    graph = OperatorGraph(name=f"{config.name}-decode@{context}")
    batch = config.batch
    hidden = config.hidden
    head_dim = config.head_dim
    instances = batch * config.heads
    for name in ("q_proj", "k_proj", "v_proj"):
        graph.add(matmul(f"{config.name}.{name}", batch, hidden, hidden))
    qk = graph.add(
        matmul(f"{config.name}.qk", 1, head_dim, context, count=instances)
    )
    softmax = graph.add(
        rowwise_softmax(f"{config.name}.softmax", qk.output, count=instances)
    )
    graph.add(
        matmul(
            f"{config.name}.av",
            1,
            context,
            head_dim,
            a=softmax.output,
            count=instances,
        )
    )
    graph.add(matmul(f"{config.name}.out_proj", batch, hidden, hidden))
    ffn1 = graph.add(
        matmul(f"{config.name}.ffn1", batch, hidden, config.ffn_hidden)
    )
    graph.add(
        matmul(
            f"{config.name}.ffn2",
            batch,
            config.ffn_hidden,
            hidden,
            a=ffn1.output,
        )
    )
    return graph
