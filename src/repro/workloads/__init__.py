"""Workload models: the paper's seven attention-based networks (Table II)."""

from .models import (
    ALBERT,
    BERT,
    BLENDERBOT,
    DEBERTA_V2,
    GPT2,
    LLAMA2,
    LLAMA2_SEQ_SWEEP,
    PAPER_MODELS,
    XLM,
    ModelConfig,
    model_by_name,
)
from .cnn import RESNET50_LAYERS, layer_names
from .decode import build_decode_graph
from .full_model import MODEL_LAYERS, ModelTotals, evaluate_model, layer_count
from .moe import build_moe_ffn_graph
from .training import build_ffn_training_graph, training_flops_multiplier
from .transformer import (
    attention_operators,
    build_layer_graph,
    ffn_operators,
    projection_operators,
    representative_matmuls,
)

__all__ = [
    "build_ffn_training_graph",
    "training_flops_multiplier",
    "MODEL_LAYERS",
    "ModelTotals",
    "evaluate_model",
    "layer_count",
    "build_moe_ffn_graph",
    "RESNET50_LAYERS",
    "layer_names",
    "build_decode_graph",
    "ALBERT",
    "BERT",
    "BLENDERBOT",
    "DEBERTA_V2",
    "GPT2",
    "LLAMA2",
    "LLAMA2_SEQ_SWEEP",
    "PAPER_MODELS",
    "XLM",
    "ModelConfig",
    "model_by_name",
    "attention_operators",
    "build_layer_graph",
    "ffn_operators",
    "projection_operators",
    "representative_matmuls",
]
