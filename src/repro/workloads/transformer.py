"""Transformer workload generation: Table II models as operator graphs.

One encoder layer per model is generated (traffic and utilization ratios
between platforms are layer-count invariant, so a single layer reproduces
the paper's normalized comparisons):

* ``q/k/v_proj`` -- ``[B*S, H] x [H, H]``; the batch folds into the M
  dimension exactly because the weight matrix is shared across the batch.
* ``qk``         -- per-head ``[S, d_h] x [d_h, S]`` repeated
  ``batch * heads`` times (no operand shared across instances, so the
  repetition is a ``count`` multiplier).
* ``softmax``    -- row-wise over the ``[S, S]`` score matrix, fused freely.
* ``av``         -- per-head ``[S, S] x [S, d_h]``.
* ``out_proj``   -- ``[B*S, H] x [H, H]``.
* ``ffn1/ffn2``  -- ``[B*S, H] x [H, 4H]`` then ``[B*S, 4H] x [4H, H]``,
  a producer/consumer chain (the second fusion opportunity).

The fusion-visible producer/consumer links are ``qk -> softmax -> av`` and
``ffn1 -> ffn2``; projection outputs cross head-reshape boundaries and are
modeled as fresh tensors (they are also *not* fusable in the paper's
tensor-wise sense, since the per-head operators have a different repetition
count).
"""

from __future__ import annotations

from typing import Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator, matmul, rowwise_softmax
from .models import ModelConfig


def attention_operators(config: ModelConfig) -> Tuple[TensorOperator, ...]:
    """The per-head attention chain: QK^T -> softmax -> AV."""
    seq = config.seq_len
    head_dim = config.head_dim
    instances = config.batch * config.heads
    qk = matmul(f"{config.name}.qk", seq, head_dim, seq, count=instances)
    softmax = rowwise_softmax(f"{config.name}.softmax", qk.output, count=instances)
    av = matmul(
        f"{config.name}.av", seq, seq, head_dim, a=softmax.output, count=instances
    )
    return (qk, softmax, av)


def projection_operators(config: ModelConfig) -> Tuple[TensorOperator, ...]:
    """QKV and output projections (batch folded into M)."""
    tokens = config.batch * config.seq_len
    hidden = config.hidden
    return tuple(
        matmul(f"{config.name}.{name}", tokens, hidden, hidden)
        for name in ("q_proj", "k_proj", "v_proj", "out_proj")
    )


def ffn_operators(config: ModelConfig) -> Tuple[TensorOperator, ...]:
    """The two-layer feed-forward block as a fusable chain."""
    tokens = config.batch * config.seq_len
    hidden = config.hidden
    ffn_hidden = config.ffn_hidden
    ffn1 = matmul(f"{config.name}.ffn1", tokens, hidden, ffn_hidden)
    ffn2 = matmul(f"{config.name}.ffn2", tokens, ffn_hidden, hidden, a=ffn1.output)
    return (ffn1, ffn2)


def build_layer_graph(config: ModelConfig) -> OperatorGraph:
    """One full encoder layer of the model as an operator graph."""
    graph = OperatorGraph(name=config.name)
    graph.extend(projection_operators(config))
    graph.extend(attention_operators(config))
    graph.extend(ffn_operators(config))
    return graph


def representative_matmuls(config: ModelConfig) -> Tuple[TensorOperator, ...]:
    """The distinct MM shapes of one layer (for per-operator validation).

    Used by the Fig. 9 validation: principle-optimized MA vs. searched MA
    per operator over a buffer-size sweep.
    """

    tokens = config.batch * config.seq_len
    hidden = config.hidden
    seq = config.seq_len
    head_dim = config.head_dim
    return (
        matmul(f"{config.name}.proj", tokens, hidden, hidden),
        matmul(f"{config.name}.qk", seq, head_dim, seq),
        matmul(f"{config.name}.av", seq, seq, head_dim),
        matmul(f"{config.name}.ffn1", tokens, hidden, config.ffn_hidden),
        matmul(f"{config.name}.ffn2", tokens, config.ffn_hidden, hidden),
    )
