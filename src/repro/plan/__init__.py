"""DAG-scale fusion planning (the analytical layer above chain DP).

``repro.plan`` plans *whole operator DAGs* into fused sets with retained
intermediates, extending the paper's pairwise Principle 4 and the
chain-at-a-time planner in :mod:`repro.core.graph_optimizer`:

* :mod:`repro.plan.partition` -- the partition/retention model, the
  shared :func:`cost_partition` primitive, and the principle-guided
  :func:`plan_dag` planner;
* :mod:`repro.plan.enumerative` -- a LoopTree-style budgeted enumerative
  mapper over the same space, the independent search baseline;
* :mod:`repro.plan.scenarios` -- the pinned scenario catalog (attention,
  moe, decode, training-backward) shared by CLI, service, CI, and bench.

Certification of plans lives in :func:`repro.verify.certify_plan`, which
recounts a plan segment-by-segment and cross-checks (and self-heals)
principle vs. enumerative.
"""

from .partition import (
    DagPlan,
    PlanSegment,
    clean_links,
    cost_partition,
    plan_dag,
    retention_candidates,
)
from .enumerative import (
    DEFAULT_PLAN_BUDGET,
    MAX_RETENTION_CANDIDATES,
    EnumerationStats,
    EnumerativeOutcome,
    enumerate_plans,
)
from .scenarios import (
    SCENARIO_BUFFERS,
    SCENARIO_CONFIG,
    SCENARIOS,
    PlanScenario,
    list_scenarios,
    scenario_graph,
)

__all__ = [
    "DagPlan",
    "PlanSegment",
    "clean_links",
    "cost_partition",
    "plan_dag",
    "retention_candidates",
    "DEFAULT_PLAN_BUDGET",
    "MAX_RETENTION_CANDIDATES",
    "EnumerationStats",
    "EnumerativeOutcome",
    "enumerate_plans",
    "SCENARIO_BUFFERS",
    "SCENARIO_CONFIG",
    "SCENARIOS",
    "PlanScenario",
    "list_scenarios",
    "scenario_graph",
]
