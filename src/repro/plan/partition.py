"""Principle-guided partitioning of whole operator DAGs into fused sets.

The paper's Principle 4 decides fusion *pairwise* and
:mod:`repro.core.graph_optimizer` extends it to one maximal linear chain
at a time.  This module plans the **whole DAG**:

* a *partition* splits the graph's operators into *segments* -- each a
  single operator or a producer/consumer run fusable as one nest
  (:class:`~repro.dataflow.fusion_nest.FusedChain` rules: consecutive
  consumption, equal repetition counts, the produced tensor's only
  consumer inside the segment);
* *join* operators (several produced inputs) may extend a segment from
  **any one** of their producers -- the chain detector in
  :meth:`~repro.ir.graph.OperatorGraph.chains` refuses all of them, so
  this is the first DAG-only degree of freedom;
* *retained intermediates* are the second: a tensor with consumers in
  later segments can stay resident in a reserved slice of the buffer
  from its producer segment through its last consumer segment instead of
  spilling to DRAM.  Every segment in the live range is re-optimized at
  the reduced budget, and the retained tensor's DRAM traffic (its
  counted accesses, redundant re-reads included -- they all hit the
  resident copy) is elided.

Costing goes through :func:`repro.core.graph_optimizer.segment_cost`
(``optimize_intra`` / ``optimize_fused``), so a plan's claim is exactly
the sum the certification layer can recount segment-by-segment.  The
planner itself is *principle-guided search*: chain DP segments each
path exactly, joins are resolved by the measured pairwise fusion gain
(Principle 4's measured form), retention is accepted greedily when it
strictly lowers the total, and the tested
:meth:`~repro.ir.graph.OperatorGraph.chains` decomposition is always
evaluated as a fallback -- so a DAG plan is never worse than the
chain-independent plan.  Optimality over the whole partition space is
*not* claimed; the budgeted enumerative mapper
(:mod:`repro.plan.enumerative`) is the independent search baseline the
principle-guided result is cross-checked (and, via
:func:`repro.verify.certify_plan`, self-healed) against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.cost import PartialSumConvention
from ..core.fusion import FusionMedium
from ..core.graph_optimizer import (
    FusionPredicate,
    SegmentResult,
    optimize_chain,
    segment_cost,
)


@dataclass(frozen=True)
class PlanSegment:
    """One fused set of a DAG plan.

    ``resident`` names the retained tensors this segment touches (their
    DRAM traffic is elided from its cost); ``reserved_elems`` is the
    buffer capacity set aside for *all* retained tensors live while this
    segment runs (touched or merely passing through), so the segment's
    dataflow was optimized at ``buffer_elems - reserved_elems``.
    """

    ops: Tuple[TensorOperator, ...]
    result: SegmentResult
    resident: Tuple[str, ...] = ()
    reserved_elems: int = 0

    @property
    def fused(self) -> bool:
        return len(self.ops) > 1

    @property
    def raw_memory_access(self) -> int:
        """The segment optimizer's count, before retention elision."""
        return self.result.memory_access

    @property
    def elided_access(self) -> int:
        """DRAM traffic absorbed by buffer-resident (retained) tensors."""
        per_tensor = self.result.report.per_tensor
        count = self.result.report.count
        return count * sum(
            per_tensor[name].accesses for name in self.resident if name in per_tensor
        )

    @property
    def memory_access(self) -> int:
        return self.raw_memory_access - self.elided_access

    def describe(self) -> str:
        text = self.result.describe()
        if self.resident:
            text += (
                f" [resident {'+'.join(self.resident)}: "
                f"-{self.elided_access} MA, {self.reserved_elems} elems reserved]"
            )
        return text


@dataclass(frozen=True)
class DagPlan:
    """A fused-set partition of a whole operator DAG, with retention."""

    graph_name: str
    buffer_elems: int
    segments: Tuple[PlanSegment, ...]
    retained: Tuple[str, ...] = ()
    method: str = "principle"

    @property
    def memory_access(self) -> int:
        return sum(segment.memory_access for segment in self.segments)

    @property
    def fused_segments(self) -> Tuple[PlanSegment, ...]:
        return tuple(segment for segment in self.segments if segment.fused)

    def signature(self) -> Tuple:
        """Canonical identity used for deterministic tie-breaking."""
        return (
            tuple(tuple(op.name for op in segment.ops) for segment in self.segments),
            self.retained,
        )

    def describe(self) -> str:
        lines = [
            f"dag-plan[{self.graph_name}] @ {self.buffer_elems} elems "
            f"({self.method}): total MA={self.memory_access}"
        ]
        if self.retained:
            lines.append("  retained: " + ", ".join(self.retained))
        lines.extend("  " + segment.describe() for segment in self.segments)
        return "\n".join(lines)


def clean_links(graph: OperatorGraph) -> Dict[str, str]:
    """Producer-name -> consumer-name edges a fused set may run across.

    A link requires the produced tensor's *only* consumer to be the
    linked operator (fusion elides the tensor, so nobody else may need
    it from DRAM) and equal repetition counts (the fused nest executes
    both operators under one ``count``).  Unlike
    :meth:`~repro.ir.graph.OperatorGraph.chains`, a join operator keeps
    links from *all* of its producers here -- the planner chooses one.
    """

    links: Dict[str, str] = {}
    for operator in graph:
        consumers = graph.consumers(operator.output.name)
        if len(consumers) == 1 and consumers[0].count == operator.count:
            links[operator.name] = consumers[0].name
    return links


def _order_segments(
    graph: OperatorGraph, segments_ops: Sequence[Tuple[TensorOperator, ...]]
) -> Tuple[Tuple[TensorOperator, ...], ...]:
    """Segments in a valid execution order (by last-op topological rank).

    Cross-segment data flows only out of a segment's *last* operator
    (any earlier operator's output is consumed inside the segment by the
    clean-link rule), and an edge ``u -> v`` puts ``u`` before ``v`` in
    the operator order, so sorting by last-op rank linearizes the
    segment DAG.
    """

    rank = {op.name: index for index, op in enumerate(graph.topological_order())}
    return tuple(
        sorted(
            (tuple(ops) for ops in segments_ops),
            key=lambda ops: rank[ops[-1].name],
        )
    )


def _segment_structure_ok(
    graph: OperatorGraph, ordered: Sequence[Tuple[TensorOperator, ...]]
) -> bool:
    """Partition validity: exact cover + clean links inside every segment."""
    seen: set = set()
    for ops in ordered:
        if not ops:
            return False
        for op in ops:
            if op.name in seen or op.name not in graph:
                return False
            seen.add(op.name)
        for a, b in zip(ops, ops[1:]):
            consumers = graph.consumers(a.output.name)
            if (
                len(consumers) != 1
                or consumers[0].name != b.name
                or a.count != b.count
            ):
                return False
    return len(seen) == len(graph)


def _retention_structure(
    graph: OperatorGraph,
    ordered: Sequence[Tuple[TensorOperator, ...]],
    retained: Sequence[str],
) -> Optional[Tuple[Tuple[int, ...], Tuple[Tuple[str, ...], ...]]]:
    """Reserved capacity and resident sets per segment, or ``None``.

    Validates every retained tensor: produced by the *last* operator of
    an earlier segment (mid-segment outputs are elided by fusion and
    never materialize fully), consumed only in strictly later segments,
    with producer and consumers agreeing on ``count`` (residency is
    per-instance, so differing repetition factors have no consistent
    live range).
    """

    segment_of: Dict[str, int] = {}
    for index, ops in enumerate(ordered):
        for op in ops:
            segment_of[op.name] = index
    reserved = [0] * len(ordered)
    resident: List[List[str]] = [[] for _ in ordered]
    for name in retained:
        producer = graph.producer(name)
        consumers = graph.consumers(name)
        if producer is None or not consumers:
            return None
        producer_segment = segment_of[producer.name]
        if ordered[producer_segment][-1].name != producer.name:
            return None
        consumer_segments = [segment_of[c.name] for c in consumers]
        if min(consumer_segments) <= producer_segment:
            return None
        if any(c.count != producer.count for c in consumers):
            return None
        size = producer.output.size
        for index in range(producer_segment, max(consumer_segments) + 1):
            reserved[index] += size
        resident[producer_segment].append(name)
        for index in sorted(set(consumer_segments)):
            resident[index].append(name)
    return tuple(reserved), tuple(tuple(sorted(names)) for names in resident)


def cost_partition(
    graph: OperatorGraph,
    segments_ops: Sequence[Sequence[TensorOperator]],
    retained: Sequence[str],
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    method: str = "principle",
) -> Optional[DagPlan]:
    """Cost one candidate (partition, retention set); ``None`` if invalid.

    This is the *single* cost path shared by the principle-guided
    planner and the enumerative baseline, so their cross-check compares
    search quality, not cost models -- the cost model itself is audited
    independently by :func:`repro.verify.certify_plan`.
    """

    buffer_elems = validate_buffer_elems(buffer_elems)
    ordered = _order_segments(graph, [tuple(ops) for ops in segments_ops])
    if not _segment_structure_ok(graph, ordered):
        return None
    retained = tuple(sorted(set(retained)))
    structure = _retention_structure(graph, ordered, retained)
    if structure is None:
        return None
    reserved, resident = structure
    segments: List[PlanSegment] = []
    for index, ops in enumerate(ordered):
        budget = buffer_elems - reserved[index]
        if budget <= 0:
            return None
        result = segment_cost(
            ops, budget, convention=convention,
            fusion_predicate=fusion_predicate, medium=medium,
            register_elems=register_elems,
        )
        if result is None:
            return None
        segments.append(
            PlanSegment(
                ops=ops,
                result=result,
                resident=resident[index],
                reserved_elems=reserved[index],
            )
        )
    return DagPlan(
        graph_name=graph.name,
        buffer_elems=buffer_elems,
        segments=tuple(segments),
        retained=retained,
        method=method,
    )


def retention_candidates(
    graph: OperatorGraph, segments_ops: Sequence[Sequence[TensorOperator]]
) -> Tuple[str, ...]:
    """Tensor names eligible for retention under a given partition."""
    ordered = _order_segments(graph, [tuple(ops) for ops in segments_ops])
    segment_of: Dict[str, int] = {}
    for index, ops in enumerate(ordered):
        for op in ops:
            segment_of[op.name] = index
    names: List[str] = []
    for index, ops in enumerate(ordered):
        producer = ops[-1]
        consumers = graph.consumers(producer.output.name)
        if not consumers:
            continue
        if any(segment_of[c.name] <= index for c in consumers):
            continue
        if any(c.count != producer.count for c in consumers):
            continue
        names.append(producer.output.name)
    return tuple(sorted(names))


def _principle_paths(
    graph: OperatorGraph,
    buffer_elems: int,
    convention: PartialSumConvention,
    fusion_predicate: Optional[FusionPredicate],
    medium: FusionMedium,
    register_elems: Optional[int],
    enable_fusion: bool,
) -> Tuple[Tuple[TensorOperator, ...], ...]:
    """Vertex-disjoint paths over clean links, joins resolved by measured gain.

    Every operator has at most one clean out-link (its output's sole
    consumer), so after each join keeps at most one in-link the kept
    links form disjoint paths.  The join choice is Principle 4's
    measured form: keep the producer whose pairwise fused nest saves the
    most versus running both unfused (ties and the no-feasible-fusion
    case fall back to the lexicographically first producer -- the chain
    DP can always cut a kept link, so keeping one is never harmful).
    """

    links = clean_links(graph)
    in_links: Dict[str, List[str]] = {}
    for producer, consumer in links.items():
        in_links.setdefault(consumer, []).append(producer)
    kept: Dict[str, str] = {}
    for consumer_name in sorted(in_links):
        producers = sorted(in_links[consumer_name])
        if len(producers) == 1:
            kept[producers[0]] = consumer_name
            continue
        choice = producers[0]
        if enable_fusion:
            consumer = graph.operator(consumer_name)
            best_gain: Optional[int] = None
            for producer_name in producers:
                producer = graph.operator(producer_name)
                pair = segment_cost(
                    (producer, consumer), buffer_elems, convention=convention,
                    fusion_predicate=fusion_predicate, medium=medium,
                    register_elems=register_elems,
                )
                if pair is None:
                    continue
                solo_p = segment_cost((producer,), buffer_elems, convention=convention)
                solo_c = segment_cost((consumer,), buffer_elems, convention=convention)
                if solo_p is None or solo_c is None:
                    continue
                gain = (
                    solo_p.memory_access + solo_c.memory_access - pair.memory_access
                )
                if best_gain is None or gain > best_gain:
                    best_gain, choice = gain, producer_name
        kept[choice] = consumer_name
    has_kept_predecessor = set(kept.values())
    paths: List[Tuple[TensorOperator, ...]] = []
    for operator in graph.topological_order():
        if operator.name in has_kept_predecessor:
            continue
        path = [operator]
        current = operator.name
        while current in kept:
            current = kept[current]
            path.append(graph.operator(current))
        paths.append(tuple(path))
    return tuple(paths)


def _segment_paths(
    paths: Sequence[Tuple[TensorOperator, ...]],
    buffer_elems: int,
    enable_fusion: bool,
    max_group: int,
    convention: PartialSumConvention,
    fusion_predicate: Optional[FusionPredicate],
    medium: FusionMedium,
    register_elems: Optional[int],
) -> Tuple[Tuple[TensorOperator, ...], ...]:
    """Chain-DP each path exactly; returns the flat segment op-tuples."""
    segments: List[Tuple[TensorOperator, ...]] = []
    for path in paths:
        segments.extend(
            segment.ops
            for segment in optimize_chain(
                path, buffer_elems, enable_fusion=enable_fusion,
                max_group=max_group, convention=convention,
                fusion_predicate=fusion_predicate, medium=medium,
                register_elems=register_elems,
            )
        )
    return tuple(segments)


def _improve_retention(
    graph: OperatorGraph,
    plan: DagPlan,
    buffer_elems: int,
    convention: PartialSumConvention,
    fusion_predicate: Optional[FusionPredicate],
    medium: FusionMedium,
    register_elems: Optional[int],
) -> DagPlan:
    """Greedy retention: accept candidates that strictly lower the total.

    Candidates are tried in descending order of the DRAM traffic they
    could absorb under the current plan (ties by name), because a
    retained tensor's benefit is bounded by its counted accesses while
    its cost -- shrinking the budget of every live-range segment -- is
    shared.  The partition is held fixed; only budgets and elisions
    move.
    """

    segments_ops = tuple(segment.ops for segment in plan.segments)
    candidates = retention_candidates(graph, segments_ops)
    if not candidates:
        return plan

    def potential(name: str) -> int:
        saved = 0
        for segment in plan.segments:
            per_tensor = segment.result.report.per_tensor
            if name in per_tensor:
                touches = name == segment.ops[-1].output.name or any(
                    name in (t.name for t in op.inputs) for op in segment.ops
                )
                if touches:
                    saved += segment.result.report.count * per_tensor[name].accesses
        return saved

    best = plan
    retained: List[str] = list(plan.retained)
    for name in sorted(candidates, key=lambda n: (-potential(n), n)):
        if name in retained:
            continue
        trial = cost_partition(
            graph, segments_ops, tuple(retained) + (name,), buffer_elems,
            convention=convention, fusion_predicate=fusion_predicate,
            medium=medium, register_elems=register_elems, method=plan.method,
        )
        if trial is not None and trial.memory_access < best.memory_access:
            best = trial
            retained.append(name)
    return best


def plan_dag(
    graph: OperatorGraph,
    buffer_elems: int,
    enable_fusion: bool = True,
    max_group: int = 3,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    enable_retention: bool = True,
) -> DagPlan:
    """Principle-guided DAG plan: join choices + chain DP + retention.

    Both the join-resolved path decomposition and the tested
    :meth:`~repro.ir.graph.OperatorGraph.chains` fallback are costed and
    the better kept, so the result is never worse than
    :func:`repro.core.graph_optimizer.optimize_graph` on the same graph
    (the hypothesis suite asserts exactly this property).  Raises
    :class:`ValueError` when some chain has no feasible plan at all,
    matching :func:`~repro.core.graph_optimizer.optimize_chain`.
    """

    buffer_elems = validate_buffer_elems(buffer_elems)
    common = dict(
        convention=convention, fusion_predicate=fusion_predicate,
        medium=medium, register_elems=register_elems,
    )
    candidates: List[Tuple[Tuple[TensorOperator, ...], ...]] = []
    candidates.append(
        _segment_paths(
            graph.chains(), buffer_elems, enable_fusion, max_group,
            convention, fusion_predicate, medium, register_elems,
        )
    )
    principle = _segment_paths(
        _principle_paths(
            graph, buffer_elems, convention, fusion_predicate, medium,
            register_elems, enable_fusion,
        ),
        buffer_elems, enable_fusion, max_group,
        convention, fusion_predicate, medium, register_elems,
    )
    if principle not in candidates:
        candidates.append(principle)
    best: Optional[DagPlan] = None
    for segments_ops in candidates:
        plan = cost_partition(
            graph, segments_ops, (), buffer_elems, method="principle", **common
        )
        if plan is None:
            continue
        if best is None or (plan.memory_access, plan.signature()) < (
            best.memory_access, best.signature()
        ):
            best = plan
    if best is None:
        raise ValueError(
            f"no feasible DAG plan for graph {graph.name!r} with buffer "
            f"{buffer_elems}"
        )
    if enable_retention:
        best = _improve_retention(
            graph, best, buffer_elems, convention, fusion_predicate,
            medium, register_elems,
        )
    return best
