"""Named end-to-end planning scenarios over the existing graph builders.

A scenario pins one operator DAG -- built by the workload layer -- so the
planner, the enumerative baseline, the served ``dag_plan`` request kind,
the CI smoke step, and the bench harness all speak about the same graphs
by name.  The default configuration is deliberately small (the
enumerative baseline must exhaust its space within budget in CI); any
Table II model name can be substituted for scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..ir.graph import OperatorGraph
from ..workloads import (
    ModelConfig,
    build_decode_graph,
    build_ffn_training_graph,
    build_layer_graph,
    build_moe_ffn_graph,
    model_by_name,
)

#: Small pinned shape all scenarios default to.  ``batch=1`` keeps the
#: attention repetition factor (= batch * heads) low enough that the
#: enumerative mapper exhausts every scenario within its default budget.
SCENARIO_CONFIG = ModelConfig(
    name="plan-small", heads=4, seq_len=64, hidden=64, batch=1
)

#: The two pinned buffer sizes (elements) the acceptance matrix runs at:
#: one tight enough to force multi-pass dataflows, one roomy enough that
#: fusion and retention actually fit.
SCENARIO_BUFFERS: Tuple[int, ...] = (4096, 32768)


@dataclass(frozen=True)
class PlanScenario:
    """One named scenario: a description plus its graph builder."""

    name: str
    description: str
    build: Callable[[ModelConfig], OperatorGraph]


def _attention(config: ModelConfig) -> OperatorGraph:
    return build_layer_graph(config)


def _moe(config: ModelConfig) -> OperatorGraph:
    return build_moe_ffn_graph(config, num_experts=4, top_k=2)


def _decode(config: ModelConfig) -> OperatorGraph:
    return build_decode_graph(config, context=4 * config.seq_len)


def _training(config: ModelConfig) -> OperatorGraph:
    return build_ffn_training_graph(config)


SCENARIOS: Dict[str, PlanScenario] = {
    scenario.name: scenario
    for scenario in (
        PlanScenario(
            name="attention",
            description=(
                "full transformer layer: QKV projections, QK^T -> softmax "
                "-> AV attention core, output projection, FFN pair"
            ),
            build=_attention,
        ),
        PlanScenario(
            name="moe",
            description=(
                "MoE FFN block: router plus 4 expert FFN pairs at top-2 "
                "token routing"
            ),
            build=_moe,
        ),
        PlanScenario(
            name="decode",
            description=(
                "KV-cache decode step: single-token projections and "
                "GEMV-shaped attention over a 4x-seq context"
            ),
            build=_decode,
        ),
        PlanScenario(
            name="training-backward",
            description=(
                "FFN training step: forward pair, activation-gradient "
                "chain, weight-gradient operators"
            ),
            build=_training,
        ),
    )
}


def list_scenarios() -> Tuple[str, ...]:
    """Scenario names, sorted (the CLI/service contract order)."""
    return tuple(sorted(SCENARIOS))


def scenario_graph(name: str, model: Optional[str] = None) -> OperatorGraph:
    """Build a scenario's graph, optionally at a Table II model's shape.

    Raises :class:`KeyError` for unknown scenario or model names (the
    service layer classifies that as a permanent error, like unknown
    models elsewhere).
    """

    if name not in SCENARIOS:
        raise KeyError(
            f"unknown plan scenario {name!r}; choose from "
            + ", ".join(list_scenarios())
        )
    config = SCENARIO_CONFIG if not model else model_by_name(model)
    return SCENARIOS[name].build(config)
