"""Budgeted enumerative DAG mapper (LoopTree-style search baseline).

LoopTree and Fast-and-Fusiest explore fused-set mappings by *enumeration*
rather than by closed-form principles.  This module is the repo's version
of that idea, scoped to the same partition space the principle-guided
planner optimizes over (see :mod:`repro.plan.partition`):

* one kept in-link per join operator (including "keep none"),
* every cut placement of every resulting path into segments of at most
  ``max_group`` operators,
* every subset of the eligible retained-intermediate tensors (capped --
  see :data:`MAX_RETENTION_CANDIDATES`).

Each candidate is costed through the *shared*
:func:`repro.plan.partition.cost_partition` primitive, so a disagreement
between this mapper and :func:`repro.plan.partition.plan_dag` is a
*search* gap, never a cost-model gap -- the cost model itself is audited
independently by :func:`repro.verify.certify_plan`.  The search is
budgeted: evaluation stops after ``budget`` candidate costings and the
outcome reports whether the space was exhausted, exactly the contract a
LoopTree-style mapper gives on large graphs.

Because the enumeration covers every chain-DP cut placement, an
*exhausted* run can never be beaten by the principle planner's DP -- and
when the principle planner loses (a greedy join choice or greedy
retention going wrong), :func:`repro.verify.certify_plan` adopts this
mapper's plan and records a structured discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.cost import PartialSumConvention
from ..core.fusion import FusionMedium
from ..core.graph_optimizer import FusionPredicate
from .partition import DagPlan, clean_links, cost_partition, retention_candidates

#: Default cap on candidate costings per :func:`enumerate_plans` call.
DEFAULT_PLAN_BUDGET = 4096

#: Retention subsets are exponential; only the first this-many eligible
#: tensors (sorted by name) are enumerated.  The cap is reported through
#: :attr:`EnumerationStats.retention_truncated` rather than silently
#: shrinking the space.
MAX_RETENTION_CANDIDATES = 6


@dataclass(frozen=True)
class EnumerationStats:
    """How much of the partition space one enumeration visited."""

    plans_evaluated: int
    budget: int
    exhausted: bool
    retention_truncated: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "plans_evaluated": self.plans_evaluated,
            "budget": self.budget,
            "exhausted": self.exhausted,
            "retention_truncated": self.retention_truncated,
        }


@dataclass(frozen=True)
class EnumerativeOutcome:
    """Best plan found (``None`` if nothing feasible was seen) + stats."""

    plan: Optional[DagPlan]
    stats: EnumerationStats


def _compositions(length: int, max_part: int) -> Iterator[Tuple[int, ...]]:
    """All ordered part-size tuples summing to ``length`` (parts <= cap)."""
    if length == 0:
        yield ()
        return
    for first in range(1, min(length, max_part) + 1):
        for rest in _compositions(length - first, max_part):
            yield (first,) + rest


def _paths_from_links(
    graph: OperatorGraph, kept: Dict[str, str]
) -> Tuple[Tuple[TensorOperator, ...], ...]:
    """Vertex-disjoint paths induced by a producer->consumer link choice."""
    has_kept_predecessor = set(kept.values())
    paths: List[Tuple[TensorOperator, ...]] = []
    for operator in graph.topological_order():
        if operator.name in has_kept_predecessor:
            continue
        path = [operator]
        current = operator.name
        while current in kept:
            current = kept[current]
            path.append(graph.operator(current))
        paths.append(tuple(path))
    return tuple(paths)


def _candidate_partitions(
    graph: OperatorGraph, max_group: int, enable_fusion: bool
) -> Iterator[Tuple[Tuple[TensorOperator, ...], ...]]:
    """Every (join choice, cut placement) partition, deterministically."""
    links = clean_links(graph)
    in_links: Dict[str, List[str]] = {}
    for producer, consumer in links.items():
        in_links.setdefault(consumer, []).append(producer)
    choices: List[List[Optional[str]]] = []
    consumers: List[str] = []
    for consumer_name in sorted(in_links):
        producers = sorted(in_links[consumer_name])
        consumers.append(consumer_name)
        if len(producers) == 1:
            # A single clean in-link is always kept: cutting it is one of
            # the DP's cut placements, so "keep none" adds nothing here.
            choices.append([producers[0]])
        else:
            choices.append([None] + producers)
    longest = max_group if enable_fusion else 1
    for combo in product(*choices):
        kept = {
            producer: consumer
            for producer, consumer in zip(combo, consumers)
            if producer is not None
        }
        paths = _paths_from_links(graph, kept)
        per_path = [list(_compositions(len(path), longest)) for path in paths]
        for cut_combo in product(*per_path):
            segments: List[Tuple[TensorOperator, ...]] = []
            for path, parts in zip(paths, cut_combo):
                start = 0
                for part in parts:
                    segments.append(path[start : start + part])
                    start += part
            yield tuple(segments)


def enumerate_plans(
    graph: OperatorGraph,
    buffer_elems: int,
    enable_fusion: bool = True,
    max_group: int = 3,
    budget: int = DEFAULT_PLAN_BUDGET,
    enable_retention: bool = True,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
) -> EnumerativeOutcome:
    """Exhaustively cost partitions until done or out of budget.

    The best plan is chosen by ``(memory_access, signature)`` so the
    result is deterministic regardless of enumeration order; ties
    between equal-cost plans go to the canonically smaller partition.
    """

    buffer_elems = validate_buffer_elems(buffer_elems)
    if budget < 1:
        raise ValueError(f"enumeration budget must be >= 1, got {budget}")
    best: Optional[DagPlan] = None
    evaluated = 0
    truncated = False
    exhausted = True
    for segments_ops in _candidate_partitions(graph, max_group, enable_fusion):
        if enable_retention:
            candidates = retention_candidates(graph, segments_ops)
            if len(candidates) > MAX_RETENTION_CANDIDATES:
                candidates = candidates[:MAX_RETENTION_CANDIDATES]
                truncated = True
        else:
            candidates = ()
        subsets: List[Tuple[str, ...]] = [()]
        for size in range(1, len(candidates) + 1):
            subsets.extend(combinations(candidates, size))
        for retained in subsets:
            if evaluated >= budget:
                exhausted = False
                break
            evaluated += 1
            plan = cost_partition(
                graph, segments_ops, retained, buffer_elems,
                convention=convention, fusion_predicate=fusion_predicate,
                medium=medium, register_elems=register_elems,
                method="enumerative",
            )
            if plan is None:
                continue
            if best is None or (plan.memory_access, plan.signature()) < (
                best.memory_access, best.signature()
            ):
                best = plan
        if not exhausted:
            break
    stats = EnumerationStats(
        plans_evaluated=evaluated,
        budget=budget,
        exhausted=exhausted,
        retention_truncated=truncated,
    )
    return EnumerativeOutcome(plan=best, stats=stats)
