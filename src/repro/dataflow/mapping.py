"""Spatial mapping: assigning tiles to the PE array (paper Sec. IV-A).

Mapping decides which dimensions run *across PEs* (spatial) and which run
*across time* (temporal).  The paper names the tile whose dimensions all map
spatially the **stationary tile** and the tile with one temporal dimension
the **moving tile** (Fig. 5).  The stationary tile must match the physical
array shape or PEs idle; the moving tile is unconstrained.

For fused chains the paper identifies two intermediate-tile shapes and one
mapping for each:

* **tile-like** intermediate (both dims sizable, Fig. 4(a)/(c)/(e)) ->
  **tile fusion**: the intermediate is the stationary tile; the array first
  runs the producer output-stationary, then the consumer input-stationary
  without the intermediate ever leaving the PE registers (Fig. 5(a)).
* **column-like** intermediate (one dim maximized, one minimized,
  Fig. 4(b)/(d)) -> **column fusion**: the array splits into a producer half
  (input-stationary) and a consumer half (output-stationary) with the
  intermediate streaming between them as the moving tile (Fig. 5(b)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class MappingError(ValueError):
    """Raised for mappings inconsistent with the array or tiles."""


@dataclass(frozen=True)
class ArrayShape:
    """A (possibly reconfigured) rectangular PE array."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise MappingError(f"array shape {self.rows}x{self.cols} invalid")

    @property
    def pes(self) -> int:
        return self.rows * self.cols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.rows}x{self.cols}"


class FusedMappingKind(Enum):
    """The two fused-dataflow mappings of paper Fig. 5."""

    TILE_FUSION = "tile_fusion"
    COLUMN_FUSION = "column_fusion"


@dataclass(frozen=True)
class SpatialMapping:
    """A stationary tile placed on an array.

    ``tile_rows``/``tile_cols`` are the stationary-tile dimensions mapped
    across the array's rows/columns; the remaining operator dimension maps
    across time.
    """

    tile_rows: int
    tile_cols: int
    array: ArrayShape

    def __post_init__(self) -> None:
        if self.tile_rows <= 0 or self.tile_cols <= 0:
            raise MappingError("stationary tile dims must be positive")

    @property
    def passes(self) -> int:
        """Array passes needed to cover the stationary tile."""
        return math.ceil(self.tile_rows / self.array.rows) * math.ceil(
            self.tile_cols / self.array.cols
        )

    @property
    def utilization(self) -> float:
        """Fraction of PE-passes doing useful work (<= 1)."""
        return (self.tile_rows * self.tile_cols) / (self.passes * self.array.pes)


def classify_intermediate_tile(
    tile_shape: Tuple[int, int], column_threshold: int = 1
) -> FusedMappingKind:
    """Classify an intermediate tile as tile-like or column-like.

    A tile with any dimension at or below ``column_threshold`` is
    column-like (one dim was minimized per Principle 2); otherwise it is
    tile-like (both dims maximized / untiled per Principles 1 and 3).
    """

    rows, cols = tile_shape
    if rows <= 0 or cols <= 0:
        raise MappingError(f"intermediate tile shape {tile_shape} invalid")
    if min(rows, cols) <= column_threshold:
        return FusedMappingKind.COLUMN_FUSION
    return FusedMappingKind.TILE_FUSION


def best_array_utilization(
    tile_rows: int,
    tile_cols: int,
    shapes: Tuple[ArrayShape, ...],
) -> Tuple[ArrayShape, float]:
    """Pick the array shape maximizing utilization for a stationary tile.

    Architectures expose the shapes they can reconfigure into (square only
    for a fixed systolic array; square/narrow/wide for FuseCU's recombined
    CUs; many sub-shapes for Planaria's fissioned pods).
    """

    if not shapes:
        raise MappingError("no array shapes available")
    best_shape = shapes[0]
    best_util = SpatialMapping(tile_rows, tile_cols, best_shape).utilization
    for shape in shapes[1:]:
        util = SpatialMapping(tile_rows, tile_cols, shape).utilization
        if util > best_util:
            best_shape, best_util = shape, util
    return best_shape, best_util
