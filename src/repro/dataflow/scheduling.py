"""Schedules: tiled loop orders and the stationary tensor (paper Fig. 2(b)).

A :class:`Schedule` is an ordered tuple of loop dimensions, outermost first.
The *stationary tensor* of a schedule is the tensor that stays in the buffer
across consecutive innermost iterations: the tensor not indexed by the
innermost *effective* (trip > 1) loop.  In the paper's terms:

* loop order ``(M, L, K)`` with K innermost keeps ``C[M,L]`` stationary
  (output-stationary, OS);
* order ``(K, L, M)`` keeps ``B[K,L]`` stationary;
* order ``(K, M, L)`` keeps ``A[M,K]`` stationary (input-stationary, IS,
  also called weight-stationary WS when A holds weights).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..ir.operator import TensorOperator
from ..ir.tensor import Tensor
from .tiling import Tiling


class ScheduleError(ValueError):
    """Raised for schedules inconsistent with their operator."""


@dataclass(frozen=True)
class Schedule:
    """Loop order over an operator's dimensions, outermost first."""

    order: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))
        if len(set(self.order)) != len(self.order):
            raise ScheduleError(f"loop order repeats a dim: {self.order}")

    def validate(self, operator: TensorOperator) -> None:
        if set(self.order) != set(operator.dims):
            raise ScheduleError(
                f"schedule {self.order} does not cover operator dims "
                f"{tuple(operator.dims)}"
            )

    @property
    def innermost(self) -> str:
        return self.order[-1]

    @property
    def outermost(self) -> str:
        return self.order[0]

    def effective_order(
        self, operator: TensorOperator, tiling: Tiling
    ) -> Tuple[str, ...]:
        """Loop order with untiled (trip == 1) dims removed."""
        self.validate(operator)
        resolved = tiling.for_operator(operator)
        return tuple(
            dim for dim in self.order if resolved[dim] < operator.dims[dim]
        )

    def stationary_tensor(
        self, operator: TensorOperator, tiling: Tiling
    ) -> Optional[Tensor]:
        """The tensor held across innermost iterations, if unique.

        Returns the tensor not indexed by the innermost effective loop.  If
        every dimension is untiled (everything fits), or more than one tensor
        qualifies, returns the smallest qualifying tensor; returns ``None``
        when no effective loops remain (degenerate fully-buffered case).
        """

        effective = self.effective_order(operator, tiling)
        if not effective:
            return None
        inner = effective[-1]
        candidates = [
            tensor
            for tensor in operator.tensors
            if inner not in operator.dims_of(tensor.name)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda tensor: tensor.size)


def all_schedules(operator: TensorOperator) -> Iterator[Schedule]:
    """All loop-order permutations for an operator (n! schedules)."""
    for order in itertools.permutations(operator.dim_names):
        yield Schedule(order)


# ----------------------------------------------------------------------
# Named matmul schedules (paper Fig. 2(b))
# ----------------------------------------------------------------------
def output_stationary(operator: TensorOperator) -> Schedule:
    """Schedule keeping the output stationary: reduction dims innermost."""
    non_reduction = [d for d in operator.dim_names if d not in operator.reduction_dims]
    reduction = [d for d in operator.dim_names if d in operator.reduction_dims]
    if not reduction:
        raise ScheduleError(
            f"operator {operator.name!r} has no reduction dim; output is always "
            "non-redundant"
        )
    return Schedule(tuple(non_reduction + reduction))


def input_stationary(operator: TensorOperator, input_name: str) -> Schedule:
    """Schedule keeping the named input stationary: its dims outermost.

    The innermost loop walks a dim absent from the stationary input, so the
    stationary tile is reused across it.
    """

    stationary_dims = set(operator.dims_of(input_name))
    outer = [d for d in operator.dim_names if d in stationary_dims]
    inner = [d for d in operator.dim_names if d not in stationary_dims]
    if not inner:
        raise ScheduleError(
            f"input {input_name!r} is indexed by every dim; cannot be stationary"
        )
    return Schedule(tuple(outer + inner))


def stationary_schedule(operator: TensorOperator, tensor_name: str) -> Schedule:
    """Schedule making the named tensor (input or output) stationary."""
    if tensor_name == operator.output.name:
        return output_stationary(operator)
    return input_stationary(operator, tensor_name)
