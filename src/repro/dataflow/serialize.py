"""JSON-friendly serialization of dataflow artifacts.

Optimization results need to leave the library -- into compiler toolchains,
RTL testbenches, or experiment logs.  This module converts the core
artifacts (tilings, schedules, dataflows, fused dataflows, access reports)
to plain dictionaries and back, with round-trip fidelity guaranteed by the
test suite.

Only data is serialized; operators are referenced by name and must be
reconstructed by the consumer (they are workload definitions, not results).
"""

from __future__ import annotations

from typing import Any, Dict

from .cost import MemoryAccessReport
from .fusion_nest import FusedDataflow
from .scheduling import Schedule
from .spec import Dataflow
from .tiling import Tiling


class SerializationError(ValueError):
    """Raised for malformed serialized payloads."""


def _require(payload: Dict[str, Any], key: str, kind: str) -> Any:
    if key not in payload:
        raise SerializationError(f"{kind} payload missing {key!r}")
    return payload[key]


# ----------------------------------------------------------------------
# Tiling / Schedule / Dataflow
# ----------------------------------------------------------------------
def tiling_to_dict(tiling: Tiling) -> Dict[str, Any]:
    return {"kind": "tiling", "tiles": dict(tiling.tiles)}


def tiling_from_dict(payload: Dict[str, Any]) -> Tiling:
    tiles = _require(payload, "tiles", "tiling")
    if not isinstance(tiles, dict):
        raise SerializationError("tiling tiles must be a mapping")
    return Tiling({str(dim): int(tile) for dim, tile in tiles.items()})


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    return {"kind": "schedule", "order": list(schedule.order)}


def schedule_from_dict(payload: Dict[str, Any]) -> Schedule:
    order = _require(payload, "order", "schedule")
    return Schedule(tuple(str(dim) for dim in order))


def dataflow_to_dict(dataflow: Dataflow) -> Dict[str, Any]:
    return {
        "kind": "dataflow",
        "tiling": tiling_to_dict(dataflow.tiling),
        "schedule": schedule_to_dict(dataflow.schedule),
    }


def dataflow_from_dict(payload: Dict[str, Any]) -> Dataflow:
    return Dataflow(
        tiling=tiling_from_dict(_require(payload, "tiling", "dataflow")),
        schedule=schedule_from_dict(_require(payload, "schedule", "dataflow")),
    )


# ----------------------------------------------------------------------
# Fused dataflow
# ----------------------------------------------------------------------
def fused_dataflow_to_dict(dataflow: FusedDataflow) -> Dict[str, Any]:
    return {
        "kind": "fused_dataflow",
        "shared_order": list(dataflow.shared_order),
        "private_orders": {
            name: list(order) for name, order in dataflow.private_orders.items()
        },
        "tiling": tiling_to_dict(dataflow.tiling),
    }


def fused_dataflow_from_dict(payload: Dict[str, Any]) -> FusedDataflow:
    private = _require(payload, "private_orders", "fused_dataflow")
    if not isinstance(private, dict):
        raise SerializationError("private_orders must be a mapping")
    return FusedDataflow(
        shared_order=tuple(
            str(d) for d in _require(payload, "shared_order", "fused_dataflow")
        ),
        private_orders={
            str(name): tuple(str(d) for d in order)
            for name, order in private.items()
        },
        tiling=tiling_from_dict(_require(payload, "tiling", "fused_dataflow")),
    )


# ----------------------------------------------------------------------
# Reports (one-way: results are exported, not re-imported)
# ----------------------------------------------------------------------
def report_to_dict(report: MemoryAccessReport) -> Dict[str, Any]:
    return {
        "kind": "memory_access_report",
        "operator": report.operator_name,
        "count": report.count,
        "total": report.total,
        "per_tensor": {
            name: {
                "size": entry.size,
                "multiplier": entry.multiplier,
                "accesses": entry.accesses,
            }
            for name, entry in report.per_tensor.items()
        },
    }
