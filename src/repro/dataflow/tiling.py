"""Tiling specifications (paper Sec. II-A, Fig. 2(a)).

A :class:`Tiling` assigns every loop dimension of an operator a tile size.
Tile sizes determine both the buffer footprint (Eq. 2 / Eq. 4 of the paper)
and, together with the schedule, the memory-access count.  The special value
:data:`UNTILED` requests a tile equal to the dimension extent, which is how
Two- and Three-NRA dataflows are expressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..ir.operator import TensorOperator

#: Sentinel tile size meaning "the full dimension extent".
UNTILED = -1


class TilingError(ValueError):
    """Raised for tilings inconsistent with their operator."""


@dataclass(frozen=True)
class Tiling:
    """Tile sizes per loop dimension.

    Use :meth:`for_operator` to validate/resolve against an operator, which
    replaces :data:`UNTILED` sentinels and clamps nothing -- out-of-range
    tiles are an error, not silently fixed.
    """

    tiles: Mapping[str, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiles", dict(self.tiles))

    def __getitem__(self, dim: str) -> int:
        return self.tiles[dim]

    def __contains__(self, dim: str) -> bool:
        return dim in self.tiles

    def items(self):
        return self.tiles.items()

    def resolve(self, dims: Mapping[str, int]) -> "Tiling":
        """Return a tiling with sentinels replaced and bounds validated."""
        resolved: Dict[str, int] = {}
        for dim, extent in dims.items():
            if dim not in self.tiles:
                raise TilingError(f"missing tile for dim {dim!r}")
            tile = self.tiles[dim]
            if tile == UNTILED:
                tile = extent
            if not isinstance(tile, int) or not 1 <= tile <= extent:
                raise TilingError(
                    f"tile {tile!r} for dim {dim!r} out of range [1, {extent}]"
                )
            resolved[dim] = tile
        extra = set(self.tiles) - set(dims)
        if extra:
            raise TilingError(f"tiles given for unknown dims {sorted(extra)}")
        return Tiling(resolved)

    def for_operator(self, operator: TensorOperator) -> "Tiling":
        """Resolve against an operator's loop dimensions."""
        return self.resolve(operator.dims)

    def untiled_dims(self, dims: Mapping[str, int]) -> Tuple[str, ...]:
        """Dims whose tile covers the whole extent."""
        resolved = self.resolve(dims)
        return tuple(dim for dim, extent in dims.items() if resolved[dim] == extent)

    def tile_footprint(self, operator: TensorOperator, tensor_name: str) -> int:
        """Elements of ``tensor_name``'s tile under this tiling."""
        resolved = self.for_operator(operator)
        return math.prod(resolved[dim] for dim in operator.dims_of(tensor_name))

    def buffer_footprint(self, operator: TensorOperator) -> int:
        """Total buffered elements: sum of all operand tile footprints.

        This is the left-hand side of the paper's buffer constraints
        (Eq. 2 for Single-NRA, Eq. 4 for Two-NRA) generalized to any
        operator: ``sum_t prod_{d in dims(t)} T_d``.
        """

        return sum(
            self.tile_footprint(operator, tensor.name) for tensor in operator.tensors
        )


def full_tiling(operator: TensorOperator) -> Tiling:
    """Tiling with every dimension untiled (whole tensors buffered)."""
    return Tiling({dim: extent for dim, extent in operator.dims.items()})


def unit_tiling(operator: TensorOperator) -> Tiling:
    """Tiling with every tile size 1 (no reuse beyond a point)."""
    return Tiling({dim: 1 for dim in operator.dims})
