"""Fused multi-operator loop nests (paper Sec. III-B, Fig. 4).

Operator fusion executes a chain of operators under *shared* outer loops so
the intermediate tensors never travel to memory.  This module provides:

* :class:`FusedChain` -- a linear producer/consumer chain with its loop
  dimensions unified into a global namespace (the consumer's dims that index
  an intermediate tensor are identified with the producer's dims for the
  same tensor, e.g. MM2's reduction dim *is* MM1's ``L``).
* :class:`FusedDataflow` -- shared outer loop order + per-operator private
  inner loops + a global tiling.
* :func:`fused_memory_access` -- the same reuse-rule access counter as
  :func:`repro.dataflow.cost.memory_access`, applied per operator over
  (shared loops restricted to its dims) + (its private loops), with
  intermediate-tensor traffic elided.

Fusability (paper Sec. III-B1): a fused dataflow is only valid when every
intermediate tensor is accessed *non-redundantly* (multiplier 1) in both its
producer's and consumer's nest -- redundant access would require the
intermediate to round-trip through memory, which fusion forbids.  The three
mechanisms the paper lists (make it stationary / untile one of its dims /
keep it entirely in buffer) are exactly the three ways a tensor's multiplier
becomes 1 under the reuse rule, so the check below covers all of Fig. 4.

Shared loops are restricted to dimensions common to **every** operator in
the chain.  For a pair of matrix multiplications those are precisely the
intermediate tensor's dimensions (M and L for ``A x B = C``, ``C x D = E``),
which spans all the paper's fusion patterns; the restriction also rules out
recomputation (an operator re-executing under a loop over a dimension it
does not have), keeping MAC counts identical to the unfused graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..ir.loopnest import LoopNest, TiledLoop
from ..ir.operator import TensorOperator
from ..ir.tensor import Tensor
from .cost import PartialSumConvention, TensorAccess, tensor_multiplier
from .spec import NRAClass
from .tiling import Tiling


class FusionError(ValueError):
    """Raised for malformed fused chains or fused dataflows."""


@dataclass(frozen=True)
class FusedChain:
    """A linear chain of operators with unified loop dimensions.

    Build with :meth:`from_ops`.  ``dim_maps[i]`` maps operator ``i``'s local
    dim names to global names; ``global_dims`` maps global names to extents.
    """

    ops: Tuple[TensorOperator, ...]
    dim_maps: Tuple[Mapping[str, str], ...]
    global_dims: Mapping[str, int]

    # ------------------------------------------------------------------
    @classmethod
    def from_ops(cls, ops: Sequence[TensorOperator]) -> "FusedChain":
        ops = tuple(ops)
        if not ops:
            raise FusionError("fused chain needs at least one operator")
        counts = {op.count for op in ops}
        if len(counts) != 1:
            raise FusionError(
                "fused operators must share the same repetition count; got "
                f"{sorted(counts)}"
            )
        names = [op.name for op in ops]
        if len(set(names)) != len(names):
            raise FusionError(f"duplicate operator names in chain: {names}")
        for producer, consumer in zip(ops, ops[1:]):
            consumed = {tensor.name for tensor in consumer.inputs}
            if producer.output.name not in consumed:
                raise FusionError(
                    f"{consumer.name!r} does not consume {producer.name!r}'s "
                    f"output {producer.output.name!r}; not a chain"
                )

        tensor_axes: Dict[str, Tuple[str, ...]] = {}
        global_dims: Dict[str, int] = {}
        dim_maps: List[Dict[str, str]] = []
        for index, op in enumerate(ops):
            mapping: Dict[str, str] = {}
            for tensor in op.tensors:
                if tensor.name not in tensor_axes:
                    continue
                for local, global_name in zip(
                    op.dims_of(tensor.name), tensor_axes[tensor.name]
                ):
                    bound = mapping.get(local)
                    if bound is not None and bound != global_name:
                        raise FusionError(
                            f"operator {op.name!r}: dim {local!r} binds to both "
                            f"{bound!r} and {global_name!r}"
                        )
                    mapping[local] = global_name
            for local, extent in op.dims.items():
                if local not in mapping:
                    candidate = local
                    if candidate in global_dims:
                        candidate = f"{local}{index}"
                    while candidate in global_dims:
                        candidate += "_"
                    mapping[local] = candidate
                global_name = mapping[local]
                existing = global_dims.get(global_name)
                if existing is not None and existing != extent:
                    raise FusionError(
                        f"dim {global_name!r} has conflicting extents "
                        f"{existing} and {extent}"
                    )
                global_dims[global_name] = extent
            for tensor in op.tensors:
                axes = tuple(mapping[local] for local in op.dims_of(tensor.name))
                known = tensor_axes.get(tensor.name)
                if known is not None and known != axes:
                    raise FusionError(
                        f"tensor {tensor.name!r} bound to axes {known} and {axes}"
                    )
                tensor_axes[tensor.name] = axes
            dim_maps.append(mapping)
        return cls(ops=ops, dim_maps=tuple(dim_maps), global_dims=global_dims)

    def __post_init__(self) -> None:
        object.__setattr__(self, "global_dims", dict(self.global_dims))
        object.__setattr__(
            self, "dim_maps", tuple(dict(mapping) for mapping in self.dim_maps)
        )

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.ops[0].count

    @property
    def common_dims(self) -> Tuple[str, ...]:
        """Global dims present in every operator (legal shared-loop dims)."""
        common: Optional[Set[str]] = None
        for mapping in self.dim_maps:
            dims = set(mapping.values())
            common = dims if common is None else common & dims
        assert common is not None
        return tuple(dim for dim in self.global_dims if dim in common)

    def op_global_dims(self, index: int) -> Tuple[str, ...]:
        """Global dims of operator ``index`` in its canonical local order."""
        op = self.ops[index]
        mapping = self.dim_maps[index]
        return tuple(mapping[local] for local in op.dim_names)

    def global_dims_of_tensor(self, index: int, tensor_name: str) -> Tuple[str, ...]:
        op = self.ops[index]
        mapping = self.dim_maps[index]
        return tuple(mapping[local] for local in op.dims_of(tensor_name))

    def intermediates(self) -> Tuple[Tensor, ...]:
        """Tensors produced and consumed inside the chain."""
        consumed = {
            tensor.name for op in self.ops for tensor in op.inputs
        }
        return tuple(
            op.output for op in self.ops[:-1] if op.output.name in consumed
        )

    def external_tensors(self) -> Tuple[Tensor, ...]:
        intermediates = {tensor.name for tensor in self.intermediates()}
        seen: Dict[str, Tensor] = {}
        for op in self.ops:
            for tensor in op.tensors:
                if tensor.name not in intermediates:
                    seen.setdefault(tensor.name, tensor)
        return tuple(seen.values())

    @property
    def macs(self) -> int:
        return sum(op.macs for op in self.ops)

    def ideal_memory_access(self) -> int:
        """Fused infinite-buffer ideal: external tensors once each."""
        return self.count * sum(tensor.size for tensor in self.external_tensors())


@dataclass(frozen=True)
class FusedDataflow:
    """Shared outer loops + per-operator private loops + global tiling.

    ``shared_order`` lists global dims (outermost first) iterated jointly by
    all operators; ``private_orders`` maps each operator name to the order of
    its remaining global dims (iterated in its own inner nest); ``tiling``
    assigns every global dim a tile size (:data:`repro.dataflow.tiling.UNTILED`
    allowed).
    """

    shared_order: Tuple[str, ...]
    private_orders: Mapping[str, Tuple[str, ...]]
    tiling: Tiling

    def __post_init__(self) -> None:
        object.__setattr__(self, "shared_order", tuple(self.shared_order))
        object.__setattr__(
            self,
            "private_orders",
            {name: tuple(order) for name, order in self.private_orders.items()},
        )

    # ------------------------------------------------------------------
    def validate(self, chain: FusedChain) -> None:
        common = set(chain.common_dims)
        illegal = [dim for dim in self.shared_order if dim not in common]
        if illegal:
            raise FusionError(
                f"shared loops {illegal} are not common to every operator "
                f"(common dims: {sorted(common)})"
            )
        if len(set(self.shared_order)) != len(self.shared_order):
            raise FusionError(f"shared order repeats a dim: {self.shared_order}")
        # Every intermediate tensor's dims must be shared loops: the
        # intermediate's buffered unit is then exactly its tile, so the
        # tile-product footprint is its true liveness and the non-redundancy
        # (fusability) check is meaningful.  All Fig. 4 patterns satisfy
        # this; a nest that materializes an intermediate across a private
        # loop would need the full extent of that dim buffered, which this
        # model deliberately excludes.
        shared = set(self.shared_order)
        for index, op in enumerate(chain.ops[:-1]):
            consumed = {
                tensor.name for later in chain.ops[index + 1 :] for tensor in later.inputs
            }
            if op.output.name not in consumed:
                continue
            axes = chain.global_dims_of_tensor(index, op.output.name)
            unshared = [dim for dim in axes if dim not in shared]
            if unshared:
                raise FusionError(
                    f"intermediate {op.output.name!r} has non-shared dims "
                    f"{unshared}; all intermediate dims must be shared loops"
                )
        shared = set(self.shared_order)
        for index, op in enumerate(chain.ops):
            private = self.private_orders.get(op.name)
            if private is None:
                raise FusionError(f"missing private order for {op.name!r}")
            expected = set(chain.op_global_dims(index)) - shared
            if set(private) != expected or len(set(private)) != len(private):
                raise FusionError(
                    f"private order {private} for {op.name!r} must cover "
                    f"{sorted(expected)} exactly once"
                )
        self.resolved_tiling(chain)

    def resolved_tiling(self, chain: FusedChain) -> Tiling:
        return self.tiling.resolve(chain.global_dims)

    def op_nest(self, chain: FusedChain, index: int) -> LoopNest:
        """The loop nest operator ``index`` experiences, outermost first."""
        op = chain.ops[index]
        op_dims = set(chain.op_global_dims(index))
        tiling = self.resolved_tiling(chain)
        loops = []
        for dim in self.shared_order:
            if dim in op_dims:
                loops.append(
                    TiledLoop(dim=dim, extent=chain.global_dims[dim], tile=tiling[dim])
                )
        for dim in self.private_orders[op.name]:
            loops.append(
                TiledLoop(dim=dim, extent=chain.global_dims[dim], tile=tiling[dim])
            )
        return LoopNest(tuple(loops))

    def buffer_footprint(
        self, chain: FusedChain, exclude: Tuple[str, ...] = ()
    ) -> int:
        """Total buffered elements: every distinct tensor's tile, once.

        ``exclude`` names tensors held elsewhere (compute-unit fusion keeps
        the intermediate tile in the PE accumulators, paper Table I's
        "fusion medium: compute unit"); their tiles do not consume buffer.
        """

        tiling = self.resolved_tiling(chain)
        seen: Set[str] = set(exclude)
        total = 0
        for index, op in enumerate(chain.ops):
            for tensor in op.tensors:
                if tensor.name in seen:
                    continue
                seen.add(tensor.name)
                axes = chain.global_dims_of_tensor(index, tensor.name)
                total += math.prod(tiling[dim] for dim in axes)
        return total

    def tile_elements(self, chain: FusedChain, tensor_name: str) -> int:
        """Elements of one tensor's tile under this dataflow's tiling."""
        tiling = self.resolved_tiling(chain)
        for index, op in enumerate(chain.ops):
            for tensor in op.tensors:
                if tensor.name == tensor_name:
                    axes = chain.global_dims_of_tensor(index, tensor.name)
                    return math.prod(tiling[dim] for dim in axes)
        raise FusionError(f"chain has no tensor {tensor_name!r}")

    def describe(self, chain: FusedChain) -> str:
        tiling = self.resolved_tiling(chain)
        tiles = ", ".join(f"T_{dim}={tile}" for dim, tile in tiling.items())
        privates = "; ".join(
            f"{name}:({', '.join(order)})" for name, order in self.private_orders.items()
        )
        return f"shared=({', '.join(self.shared_order)}); {privates}; {tiles}"


def _op_with_global_dims(chain: FusedChain, index: int) -> TensorOperator:
    """Rebuild operator ``index`` with global dim names (for the counter)."""
    op = chain.ops[index]
    mapping = chain.dim_maps[index]
    dims = {mapping[local]: extent for local, extent in op.dims.items()}
    indexing = {
        tensor.name: tuple(mapping[local] for local in op.dims_of(tensor.name))
        for tensor in op.tensors
    }
    return TensorOperator(
        name=op.name,
        dims=dims,
        inputs=op.inputs,
        output=op.output,
        indexing=indexing,
        reduction_dims=frozenset(mapping[d] for d in op.reduction_dims),
        count=op.count,
        flops_per_point=op.flops_per_point,
    )


@dataclass(frozen=True)
class FusedAccessReport:
    """Memory-access breakdown for a fused chain."""

    chain_name: str
    per_tensor: Mapping[str, TensorAccess]
    intermediate_multipliers: Mapping[str, int]
    count: int

    @property
    def fusable(self) -> bool:
        """True when every intermediate is non-redundant (paper Sec. III-B1)."""
        return all(m == 1 for m in self.intermediate_multipliers.values())

    @property
    def per_instance_total(self) -> int:
        return sum(entry.accesses for entry in self.per_tensor.values())

    @property
    def total(self) -> int:
        return self.per_instance_total * self.count


def fused_memory_access(
    chain: FusedChain,
    dataflow: FusedDataflow,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> FusedAccessReport:
    """Count memory accesses for a fused chain under a fused dataflow.

    Intermediate tensors contribute zero traffic; their worst-case redundancy
    multiplier across producer and consumer nests is recorded so that
    :attr:`FusedAccessReport.fusable` can enforce the paper's
    non-redundant-access requirement.
    """

    dataflow.validate(chain)
    intermediates = {tensor.name for tensor in chain.intermediates()}
    per_tensor: Dict[str, TensorAccess] = {}
    inter_mult: Dict[str, int] = {name: 1 for name in intermediates}
    for index in range(len(chain.ops)):
        op = _op_with_global_dims(chain, index)
        nest = dataflow.op_nest(chain, index)
        for tensor in op.tensors:
            multiplier = tensor_multiplier(op, nest, tensor.name)
            if tensor.name in intermediates:
                inter_mult[tensor.name] = max(inter_mult[tensor.name], multiplier)
                continue
            if (
                tensor.name == op.output.name
                and convention is PartialSumConvention.READ_WRITE
            ):
                accesses = tensor.size * (2 * multiplier - 1)
            else:
                accesses = tensor.size * multiplier
            previous = per_tensor.get(tensor.name)
            if previous is not None:
                # A tensor consumed by several chain ops (rare) is charged
                # its worst multiplier once -- it is buffered across the
                # shared nest just like an intermediate.
                if accesses <= previous.accesses:
                    continue
            per_tensor[tensor.name] = TensorAccess(
                tensor_name=tensor.name,
                size=tensor.size,
                multiplier=multiplier,
                accesses=accesses,
            )
    for name in intermediates:
        per_tensor[name] = TensorAccess(
            tensor_name=name,
            size=next(
                t.size for t in chain.intermediates() if t.name == name
            ),
            multiplier=inter_mult[name],
            accesses=0,
        )
    return FusedAccessReport(
        chain_name="+".join(op.name for op in chain.ops),
        per_tensor=per_tensor,
        intermediate_multipliers=inter_mult,
        count=chain.count,
    )
