"""Analytical memory-access model for tiled loop nests.

This module is the single source of truth for memory<->buffer traffic in the
library.  The principle engine (:mod:`repro.core`), the searching-based
baseline (:mod:`repro.search`) and the architecture models (:mod:`repro.arch`)
all evaluate candidate dataflows through the same counter, so comparisons
between them are apples-to-apples (as in the paper, where both the
principles and DAT target the same MAESTRO-style cost).

Reuse rule
----------
For a perfect tiled loop nest (outermost first) with *effective* loops
(trip count > 1; untiled loops are degenerate and ignored), a tensor ``t``
is re-fetched once per iteration of every effective loop that

* sits **outside** the innermost effective loop indexing ``t``, and
* does **not** index ``t``.

Loops indexing ``t`` merely enumerate its tiles (covering it exactly once
per sweep); loops **inside** the innermost ``t``-indexing loop reuse the
buffered tile (``t`` is stationary across them).  Hence::

    MA(t) = |t| * prod{ trip(l) : l outside innermost t-loop, dim(l) not in dims(t) }

This is the standard "stationarity" model (MAESTRO [2], Timeloop [6]) and
reproduces every formula in the paper:

* OS Single-NRA (order M,L,K):  ``MA = MKL (1/T_L + 1/T_M) + ML``  (Eq. 1)
* Two-NRA with K untiled:       ``MA = MKL / T_M + MK + ML``        (Eq. 3)
* Three-NRA with K, L untiled:  ``MA = MK + KL + ML``               (ideal)

Partial-sum convention
----------------------
When a reduction loop sits outside the innermost output-indexing loop, the
output's partial sums are spilled and re-loaded each pass.  The paper counts
one access per element per pass (its Eq. 1 charges ``C`` exactly ``ML``);
:data:`PartialSumConvention.SINGLE` reproduces that.
:data:`PartialSumConvention.READ_WRITE` charges ``2 * passes - 1`` accesses
per element (every spilled pass is a read-modify-write except the first
write), which is the convention some simulators use; it is exposed for the
ablation study in ``benchmarks/test_ablation_conventions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Tuple

from ..ir.loopnest import LoopNest
from ..ir.operator import TensorOperator
from .spec import Dataflow, NRAClass


class PartialSumConvention(Enum):
    """How spilled output partial sums are charged."""

    #: One access per element per pass (the paper's convention).
    SINGLE = "single"
    #: Read+write per spilled pass: ``2 * passes - 1`` accesses per element.
    READ_WRITE = "read_write"


@dataclass(frozen=True)
class TensorAccess:
    """Per-tensor access statistics for one operator instance."""

    tensor_name: str
    size: int
    multiplier: int
    accesses: int

    @property
    def non_redundant(self) -> bool:
        """True when the tensor is touched exactly once (multiplier 1)."""
        return self.multiplier == 1


@dataclass(frozen=True)
class MemoryAccessReport:
    """Memory-access breakdown for an operator under a dataflow.

    ``accesses`` already includes the operator's ``count`` multiplier; the
    per-tensor entries are per *instance* so they can be compared against the
    paper's closed-form expressions directly.
    """

    operator_name: str
    per_tensor: Mapping[str, TensorAccess]
    count: int

    @property
    def per_instance_total(self) -> int:
        return sum(entry.accesses for entry in self.per_tensor.values())

    @property
    def total(self) -> int:
        return self.per_instance_total * self.count

    @property
    def nra_class(self) -> NRAClass:
        """Non-redundant-access class implied by the access pattern."""
        non_redundant = sum(
            1 for entry in self.per_tensor.values() if entry.non_redundant
        )
        non_redundant = max(1, min(3, non_redundant))
        return NRAClass(non_redundant)

    def redundancy(self, ideal: int) -> float:
        """Ratio of total accesses to the infinite-buffer ideal."""
        if ideal <= 0:
            raise ValueError("ideal access count must be positive")
        return self.total / ideal


def _effective_loops(nest: LoopNest):
    return [loop for loop in nest if loop.trip > 1]


def tensor_multiplier(
    operator: TensorOperator,
    nest: LoopNest,
    tensor_name: str,
) -> int:
    """Redundancy multiplier of ``tensor_name`` under the tiled nest.

    A multiplier of 1 means non-redundant access (the tensor travels from
    memory exactly once).
    """

    tensor_dims = set(operator.dims_of(tensor_name))
    effective = _effective_loops(nest)
    innermost_indexing = -1
    for position, loop in enumerate(effective):
        if loop.dim in tensor_dims:
            innermost_indexing = position
    multiplier = 1
    for position, loop in enumerate(effective):
        if position >= innermost_indexing:
            break
        if loop.dim not in tensor_dims:
            multiplier *= loop.trip
    return multiplier


def _output_passes(operator: TensorOperator, nest: LoopNest) -> int:
    """Number of partial-sum passes over the output (1 = no spilling)."""
    return tensor_multiplier(operator, nest, operator.output.name)


def memory_access(
    operator: TensorOperator,
    dataflow: Dataflow,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    skip_tensors: Tuple[str, ...] = (),
) -> MemoryAccessReport:
    """Count memory<->buffer accesses for ``operator`` under ``dataflow``.

    ``skip_tensors`` names operands whose traffic is elided (used by the
    fusion model for on-chip intermediate tensors); they still appear in the
    report with zero accesses so non-redundancy can be asserted.
    """

    nest = dataflow.loop_nest(operator)
    per_tensor: Dict[str, TensorAccess] = {}
    for tensor in operator.tensors:
        multiplier = tensor_multiplier(operator, nest, tensor.name)
        if tensor.name in skip_tensors:
            accesses = 0
        elif (
            tensor.name == operator.output.name
            and convention is PartialSumConvention.READ_WRITE
        ):
            accesses = tensor.size * (2 * multiplier - 1)
        else:
            accesses = tensor.size * multiplier
        per_tensor[tensor.name] = TensorAccess(
            tensor_name=tensor.name,
            size=tensor.size,
            multiplier=multiplier,
            accesses=accesses,
        )
    return MemoryAccessReport(
        operator_name=operator.name,
        per_tensor=per_tensor,
        count=operator.count,
    )


def nra_class(operator: TensorOperator, dataflow: Dataflow) -> NRAClass:
    """NRA class of a dataflow: how many operands are accessed once."""
    return memory_access(operator, dataflow).nra_class


def fits_buffer(
    operator: TensorOperator, dataflow: Dataflow, buffer_elems: int
) -> bool:
    """True when the dataflow's working set fits the buffer (Eq. 2 / Eq. 4)."""
    return dataflow.buffer_footprint(operator) <= buffer_elems
