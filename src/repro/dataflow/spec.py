"""Complete intra-operator dataflow specifications.

A :class:`Dataflow` bundles a tiling with a schedule -- the two decisions
that determine memory<->buffer communication (paper Sec. II-A).  The third
dataflow component, spatial *mapping*, lives in
:mod:`repro.dataflow.mapping`; it determines buffer<->PE communication and
utilization and is layered on top of a :class:`Dataflow` by the
architecture models.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..ir.loopnest import LoopNest, TiledLoop
from ..ir.operator import TensorOperator
from .scheduling import Schedule
from .tiling import Tiling


class NRAClass(Enum):
    """Non-redundant-access class of a dataflow (paper Sec. III-A).

    The value counts how many operand tensors are accessed exactly once.
    """

    SINGLE = 1
    TWO = 2
    THREE = 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name.title()}-NRA"


@dataclass(frozen=True)
class Dataflow:
    """Tiling + schedule for one operator."""

    tiling: Tiling
    schedule: Schedule

    def validate(self, operator: TensorOperator) -> None:
        self.schedule.validate(operator)
        self.tiling.for_operator(operator)

    def loop_nest(self, operator: TensorOperator) -> LoopNest:
        """Materialize the tiled loop nest, outermost first."""
        self.validate(operator)
        resolved = self.tiling.for_operator(operator)
        return LoopNest(
            tuple(
                TiledLoop(dim=dim, extent=operator.dims[dim], tile=resolved[dim])
                for dim in self.schedule.order
            )
        )

    def untiled_dims(self, operator: TensorOperator) -> Tuple[str, ...]:
        return self.tiling.untiled_dims(operator.dims)

    def stationary_tensor_name(self, operator: TensorOperator) -> Optional[str]:
        tensor = self.schedule.stationary_tensor(operator, self.tiling)
        return tensor.name if tensor is not None else None

    def buffer_footprint(self, operator: TensorOperator) -> int:
        return self.tiling.buffer_footprint(operator)

    def describe(self, operator: TensorOperator) -> str:
        """Human-readable one-line summary used by example scripts."""
        resolved = self.tiling.for_operator(operator)
        tiles = ", ".join(
            f"T_{dim}={resolved[dim]}" for dim in self.schedule.order
        )
        stationary = self.stationary_tensor_name(operator) or "-"
        return (
            f"order=({', '.join(self.schedule.order)}); {tiles}; "
            f"stationary={stationary}"
        )
