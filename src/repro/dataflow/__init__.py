"""Dataflow specification and analytical cost models.

The three dataflow components of paper Sec. II-A:

* tiling   -- :mod:`repro.dataflow.tiling`
* schedule -- :mod:`repro.dataflow.scheduling`
* mapping  -- :mod:`repro.dataflow.mapping`

plus the memory-access counters over single (:mod:`repro.dataflow.cost`) and
fused (:mod:`repro.dataflow.fusion_nest`) loop nests.
"""

from .tiling import UNTILED, Tiling, TilingError, full_tiling, unit_tiling
from .scheduling import (
    Schedule,
    ScheduleError,
    all_schedules,
    input_stationary,
    output_stationary,
    stationary_schedule,
)
from .spec import Dataflow, NRAClass
from .cost import (
    MemoryAccessReport,
    PartialSumConvention,
    TensorAccess,
    fits_buffer,
    memory_access,
    nra_class,
    tensor_multiplier,
)
from .fusion_nest import (
    FusedAccessReport,
    FusedChain,
    FusedDataflow,
    FusionError,
    fused_memory_access,
)
from .serialize import (
    SerializationError,
    dataflow_from_dict,
    dataflow_to_dict,
    fused_dataflow_from_dict,
    fused_dataflow_to_dict,
    report_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    tiling_from_dict,
    tiling_to_dict,
)
from .mapping import (
    ArrayShape,
    FusedMappingKind,
    MappingError,
    SpatialMapping,
    best_array_utilization,
    classify_intermediate_tile,
)

__all__ = [
    "SerializationError",
    "dataflow_from_dict",
    "dataflow_to_dict",
    "fused_dataflow_from_dict",
    "fused_dataflow_to_dict",
    "report_to_dict",
    "schedule_from_dict",
    "schedule_to_dict",
    "tiling_from_dict",
    "tiling_to_dict",
    "UNTILED",
    "Tiling",
    "TilingError",
    "full_tiling",
    "unit_tiling",
    "Schedule",
    "ScheduleError",
    "all_schedules",
    "input_stationary",
    "output_stationary",
    "stationary_schedule",
    "Dataflow",
    "NRAClass",
    "MemoryAccessReport",
    "PartialSumConvention",
    "TensorAccess",
    "fits_buffer",
    "memory_access",
    "nra_class",
    "tensor_multiplier",
    "FusedAccessReport",
    "FusedChain",
    "FusedDataflow",
    "FusionError",
    "fused_memory_access",
    "ArrayShape",
    "FusedMappingKind",
    "MappingError",
    "SpatialMapping",
    "best_array_utilization",
    "classify_intermediate_tile",
]
