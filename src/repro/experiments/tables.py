"""Paper Tables I-III as data + renderers.

* Table I  -- qualitative feature matrix of dataflow optimizers.
* Table II -- transformer model parameters (from :mod:`repro.workloads`).
* Table III -- spatial-architecture attributes (from
  :mod:`repro.arch.accelerators`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..arch.accelerators import ALL_PLATFORMS
from ..workloads.models import PAPER_MODELS
from .runner import format_dict_table

#: Table I: summary of SOTA dataflow optimizers (paper Sec. II-B).
TABLE1_ROWS: Tuple[Dict[str, str], ...] = (
    {
        "Framework": "Intra-operator [1,3,6,7]",
        "Full tiling & scheduling space": "no",
        "Optimization scheme": "searching-based",
        "Mapping scheme": "searching with fixed patterns",
        "Fusion medium": "no fusion",
    },
    {
        "Framework": "Chimera [12]",
        "Full tiling & scheduling space": "no",
        "Optimization scheme": "searching-based",
        "Mapping scheme": "replaceable micro kernels",
        "Fusion medium": "memory",
    },
    {
        "Framework": "SET [13]",
        "Full tiling & scheduling space": "no",
        "Optimization scheme": "searching-based",
        "Mapping scheme": "not discussed",
        "Fusion medium": "memory",
    },
    {
        "Framework": "Flat [11]",
        "Full tiling & scheduling space": "no",
        "Optimization scheme": "searching-based",
        "Mapping scheme": "not discussed",
        "Fusion medium": "memory",
    },
    {
        "Framework": "DAT [14,15]",
        "Full tiling & scheduling space": "yes",
        "Optimization scheme": "searching-based",
        "Mapping scheme": "not discussed",
        "Fusion medium": "memory",
    },
    {
        "Framework": "This work",
        "Full tiling & scheduling space": "yes",
        "Optimization scheme": "principle-based",
        "Mapping scheme": "principle-based",
        "Fusion medium": "compute unit",
    },
)


def table1() -> str:
    """Render Table I."""
    return format_dict_table(
        list(TABLE1_ROWS), title="Table I: summary of the SOTA dataflow optimizers"
    )


def table2_rows() -> List[Dict[str, object]]:
    return [model.table_row() for model in PAPER_MODELS]


def table2() -> str:
    """Render Table II (transformer model parameters)."""
    return format_dict_table(
        table2_rows(), title="Table II: transformer model parameters (batch 16)"
    )


def table3_rows() -> List[Dict[str, str]]:
    return [factory().attributes() for factory in ALL_PLATFORMS]


def table3() -> str:
    """Render Table III (spatial architecture attributes)."""
    return format_dict_table(
        table3_rows(), title="Table III: spatial architecture attributes"
    )
