"""Fig. 11: sensitivity to sequence length (LLaMA2, 256 .. 16K).

The paper sweeps LLaMA2's sequence length and shows FuseCU sustains both
low memory access and high utilization for short and long sequences, "with
greater memory access reduction observed for longer sequences" (attention's
S^2 intermediates grow quadratically while the fused dataflow keeps them
on-chip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..arch.accelerators import ALL_PLATFORMS, AcceleratorSpec, evaluate_graph
from ..arch.memory import MemorySpec, PAPER_DEFAULT_MEMORY
from ..workloads.models import LLAMA2, LLAMA2_SEQ_SWEEP, ModelConfig
from ..workloads.transformer import build_layer_graph
from .fig10 import PLATFORM_ORDER
from .runner import format_table


@dataclass(frozen=True)
class Fig11Point:
    """One (sequence length, platform) evaluation."""

    seq_len: int
    platform: str
    memory_access: int
    cycles: float
    utilization: float


@dataclass(frozen=True)
class Fig11Result:
    points: Tuple[Fig11Point, ...]

    def point(self, seq_len: int, platform: str) -> Fig11Point:
        for candidate in self.points:
            if candidate.seq_len == seq_len and candidate.platform == platform:
                return candidate
        raise KeyError(f"no point for ({seq_len}, {platform})")

    @property
    def seq_lens(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for candidate in self.points:
            if candidate.seq_len not in seen:
                seen.append(candidate.seq_len)
        return tuple(seen)

    def normalized_ma(self, seq_len: int, platform: str) -> float:
        baseline = self.point(seq_len, "TPUv4i").memory_access
        return self.point(seq_len, platform).memory_access / baseline

    def fusecu_saving(self, seq_len: int, baseline: str = "TPUv4i") -> float:
        return 1.0 - self.point(seq_len, "FuseCU").memory_access / self.point(
            seq_len, baseline
        ).memory_access


def run_fig11(
    model: ModelConfig = LLAMA2,
    seq_lens: Sequence[int] = LLAMA2_SEQ_SWEEP,
    memory: MemorySpec = PAPER_DEFAULT_MEMORY,
    platforms: Sequence[Callable[[MemorySpec], AcceleratorSpec]] = ALL_PLATFORMS,
) -> Fig11Result:
    """Sweep sequence length for the given model across platforms."""
    points: List[Fig11Point] = []
    for seq_len in seq_lens:
        graph = build_layer_graph(model.with_seq_len(seq_len))
        for factory in platforms:
            spec = factory(memory)
            perf = evaluate_graph(graph, spec)
            points.append(
                Fig11Point(
                    seq_len=seq_len,
                    platform=spec.name,
                    memory_access=perf.total_memory_access,
                    cycles=perf.total_cycles,
                    utilization=perf.utilization,
                )
            )
    return Fig11Result(points=tuple(points))


def render_fig11(result: Fig11Result) -> str:
    rows = []
    for seq_len in result.seq_lens:
        row: List[object] = [seq_len]
        for platform in PLATFORM_ORDER:
            row.append(round(result.normalized_ma(seq_len, platform), 3))
        for platform in PLATFORM_ORDER:
            row.append(round(result.point(seq_len, platform).utilization, 3))
        row.append(f"{result.fusecu_saving(seq_len):.1%}")
        rows.append(row)
    headers = (
        ["seq len"]
        + [f"MA:{p}" for p in PLATFORM_ORDER]
        + [f"util:{p}" for p in PLATFORM_ORDER]
        + ["FuseCU saving"]
    )
    return format_table(
        headers,
        rows,
        title="Fig. 11: LLaMA2 vs sequence length (MA normalized to TPUv4i)",
    )
