"""ASCII bar and line charts for terminal-rendered figures.

The benchmark harnesses print the same *series* the paper plots; these
helpers render them visually enough to eyeball trends (grouped bars for
Fig. 10's normalized MA, line tracks for utilization and the Fig. 11
sweep) without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """A unicode bar of ``value / scale`` of ``width`` cells."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    cells = max(0.0, value / scale) * width
    full = int(cells)
    frac = cells - full
    bar = "█" * min(full, width)
    if full < width and frac > 0:
        bar += _BLOCKS[int(frac * 8)]
    return bar


def bar_chart(
    series: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labeled value, scaled to the max."""
    if not series:
        return title
    scale = max(series.values())
    label_width = max(len(label) for label in series)
    lines = [title] if title else []
    for label, value in series.items():
        lines.append(
            f"{label.ljust(label_width)} | "
            f"{_bar(value, scale, width).ljust(width)} {value:.3g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 32,
) -> str:
    """Bars grouped by outer key (e.g. model), one row per inner series."""
    lines = [title] if title else []
    scale = max(
        (value for group in groups.values() for value in group.values()),
        default=1.0,
    )
    label_width = max(
        (len(label) for group in groups.values() for label in group), default=1
    )
    for group_name, group in groups.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            lines.append(
                f"  {label.ljust(label_width)} | "
                f"{_bar(value, scale, width).ljust(width)} {value:.3g}"
            )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    height: int = 12,
    width: int = 60,
) -> str:
    """A multi-series scatter/line plot on a character grid."""
    if not series:
        return title
    lengths = {len(values) for values in series.values()}
    if lengths != {len(xs)}:
        raise ValueError("every series must match the x vector's length")
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, value in zip(xs, values):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [title] if title else []
    lines.append(f"{hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"x: {x_lo:g} .. {x_hi:g}   "
        + "  ".join(
            f"{markers[i % len(markers)]}={name}"
            for i, name in enumerate(series)
        )
    )
    return "\n".join(lines)
