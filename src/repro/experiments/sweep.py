"""Buffer-size sweep study: the MA(BS) lower-bound curves.

Complements Fig. 9: rather than sampling fixed buffer sizes, this harness
extracts the *corner points* of each operator's MA(BS) staircase
(:func:`repro.core.inverse.pareto_curve`), annotates the paper's regime
boundaries (``Dmin^2/4``, ``Dmin^2/2``, ``Tensor_min``), and renders the
normalized curves as an ASCII line chart -- the visual form of the paper's
Sec. III-A4 classification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.inverse import ParetoPoint, pareto_curve
from ..core.lower_bound import shift_point_band, three_nra_threshold
from ..ir.operator import TensorOperator
from .ascii_plots import line_chart
from .runner import format_table


@dataclass(frozen=True)
class SweepCurve:
    """One operator's lower-bound staircase plus regime annotations."""

    operator: str
    ideal: int
    points: Tuple[ParetoPoint, ...]
    shift_band: Tuple[float, float]
    three_nra_at: int

    def normalized(self) -> List[Tuple[int, float]]:
        return [
            (point.buffer_elems, point.memory_access / self.ideal)
            for point in self.points
        ]


def run_sweep(
    operators: Sequence[TensorOperator],
    max_points: int = 24,
) -> List[SweepCurve]:
    """Extract every operator's MA(BS) corner curve."""
    curves: List[SweepCurve] = []
    for operator in operators:
        points = pareto_curve(operator, max_points=max_points)
        curves.append(
            SweepCurve(
                operator=operator.name,
                ideal=operator.ideal_memory_access(),
                points=tuple(points),
                shift_band=shift_point_band(operator),
                three_nra_at=three_nra_threshold(operator),
            )
        )
    return curves


def render_sweep(curves: Sequence[SweepCurve]) -> str:
    """Table of corners + a log-log-ish ASCII chart per operator."""
    blocks: List[str] = []
    for curve in curves:
        rows = [
            [point.buffer_elems, point.memory_access,
             round(point.memory_access / curve.ideal, 3)]
            for point in curve.points
        ]
        blocks.append(
            format_table(
                ["buffer (elems)", "MA lower bound", "MA / ideal"],
                rows,
                title=(
                    f"{curve.operator}: shift band "
                    f"[{curve.shift_band[0]:.0f}, {curve.shift_band[1]:.0f}], "
                    f"Three-NRA from ~{curve.three_nra_at} elems"
                ),
            )
        )
        xs = [math.log2(point.buffer_elems) for point in curve.points]
        ys = {
            "MA/ideal": [
                point.memory_access / curve.ideal for point in curve.points
            ]
        }
        blocks.append(
            line_chart(
                xs,
                ys,
                title=f"{curve.operator}: normalized MA vs log2(buffer)",
                height=10,
                width=56,
            )
        )
    return "\n\n".join(blocks)
