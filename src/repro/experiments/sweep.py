"""Buffer-size sweep study: the MA(BS) lower-bound curves.

Complements Fig. 9: rather than sampling fixed buffer sizes, this harness
extracts the *corner points* of each operator's MA(BS) staircase
(:func:`repro.core.inverse.pareto_curve`), annotates the paper's regime
boundaries (``Dmin^2/4``, ``Dmin^2/2``, ``Tensor_min``), and renders the
normalized curves as an ASCII line chart -- the visual form of the paper's
Sec. III-A4 classification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.memory import PAPER_BUFFER_SWEEP_BYTES
from ..core.inverse import ParetoPoint, pareto_curve
from ..core.lower_bound import shift_point_band, three_nra_threshold
from ..ir.operator import TensorOperator
from ..service.engine import BatchEngine
from ..service.requests import AnalysisRequest, sweep_point_request
from .ascii_plots import line_chart
from .runner import format_table, run_grid


@dataclass(frozen=True)
class SweepCurve:
    """One operator's lower-bound staircase plus regime annotations."""

    operator: str
    ideal: int
    points: Tuple[ParetoPoint, ...]
    shift_band: Tuple[float, float]
    three_nra_at: int

    def normalized(self) -> List[Tuple[int, float]]:
        return [
            (point.buffer_elems, point.memory_access / self.ideal)
            for point in self.points
        ]


def run_sweep(
    operators: Sequence[TensorOperator],
    max_points: int = 24,
) -> List[SweepCurve]:
    """Extract every operator's MA(BS) corner curve."""
    curves: List[SweepCurve] = []
    for operator in operators:
        points = pareto_curve(operator, max_points=max_points)
        curves.append(
            SweepCurve(
                operator=operator.name,
                ideal=operator.ideal_memory_access(),
                points=tuple(points),
                shift_band=shift_point_band(operator),
                three_nra_at=three_nra_threshold(operator),
            )
        )
    return curves


def render_sweep(curves: Sequence[SweepCurve]) -> str:
    """Table of corners + a log-log-ish ASCII chart per operator."""
    blocks: List[str] = []
    for curve in curves:
        rows = [
            [point.buffer_elems, point.memory_access,
             round(point.memory_access / curve.ideal, 3)]
            for point in curve.points
        ]
        blocks.append(
            format_table(
                ["buffer (elems)", "MA lower bound", "MA / ideal"],
                rows,
                title=(
                    f"{curve.operator}: shift band "
                    f"[{curve.shift_band[0]:.0f}, {curve.shift_band[1]:.0f}], "
                    f"Three-NRA from ~{curve.three_nra_at} elems"
                ),
            )
        )
        xs = [math.log2(point.buffer_elems) for point in curve.points]
        ys = {
            "MA/ideal": [
                point.memory_access / curve.ideal for point in curve.points
            ]
        }
        blocks.append(
            line_chart(
                xs,
                ys,
                title=f"{curve.operator}: normalized MA vs log2(buffer)",
                height=10,
                width=56,
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Fixed-grid sweep through the batch engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepGridPoint:
    """One (operator, buffer size) sample of a fixed-grid sweep."""

    operator: str
    buffer_bytes: int
    memory_access: Optional[int]
    normalized: Optional[float]
    regime: Optional[str]
    error: Optional[str] = None


def sweep_grid_requests(
    operators: Sequence[TensorOperator],
    buffer_sweep_bytes: Sequence[int] = PAPER_BUFFER_SWEEP_BYTES,
) -> List[AnalysisRequest]:
    """The (operator x buffer) grid as batch-engine requests."""
    requests: List[AnalysisRequest] = []
    for operator in operators:
        dims = dict(operator.dims)
        if set(dims) != {"M", "K", "L"}:
            raise ValueError(
                f"sweep grid needs M/K/L matmul operators, got "
                f"{operator.name!r} with dims {sorted(dims)}"
            )
        for buffer_bytes in buffer_sweep_bytes:
            # 1-byte elements: buffer bytes == buffer elements (paper
            # accounting, as in the Fig. 9 harness).
            requests.append(
                sweep_point_request(
                    dims["M"], dims["K"], dims["L"], buffer_bytes
                )
            )
    return requests


def run_sweep_grid(
    operators: Sequence[TensorOperator],
    buffer_sweep_bytes: Sequence[int] = PAPER_BUFFER_SWEEP_BYTES,
    engine: Optional[BatchEngine] = None,
    jobs: int = 1,
    max_attempts: int = 1,
    deadline_seconds: Optional[float] = None,
    journal_path: Optional[str] = None,
    stop_event: Optional[object] = None,
) -> List[SweepGridPoint]:
    """Evaluate the MA(BS) grid through the batch engine.

    Unlike :func:`run_sweep` (which bisects out the exact staircase
    corners), this samples a *fixed* buffer grid -- the shape of workload a
    serving deployment sees -- so repeats hit the engine's result cache and
    independent points fan out across its pool.  Infeasible points come
    back as error records, not exceptions; ``max_attempts`` and
    ``deadline_seconds`` forward to the engine's resilience layer, so a
    hung point times out as a structured error instead of stalling the
    sweep.  ``journal_path`` checkpoints completed points to a
    write-ahead journal, so a killed sweep resumes where it died (see
    :func:`~repro.experiments.runner.run_grid`).
    """

    requests = sweep_grid_requests(operators, buffer_sweep_bytes)
    report = run_grid(
        requests,
        jobs=jobs,
        engine=engine,
        max_attempts=max_attempts,
        deadline_seconds=deadline_seconds,
        journal_path=journal_path,
        stop_event=stop_event,
    )
    points: List[SweepGridPoint] = []
    per_op = len(tuple(buffer_sweep_bytes))
    for position, entry in enumerate(report.entries):
        operator = operators[position // per_op]
        buffer_bytes = tuple(buffer_sweep_bytes)[position % per_op]
        if entry.ok:
            result = entry.record["result"]
            points.append(
                SweepGridPoint(
                    operator=operator.name,
                    buffer_bytes=buffer_bytes,
                    memory_access=result["memory_access"],
                    normalized=result["normalized"],
                    regime=result["regime"],
                )
            )
        else:
            points.append(
                SweepGridPoint(
                    operator=operator.name,
                    buffer_bytes=buffer_bytes,
                    memory_access=None,
                    normalized=None,
                    regime=None,
                    error=entry.record["error"]["message"],
                )
            )
    return points


def render_sweep_grid(points: Sequence[SweepGridPoint]) -> str:
    """Table of the fixed-grid sweep (one row per sample)."""
    rows = []
    for point in points:
        rows.append(
            [
                point.operator,
                point.buffer_bytes // 1024,
                "-" if point.memory_access is None else point.memory_access,
                "-" if point.normalized is None else round(point.normalized, 4),
                point.regime or (point.error or "-"),
            ]
        )
    return format_table(
        ["operator", "buffer (KB)", "MA", "MA / ideal", "regime"],
        rows,
        title="MA(BS) fixed-grid sweep (batch engine)",
    )
