"""Fig. 10: memory access + utilization across models and platforms.

The paper's main result: over the seven Table II models, FuseCU reduces
memory access by 63.6% / 62.4% / 38.7% and speeds execution by 1.33x /
1.25x / 1.14x versus TPUv4i / Gemmini / Planaria, with UnfCU (no fusion)
capturing the intra-operator share of the gains (42.6% / 41.0% / 4.5%).

This harness evaluates every (model, platform) pair through the analytical
platform models and reports the paper's two series: memory access
normalized to TPUv4i (bar chart) and utilization (line chart), plus the
aggregated headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..arch.accelerators import (
    ALL_PLATFORMS,
    AcceleratorSpec,
    evaluate_graph,
    fusecu,
    gemmini,
    planaria,
    tpuv4i,
    unfcu,
)
from ..arch.memory import MemorySpec, PAPER_DEFAULT_MEMORY
from ..arch.perf import PlatformPerf
from ..workloads.models import ModelConfig, PAPER_MODELS
from ..workloads.transformer import build_layer_graph
from .runner import arithmetic_mean, format_table, geometric_mean

#: Platform order used throughout (TPUv4i is the normalization baseline).
PLATFORM_ORDER = ("TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU")

#: The paper's reported averages, for side-by-side reporting.
PAPER_FUSECU_MA_SAVING = {"TPUv4i": 0.636, "Gemmini": 0.624, "Planaria": 0.387}
PAPER_FUSECU_SPEEDUP = {"TPUv4i": 1.33, "Gemmini": 1.25, "Planaria": 1.14}
PAPER_UNFCU_MA_SAVING = {"TPUv4i": 0.426, "Gemmini": 0.410, "Planaria": 0.045}


@dataclass(frozen=True)
class Fig10Cell:
    """One (model, platform) evaluation."""

    model: str
    platform: str
    memory_access: int
    cycles: float
    utilization: float


@dataclass(frozen=True)
class Fig10Result:
    """The full Fig. 10 grid plus aggregates."""

    cells: Tuple[Fig10Cell, ...]

    def cell(self, model: str, platform: str) -> Fig10Cell:
        for candidate in self.cells:
            if candidate.model == model and candidate.platform == platform:
                return candidate
        raise KeyError(f"no cell for ({model}, {platform})")

    @property
    def models(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for candidate in self.cells:
            if candidate.model not in seen:
                seen.append(candidate.model)
        return tuple(seen)

    # ------------------------------------------------------------------
    def normalized_ma(self, model: str, platform: str) -> float:
        """Memory access normalized to TPUv4i (the paper's bar chart)."""
        baseline = self.cell(model, "TPUv4i").memory_access
        return self.cell(model, platform).memory_access / baseline

    def ma_saving(self, platform: str, baseline: str) -> float:
        """Average fractional MA saving of ``platform`` over ``baseline``."""
        savings = [
            1.0
            - self.cell(model, platform).memory_access
            / self.cell(model, baseline).memory_access
            for model in self.models
        ]
        return arithmetic_mean(savings)

    def speedup(self, platform: str, baseline: str) -> float:
        """Average speedup of ``platform`` over ``baseline``."""
        speedups = [
            self.cell(model, baseline).cycles / self.cell(model, platform).cycles
            for model in self.models
        ]
        return geometric_mean(speedups)

    def headline(self) -> Dict[str, Dict[str, float]]:
        """The paper's headline aggregates for FuseCU and UnfCU."""
        return {
            "fusecu_ma_saving": {
                base: self.ma_saving("FuseCU", base)
                for base in ("TPUv4i", "Gemmini", "Planaria")
            },
            "fusecu_speedup": {
                base: self.speedup("FuseCU", base)
                for base in ("TPUv4i", "Gemmini", "Planaria")
            },
            "unfcu_ma_saving": {
                base: self.ma_saving("UnfCU", base)
                for base in ("TPUv4i", "Gemmini", "Planaria")
            },
        }


def run_fig10(
    models: Sequence[ModelConfig] = PAPER_MODELS,
    memory: MemorySpec = PAPER_DEFAULT_MEMORY,
    platforms: Sequence[Callable[[MemorySpec], AcceleratorSpec]] = ALL_PLATFORMS,
) -> Fig10Result:
    """Evaluate every (model, platform) pair."""
    cells: List[Fig10Cell] = []
    for model in models:
        graph = build_layer_graph(model)
        for factory in platforms:
            spec = factory(memory)
            perf: PlatformPerf = evaluate_graph(graph, spec)
            cells.append(
                Fig10Cell(
                    model=model.name,
                    platform=spec.name,
                    memory_access=perf.total_memory_access,
                    cycles=perf.total_cycles,
                    utilization=perf.utilization,
                )
            )
    return Fig10Result(cells=tuple(cells))


def render_fig10(result: Fig10Result) -> str:
    """Print the normalized-MA bars and utilization lines plus headlines."""
    rows = []
    for model in result.models:
        row: List[object] = [model]
        for platform in PLATFORM_ORDER:
            row.append(round(result.normalized_ma(model, platform), 3))
        for platform in PLATFORM_ORDER:
            row.append(round(result.cell(model, platform).utilization, 3))
        rows.append(row)
    headers = (
        ["model"]
        + [f"MA:{p}" for p in PLATFORM_ORDER]
        + [f"util:{p}" for p in PLATFORM_ORDER]
    )
    table = format_table(
        headers,
        rows,
        title="Fig. 10: normalized memory access (bars) and utilization (lines)",
    )
    summary = result.headline()
    lines = [table, "", "Headline averages (measured vs paper):"]
    for base in ("TPUv4i", "Gemmini", "Planaria"):
        lines.append(
            f"  FuseCU vs {base}: MA saving "
            f"{summary['fusecu_ma_saving'][base]:.1%} "
            f"(paper {PAPER_FUSECU_MA_SAVING[base]:.1%}), speedup "
            f"{summary['fusecu_speedup'][base]:.2f}x "
            f"(paper {PAPER_FUSECU_SPEEDUP[base]:.2f}x)"
        )
    for base in ("TPUv4i", "Gemmini", "Planaria"):
        lines.append(
            f"  UnfCU  vs {base}: MA saving "
            f"{summary['unfcu_ma_saving'][base]:.1%} "
            f"(paper {PAPER_UNFCU_MA_SAVING[base]:.1%})"
        )
    return "\n".join(lines)
