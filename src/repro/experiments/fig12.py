"""Fig. 12: FuseCU area breakdown and overheads at 28 nm.

The paper's two headlines:

* FuseCU adds **12.0%** area over the TPUv4i-style baseline array, almost
  entirely the XS PE MUX logic;
* the FuseCU resize interconnect and fusion control contribute **< 0.1%**
  -- far below Planaria's 12.6% interconnect cost.

The area model (:mod:`repro.arch.area`) reproduces both from gate-equivalent
estimates; this harness renders the breakdown and the comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..arch.area import (
    AreaBreakdown,
    fusecu_area,
    gemmini_area,
    planaria_area,
    tpuv4i_area,
    unfcu_area,
)
from .runner import format_dict_table, format_table

#: Paper-reported reference values.
PAPER_FUSECU_OVERHEAD = 0.120
PAPER_INTERCONNECT_SHARE_MAX = 0.001
PAPER_PLANARIA_OVERHEAD = 0.126


@dataclass(frozen=True)
class Fig12Result:
    """Area breakdowns for every platform plus derived overheads."""

    breakdowns: Tuple[AreaBreakdown, ...]

    def breakdown(self, platform: str) -> AreaBreakdown:
        for candidate in self.breakdowns:
            if candidate.platform == platform:
                return candidate
        raise KeyError(f"no breakdown for {platform!r}")

    @property
    def fusecu_overhead(self) -> float:
        """FuseCU area increase over the TPUv4i baseline (paper: 12.0%)."""
        return self.breakdown("FuseCU").overhead_over(self.breakdown("TPUv4i"))

    @property
    def planaria_overhead(self) -> float:
        """Planaria area increase over TPUv4i (paper: 12.6%)."""
        return self.breakdown("Planaria").overhead_over(self.breakdown("TPUv4i"))

    @property
    def interconnect_and_control_share(self) -> float:
        """FuseCU resize interconnect + control share of total (paper <0.1%)."""
        fusecu = self.breakdown("FuseCU")
        return fusecu.fraction("FuseCU resize interconnect") + fusecu.fraction(
            "fusion control units"
        )


def run_fig12() -> Fig12Result:
    """Build every platform's area breakdown."""
    return Fig12Result(
        breakdowns=(
            tpuv4i_area(),
            gemmini_area(),
            planaria_area(),
            unfcu_area(),
            fusecu_area(),
        )
    )


def render_fig12(result: Fig12Result) -> str:
    fusecu = result.breakdown("FuseCU")
    lines: List[str] = [
        format_dict_table(
            fusecu.rows(), title="Fig. 12: FuseCU area breakdown (28 nm GE model)"
        ),
        "",
        f"FuseCU total: {fusecu.total_mm2:.2f} mm^2 ({fusecu.total_ge} GE)",
        (
            f"FuseCU overhead over TPUv4i: {result.fusecu_overhead:.1%} "
            f"(paper {PAPER_FUSECU_OVERHEAD:.1%})"
        ),
        (
            "FuseCU interconnect + control share: "
            f"{result.interconnect_and_control_share:.3%} "
            f"(paper < {PAPER_INTERCONNECT_SHARE_MAX:.1%})"
        ),
        (
            f"Planaria interconnect overhead: {result.planaria_overhead:.1%} "
            f"(paper {PAPER_PLANARIA_OVERHEAD:.1%})"
        ),
    ]
    rows = [
        [b.platform, b.total_ge, round(b.total_mm2, 2), f"{b.overhead_over(result.breakdown('TPUv4i')):.2%}"]
        for b in result.breakdowns
    ]
    lines.append("")
    lines.append(
        format_table(
            ["platform", "GE", "mm^2", "overhead vs TPUv4i"],
            rows,
            title="Per-platform totals",
        )
    )
    return "\n".join(lines)
