"""Fig. 9: validating principle optimality against searching-based DSE.

The paper sweeps buffer sizes from 32 KB to 32 MB and compares the memory
access of the principle-optimized dataflow (line) against DAT's searched
dataflow (points); the two coincide, with the principles occasionally
winning because DAT's genetic algorithm "does not guarantee global
optimization".

Here the DAT stand-in is :mod:`repro.search` (exhaustive over a
power-of-two grid + a genetic optimizer over raw integer tiles).  For every
(operator, buffer size) sample the harness reports

* ``principle``  -- one-shot principle-based MA (the claimed lower bound),
* ``exhaustive`` -- best grid point,
* ``genetic``    -- best GA individual,

normalized to the operator's infinite-buffer ideal.  The reproduction
claims checked by the benchmark: principle <= exhaustive and
principle <= genetic everywhere (ties expected at most sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ir.operator import TensorOperator
from ..core.regimes import classify_buffer
from ..service.intra_cache import cached_optimize_intra
from ..search.exhaustive import exhaustive_search
from ..search.genetic import GASettings, genetic_search
from ..arch.memory import PAPER_BUFFER_SWEEP_BYTES
from ..workloads.models import BERT
from ..workloads.transformer import representative_matmuls
from .runner import format_table


@dataclass(frozen=True)
class Fig9Point:
    """One (operator, buffer size) sample of the validation sweep."""

    operator: str
    buffer_bytes: int
    regime: str
    ideal: int
    principle: int
    exhaustive: Optional[int]
    genetic: Optional[int]
    #: ``True`` when the point's principle result carried an independent
    #: certificate (``run_fig9(certify=True)``); ``None`` when the sweep
    #: ran without certification.
    certified: Optional[bool] = None

    @property
    def principle_normalized(self) -> float:
        return self.principle / self.ideal

    @property
    def exhaustive_normalized(self) -> Optional[float]:
        return None if self.exhaustive is None else self.exhaustive / self.ideal

    @property
    def genetic_normalized(self) -> Optional[float]:
        return None if self.genetic is None else self.genetic / self.ideal

    @property
    def principle_at_most_search(self) -> bool:
        """The Fig. 9 claim: principles never lose to search."""
        for searched in (self.exhaustive, self.genetic):
            if searched is not None and self.principle > searched:
                return False
        return True


def default_operators() -> Tuple[TensorOperator, ...]:
    """BERT-layer matmul shapes, as in the paper's validation workloads."""
    return representative_matmuls(BERT)


def run_fig9(
    operators: Optional[Sequence[TensorOperator]] = None,
    buffer_sweep_bytes: Sequence[int] = PAPER_BUFFER_SWEEP_BYTES,
    ga_settings: GASettings = GASettings(population=48, generations=40),
    include_genetic: bool = True,
    certify: bool = False,
) -> List[Fig9Point]:
    """Run the Fig. 9 sweep and return one point per (operator, BS).

    With ``certify=True`` every principle point is revalidated by the
    independent :mod:`repro.verify` auditors (feasibility, recounted MA,
    lower bound, regime).  A point that fails its certificate raises
    :class:`~repro.verify.CertificationError` -- a reproduction figure
    built on an uncertified claim is worse than no figure.
    """
    if operators is None:
        operators = default_operators()
    points: List[Fig9Point] = []
    for operator in operators:
        ideal = operator.ideal_memory_access()
        for buffer_bytes in buffer_sweep_bytes:
            buffer_elems = buffer_bytes  # 1-byte elements (paper accounting)
            # Shared service cache: repeated (dims, buffer) tuples across
            # operators and harnesses are optimized once per process.
            result = cached_optimize_intra(operator, buffer_elems)
            certified: Optional[bool] = None
            if certify:
                from ..verify import CertificationError, certify_intra

                certificate = certify_intra(
                    operator, buffer_elems, result=result
                ).certificate
                if not certificate.ok:
                    raise CertificationError(
                        f"fig9 point ({operator.name}, {buffer_bytes}B) "
                        "failed certification: "
                        + "; ".join(certificate.failure_summaries()),
                        certificate=certificate,
                    )
                certified = True
            searched = exhaustive_search(operator, buffer_elems)
            genetic = (
                genetic_search(operator, buffer_elems, ga_settings)
                if include_genetic
                else None
            )
            points.append(
                Fig9Point(
                    operator=operator.name,
                    buffer_bytes=buffer_bytes,
                    regime=classify_buffer(operator, buffer_elems).regime.value,
                    ideal=ideal,
                    principle=result.memory_access,
                    exhaustive=None if searched is None else searched.memory_access,
                    genetic=None if genetic is None else genetic.memory_access,
                    certified=certified,
                )
            )
    return points


def render_fig9(points: Sequence[Fig9Point]) -> str:
    """Print the sweep as the paper's normalized-MA series."""
    rows = []
    for point in points:
        rows.append(
            [
                point.operator,
                point.buffer_bytes // 1024,
                point.regime,
                round(point.principle_normalized, 4),
                (
                    "-"
                    if point.exhaustive_normalized is None
                    else round(point.exhaustive_normalized, 4)
                ),
                (
                    "-"
                    if point.genetic_normalized is None
                    else round(point.genetic_normalized, 4)
                ),
                "yes" if point.principle_at_most_search else "NO",
            ]
        )
    return format_table(
        [
            "operator",
            "buffer (KB)",
            "regime",
            "principle/ideal",
            "exhaustive/ideal",
            "genetic/ideal",
            "principle<=search",
        ],
        rows,
        title="Fig. 9: normalized memory access, principles (line) vs search (points)",
    )
