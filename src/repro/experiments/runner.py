"""Shared utilities for the experiment harnesses.

Each ``figN``/``tables`` module computes its paper artifact and returns
plain dataclasses; this module provides the text rendering used by the
benchmark harnesses and example scripts to print the same rows/series the
paper reports, plus :func:`run_grid` -- the one place experiment grids are
submitted to the batch engine (:mod:`repro.service`), so every harness
shares its result cache, pool, and metering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..service.engine import BatchEngine, EngineConfig
from ..service.journal import BatchJournal
from ..service.report import BatchReport
from ..service.requests import AnalysisRequest


def run_grid(
    requests: Sequence[AnalysisRequest],
    jobs: int = 1,
    cache_size: int = 4096,
    executor: str = "thread",
    engine: Optional[BatchEngine] = None,
    max_attempts: int = 1,
    deadline_seconds: Optional[float] = None,
    journal_path: Optional[str] = None,
    stop_event: Optional[Any] = None,
) -> BatchReport:
    """Submit an experiment grid through the batch engine.

    Pass an existing ``engine`` to share its warm cache across grids (e.g.
    a buffer sweep followed by a platform comparison reuses every
    intra-operator optimum already computed); otherwise a fresh engine is
    configured from the remaining arguments.  ``max_attempts`` /
    ``deadline_seconds`` forward to the engine's resilience layer so
    long-running grids survive transient worker failures and a hung point
    cannot stall a whole sweep.

    ``journal_path`` makes the grid *checkpointed*: completed points are
    fsync'd to a write-ahead journal as they land, and re-running the
    same grid with the same path resumes -- recomputing only the points
    the previous (killed or interrupted) run never finished.
    ``stop_event`` (see :func:`repro.service.shutdown_guard`) turns
    SIGINT/SIGTERM into a graceful, resumable stop.
    """

    if engine is None:
        engine = BatchEngine(
            EngineConfig(
                jobs=jobs,
                cache_size=cache_size,
                executor=executor,
                max_attempts=max_attempts,
                deadline_seconds=deadline_seconds,
            )
        )
    if journal_path is None:
        return engine.run_batch(requests, stop_event=stop_event)
    # Experiment grids always resume: rerunning the same harness command
    # after a crash is the natural "continue" gesture.
    with BatchJournal(journal_path, resume=True) as journal:
        return engine.run_batch(
            requests, journal=journal, stop_event=stop_event
        )


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an ASCII table (paper-style rows) for terminal output."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells; expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e6 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_dict_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of homogeneous dicts as a table."""
    if not rows:
        return title
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows], title)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the natural average for speedups)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"non-positive value {value} in geometric mean")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
