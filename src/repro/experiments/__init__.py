"""Experiment harnesses: one module per paper table/figure.

* :mod:`repro.experiments.tables` -- Tables I, II, III.
* :mod:`repro.experiments.fig9`  -- principle-vs-search validation sweep.
* :mod:`repro.experiments.fig10` -- 7 models x 5 platforms MA/utilization.
* :mod:`repro.experiments.fig11` -- LLaMA2 sequence-length sensitivity.
* :mod:`repro.experiments.fig12` -- area breakdown and overheads.
"""

from .runner import (
    arithmetic_mean,
    format_dict_table,
    format_table,
    geometric_mean,
    run_grid,
)
from .ascii_plots import bar_chart, grouped_bar_chart, line_chart
from .tables import TABLE1_ROWS, table1, table2, table2_rows, table3, table3_rows
from .fig9 import Fig9Point, default_operators, render_fig9, run_fig9
from .fig10 import (
    Fig10Cell,
    Fig10Result,
    PAPER_FUSECU_MA_SAVING,
    PAPER_FUSECU_SPEEDUP,
    PAPER_UNFCU_MA_SAVING,
    PLATFORM_ORDER,
    render_fig10,
    run_fig10,
)
from .fig11 import Fig11Point, Fig11Result, render_fig11, run_fig11
from .fig12 import Fig12Result, render_fig12, run_fig12
from .sweep import (
    SweepCurve,
    SweepGridPoint,
    render_sweep,
    render_sweep_grid,
    run_sweep,
    run_sweep_grid,
    sweep_grid_requests,
)
from .report import ReportOptions, generate_report

__all__ = [
    "ReportOptions",
    "generate_report",
    "SweepCurve",
    "SweepGridPoint",
    "render_sweep",
    "render_sweep_grid",
    "run_sweep",
    "run_sweep_grid",
    "run_grid",
    "sweep_grid_requests",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "arithmetic_mean",
    "format_dict_table",
    "format_table",
    "geometric_mean",
    "TABLE1_ROWS",
    "table1",
    "table2",
    "table2_rows",
    "table3",
    "table3_rows",
    "Fig9Point",
    "default_operators",
    "render_fig9",
    "run_fig9",
    "Fig10Cell",
    "Fig10Result",
    "PAPER_FUSECU_MA_SAVING",
    "PAPER_FUSECU_SPEEDUP",
    "PAPER_UNFCU_MA_SAVING",
    "PLATFORM_ORDER",
    "render_fig10",
    "run_fig10",
    "Fig11Point",
    "Fig11Result",
    "render_fig11",
    "run_fig11",
    "Fig12Result",
    "render_fig12",
    "run_fig12",
]
