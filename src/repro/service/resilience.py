"""Retry, deadline, and circuit-breaker policies for the batch engine.

Three small, independently testable mechanisms:

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *deterministic* jitter (hashed from the request key and attempt number,
  never from a random source or the wall clock), so retry schedules are
  reproducible run to run.  ``sleep`` is injectable so tests never wait.
* :class:`Deadline` -- a monotonic-clock budget for one request.  The
  engine enforces it preemptively for process pools
  (``future.result(timeout=...)`` plus worker respawn) and cooperatively
  for threads/serial (workers call :meth:`Deadline.check` at safe points,
  since a thread cannot be killed).
* :class:`CircuitBreaker` -- per-request-kind consecutive-failure
  counting.  After ``threshold`` consecutive *permanent* failures of one
  kind, further requests of that kind fail fast with a structured
  :class:`~repro.service.errors.CircuitOpenError` record instead of
  burning pool slots; one success closes the circuit again.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .errors import TRANSIENT, DeadlineExceededError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts total attempts (1 = no retries).  The delay
    before attempt ``n`` (n >= 2) is ``base_delay * 2**(n-2)`` scaled by a
    jitter factor in ``[1, 1+jitter]`` derived from SHA-256 of
    ``key:attempt`` -- deterministic for a given request, decorrelated
    across requests -- and capped at ``max_delay``.
    """

    max_attempts: int = 1
    base_delay: float = 0.0
    max_delay: float = 2.0
    jitter: float = 0.5
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def should_retry(self, category: Optional[str], attempt: int) -> bool:
        """Retry only transient failures with attempts remaining."""
        return category == TRANSIENT and attempt < self.max_attempts

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Deterministic backoff before ``attempt`` (attempt >= 2)."""
        if attempt <= 1 or self.base_delay <= 0:
            return 0.0
        raw = self.base_delay * (2.0 ** (attempt - 2))
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return min(raw * (1.0 + self.jitter * fraction), self.max_delay)

    def backoff(self, attempt: int, key: str = "") -> float:
        """Sleep the deterministic delay; returns the seconds slept."""
        delay = self.delay_for(attempt, key)
        if delay > 0:
            self.sleep(delay)
        return delay


class Deadline:
    """A per-request time budget on the monotonic clock.

    ``Deadline(None)`` is an unlimited deadline: never expires, infinite
    remaining budget -- so call sites need no None-handling.
    """

    def __init__(self, seconds: Optional[float]):
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline seconds must be positive")
        self.seconds = seconds
        self._started = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "request") -> None:
        """Cooperative checkpoint: raise if the budget is spent."""
        if self.expired():
            # No elapsed time in the message: deadline errors land in the
            # deterministic result stream, which must stay byte-identical
            # across runs and --jobs settings.
            raise DeadlineExceededError(
                f"{label} exceeded its {self.seconds:.3f}s deadline"
            )


class CircuitBreaker:
    """Per-request-kind fail-fast after consecutive permanent failures.

    ``threshold <= 0`` disables the breaker entirely (every request is
    allowed; nothing is counted).  The breaker is deliberately simple --
    no half-open timer, since the service is batch-oriented: any success
    of a kind closes its circuit, and the engine re-probes by letting the
    *first* request of an open kind per batch through.
    """

    def __init__(self, threshold: int = 0):
        if threshold < 0:
            raise ValueError("breaker threshold must be non-negative")
        self.threshold = threshold
        self._consecutive: Dict[str, int] = {}
        self._open_kinds: Dict[str, bool] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def is_open(self, kind: Optional[str]) -> bool:
        if not self.enabled or kind is None:
            return False
        return self._consecutive.get(kind, 0) >= self.threshold

    def record_success(self, kind: Optional[str]) -> None:
        if self.enabled and kind is not None:
            self._consecutive[kind] = 0

    def record_failure(self, kind: Optional[str], category: str) -> None:
        """Count permanent failures; transient ones don't trip circuits."""
        if not self.enabled or kind is None:
            return
        if category == TRANSIENT:
            return
        self._consecutive[kind] = self._consecutive.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        """Consecutive-permanent-failure counts per kind (for reports)."""
        return {
            kind: count
            for kind, count in sorted(self._consecutive.items())
            if count > 0
        }
