"""Advisory file locking so shared state files have exactly one writer.

Two processes appending to one write-ahead journal interleave records and
tear lines; two daemons saving one cache file race each other's
``os.replace``.  Both are operator mistakes that should fail *loudly at
startup*, not corrupt state silently at 3am.  This module wraps
``fcntl.flock`` (advisory, non-blocking, exclusive) behind a small
portable API:

* :func:`lock_handle` locks an already-open file handle for its
  lifetime -- the journal locks its append handle this way, so a second
  process opening the same journal raises immediately.
* :class:`FileLock` owns a separate ``<path>.lock`` file for
  resource-level ownership (e.g. a daemon's ``--cache-file``), held for
  the daemon's lifetime and released on close or process death.

The kernel drops ``flock`` locks automatically when the holding process
dies -- including SIGKILL -- which is exactly the semantics a respawned
shard worker needs: the corpse's journal lock evaporates with it, and
the replacement re-locks cleanly.

On platforms without ``fcntl`` (Windows) locking degrades to a no-op:
the serving tier there loses the belt-and-braces guard but keeps
working.
"""

from __future__ import annotations

import os
from typing import Any, IO, Optional

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

#: Whether advisory locking is actually enforced on this platform.
LOCKING_SUPPORTED = fcntl is not None


class FileLockedError(OSError):
    """The file is exclusively locked by another live process."""

    def __init__(self, path: str, purpose: str = "file"):
        self.path = path
        super().__init__(
            f"{purpose} {path!r} is locked by another process; two "
            "processes must never share it -- stop the other owner or "
            "point this one at a different path"
        )


def lock_handle(handle: IO[Any], path: str, purpose: str = "file") -> bool:
    """Take an exclusive, non-blocking advisory lock on an open handle.

    Returns ``True`` when the lock was taken (or locking is unsupported
    on this platform); raises :class:`FileLockedError` when another
    process holds it.  The lock lives as long as the handle (or the
    process): closing either releases it.
    """

    if fcntl is None:  # pragma: no cover - Windows
        return True
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        raise FileLockedError(path, purpose=purpose) from None
    return True


def unlock_handle(handle: IO[Any]) -> None:
    """Release a :func:`lock_handle` lock early (closing also releases)."""
    if fcntl is None:  # pragma: no cover - Windows
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    except (OSError, ValueError):  # closed handle: lock already gone
        pass


class FileLock:
    """Process-lifetime ownership of a resource via a ``.lock`` sidecar.

    >>> lock = FileLock("/tmp/results.cache.lock", purpose="cache file")
    >>> lock.acquire()   # raises FileLockedError if another daemon owns it
    >>> ...
    >>> lock.release()

    The sidecar file is created if missing and never deleted (deleting a
    locked-on file is a classic flock race); its content is the owning
    PID, purely as a debugging breadcrumb.
    """

    def __init__(self, path: str, purpose: str = "file"):
        self.path = os.path.abspath(path)
        self.purpose = purpose
        self._handle: Optional[IO[Any]] = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> "FileLock":
        if self._handle is not None:
            return self
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        handle = open(self.path, "a+")
        try:
            lock_handle(handle, self.path, purpose=self.purpose)
        except FileLockedError:
            handle.close()
            raise
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(str(os.getpid()))
            handle.flush()
        except OSError:  # breadcrumb only; the lock itself is what matters
            pass
        self._handle = handle
        return self

    def release(self) -> None:
        if self._handle is None:
            return
        try:
            unlock_handle(self._handle)
        finally:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()
