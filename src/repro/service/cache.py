"""Bounded LRU result cache with hit/miss/eviction accounting.

The batch engine content-addresses every analysis request
(:func:`repro.service.requests.request_key`) and answers repeats from this
cache.  The cache is thread-safe (the engine's thread pool shares one
instance) and persistence-friendly: :meth:`LRUCache.items` /
:meth:`LRUCache.load` round-trip the entries in LRU order so a warm cache
can be saved to and restored from a JSON file between CLI invocations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters.

    ``hits``/``misses`` count lookups (a duplicated request in one batch
    counts once per occurrence); ``evictions`` counts entries dropped by the
    LRU bound.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded least-recently-used mapping with stats counters.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts or
    refreshes and evicts the least-recently-used entry past ``maxsize``.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing recency and counting hit/miss."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up without touching recency or counters (for tests/tools)."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def keys(self) -> List[Hashable]:
        """Keys in LRU order (least recent first)."""
        with self._lock:
            return list(self._entries.keys())

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Entries in LRU order, for persistence."""
        with self._lock:
            return list(self._entries.items())

    def load(self, pairs: Iterable[Tuple[Hashable, Any]]) -> int:
        """Warm the cache from ``(key, value)`` pairs; returns count loaded."""
        loaded = 0
        with self._lock:
            for key, value in pairs:
                self.put(key, value)
                loaded += 1
        return loaded

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )
