"""Batch outcome reporting: deterministic results + metered summary.

A :class:`BatchReport` separates the two audiences of a batch run:

* the **result stream** (:meth:`BatchReport.result_records` /
  :meth:`BatchReport.to_jsonl`) is pure data in input order -- no timings,
  no cache flags -- so identical request files produce byte-identical
  output regardless of ``--jobs`` or cache temperature;
* the **summary** (:meth:`BatchReport.render_text` /
  :meth:`BatchReport.summary_dict`) carries the metering: wall time,
  per-request latency, cache hit/miss/eviction counters, dedup and error
  counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .cache import CacheStats
from .metrics import LatencyReservoir


@dataclass(frozen=True)
class BatchEntry:
    """One request's outcome inside a batch."""

    index: int
    key: Optional[str]
    kind: Optional[str]
    ok: bool
    cached: bool
    seconds: float
    record: Dict[str, Any]
    #: Answered from a write-ahead journal left by an interrupted run.
    replayed: bool = False

    def result_record(self) -> Dict[str, Any]:
        """The deterministic output form (input order, data only)."""
        out: Dict[str, Any] = {
            "index": self.index,
            "key": self.key,
            "kind": self.kind,
            "ok": self.ok,
        }
        if self.ok:
            out["result"] = self.record.get("result")
        else:
            out["error"] = self.record.get("error")
        return out


@dataclass(frozen=True)
class BatchReport:
    """Results plus metering for one engine batch."""

    entries: List[BatchEntry]
    cache: CacheStats
    jobs: int
    executor: str
    wall_seconds: float
    computed: int
    deduplicated: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-batch resilience counters (retries, timeouts, breaker trips...).
    resilience: Dict[str, int] = field(default_factory=dict)
    #: Executor degradation events, e.g. {"from": "process", "to":
    #: "thread", "reason": "BrokenProcessPool"} -- empty on a clean run.
    degradations: List[Dict[str, str]] = field(default_factory=list)
    #: Requests answered by replaying a resume journal (0 on fresh runs).
    replayed: int = 0
    #: Journal bookkeeping (path, completions, recovery drops) when the
    #: batch ran with a write-ahead journal; ``None`` otherwise.
    journal: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return len(self.entries)

    @property
    def errors(self) -> int:
        return sum(1 for entry in self.entries if not entry.ok)

    @property
    def cached_answers(self) -> int:
        return sum(1 for entry in self.entries if entry.cached)

    def result_records(self) -> List[Dict[str, Any]]:
        return [entry.result_record() for entry in self.entries]

    # ------------------------------------------------------------------
    # Certification surfacing
    # ------------------------------------------------------------------
    @staticmethod
    def _certifications(record: Dict[str, Any]) -> List[Dict[str, Any]]:
        """All certificate dicts embedded in one result record.

        Intra results carry one ``certification`` dict; fusion results
        carry a mapping of them (one per unfused operator plus the fused
        winner).
        """

        result = record.get("result")
        if not isinstance(result, dict):
            return []
        certification = result.get("certification")
        if certification is None:
            return []
        if "checks" in certification:
            return [certification]
        return [
            value
            for value in certification.values()
            if isinstance(value, dict) and "checks" in value
        ]

    @property
    def certified(self) -> int:
        """Entries whose result carries at least one passing certificate."""
        count = 0
        for entry in self.entries:
            if not entry.ok:
                continue
            certifications = self._certifications(entry.record)
            if certifications and all(c.get("ok") for c in certifications):
                count += 1
        return count

    def discrepancies(self) -> List[Dict[str, Any]]:
        """All discrepancy reports recorded by healed certificates."""
        found: List[Dict[str, Any]] = []
        for entry in self.entries:
            if not entry.ok:
                continue
            for certification in self._certifications(entry.record):
                discrepancy = certification.get("discrepancy")
                if discrepancy:
                    found.append(discrepancy)
        return found

    def to_jsonl(self) -> str:
        """One sorted-key JSON object per request, in input order."""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.result_records()
        )

    # ------------------------------------------------------------------
    def latency_summary(self) -> Dict[str, Any]:
        """p50/p95/p99 of computed-request latencies (bounded reservoir).

        Cached and replayed answers are excluded -- their ``seconds`` is
        0.0 bookkeeping, not a measured evaluation -- so the percentiles
        describe what computing a request actually cost.
        """

        reservoir = LatencyReservoir()
        reservoir.extend(
            entry.seconds
            for entry in self.entries
            if not entry.cached and not entry.replayed and entry.key is not None
        )
        return reservoir.summary()

    def summary_dict(self) -> Dict[str, Any]:
        kinds: Dict[str, int] = {}
        for entry in self.entries:
            name = entry.kind or "invalid"
            kinds[name] = kinds.get(name, 0) + 1
        seconds = [entry.seconds for entry in self.entries if not entry.cached]
        return {
            "requests": self.requests,
            "errors": self.errors,
            "certified": self.certified,
            "discrepancies": len(self.discrepancies()),
            "computed": self.computed,
            "cached_answers": self.cached_answers,
            "deduplicated": self.deduplicated,
            "replayed": self.replayed,
            "journal": dict(self.journal) if self.journal else None,
            "jobs": self.jobs,
            "executor": self.executor,
            "wall_seconds": round(self.wall_seconds, 6),
            "max_request_seconds": round(max(seconds), 6) if seconds else 0.0,
            "latency": self.latency_summary(),
            "kinds": dict(sorted(kinds.items())),
            "cache": self.cache.as_dict(),
            "counters": dict(sorted(self.counters.items())),
            "resilience": dict(sorted(self.resilience.items())),
            "degradations": list(self.degradations),
        }

    def to_json(self) -> str:
        return json.dumps(self.summary_dict(), sort_keys=True, indent=2)

    def render_text(self) -> str:
        """Human-readable metering summary."""
        summary = self.summary_dict()
        cache = summary["cache"]
        lines = [
            "batch summary",
            "-------------",
            f"requests      : {summary['requests']}"
            f" ({', '.join(f'{k}={v}' for k, v in summary['kinds'].items())})",
            f"errors        : {summary['errors']}",
            f"computed      : {summary['computed']}"
            f" (deduplicated {summary['deduplicated']},"
            f" cached {summary['cached_answers']})",
            f"pool          : jobs={summary['jobs']}"
            f" executor={summary['executor']}",
            f"wall time     : {summary['wall_seconds']:.3f}s"
            f" (slowest request {summary['max_request_seconds']:.3f}s)",
        ]
        latency = summary["latency"]
        if latency["count"]:
            lines.append(
                f"latency       : p50={latency['p50']:.3f}s"
                f" p95={latency['p95']:.3f}s p99={latency['p99']:.3f}s"
                f" (computed n={latency['count']})"
            )
        lines += [
            f"cache         : hits={cache['hits']} misses={cache['misses']}"
            f" evictions={cache['evictions']}"
            f" size={cache['size']}/{cache['maxsize']}"
            f" hit_rate={cache['hit_rate']:.1%}",
        ]
        if summary["certified"] or summary["discrepancies"]:
            lines.append(
                f"certification : certified={summary['certified']}"
                f" discrepancies={summary['discrepancies']}"
            )
        journal = summary["journal"]
        if journal:
            lines.append(
                f"journal       : replayed={summary['replayed']}"
                f" journaled={journal['appended']}"
                f" checkpointed={journal['completed']}"
                + (
                    f" recovered_drops={journal['recovered_drops']}"
                    if journal.get("recovered_drops")
                    else ""
                )
            )
        resilience = summary["resilience"]
        if any(resilience.values()) or summary["degradations"]:
            lines.append(
                "resilience    : "
                + " ".join(f"{k}={v}" for k, v in resilience.items())
            )
        for event in summary["degradations"]:
            lines.append(
                f"degraded      : {event['from']} -> {event['to']}"
                f" ({event['reason']})"
            )
        return "\n".join(lines)
