"""Batch analysis engine: parallel, cached, metered evaluation service.

The serving substrate over the analysis layers below it: structured
requests (:mod:`~repro.service.requests`) are content-addressed, answered
from a bounded LRU result cache (:mod:`~repro.service.cache`), fanned out
across a thread/process pool with deterministic ordering and per-request
error capture (:mod:`~repro.service.engine` / :mod:`~repro.service.workers`),
and metered end to end (:mod:`~repro.service.metrics`,
:mod:`~repro.service.report`).  A resilience layer
(:mod:`~repro.service.errors`, :mod:`~repro.service.resilience`) adds a
transient/permanent error taxonomy, bounded retries with deterministic
backoff, per-request deadlines, a per-kind circuit breaker, and graceful
process -> thread -> serial degradation on pool breakage; the
deterministic fault-injection harness (:mod:`~repro.service.faults`)
proves every one of those paths end to end.  A durable-execution layer
(:mod:`~repro.service.journal`, :mod:`~repro.service.shutdown`) makes
batches survive *process death*: completions are checkpointed to a
fsync'd write-ahead journal, resumed runs replay them into a
byte-identical result stream, and SIGINT/SIGTERM drain gracefully into
a resumable state.
:mod:`~repro.service.intra_cache` shares
intra-operator optima process-wide so sweeps and DSE baselines stop
recomputing identical (dims, buffer) problems.

Quick start::

    from repro.service import BatchEngine, EngineConfig, intra_request

    engine = BatchEngine(EngineConfig(jobs=4))
    report = engine.run_batch(
        [intra_request(1024, 768, 768, buffer_elems=64 << 10)]
    )
    print(report.render_text())
"""

from .cache import CacheStats, LRUCache
from .engine import (
    CACHE_SCHEMA_VERSION,
    EXECUTORS,
    START_METHODS,
    BatchEngine,
    BatchInterrupted,
    EngineConfig,
)
from .errors import (
    PERMANENT,
    TRANSIENT,
    BatchAbortError,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExceededError,
    InjectedFaultError,
    PermanentError,
    PoolBrokenError,
    ServiceError,
    TransientError,
    WorkerCrashError,
    classify_error_name,
    classify_exception,
    error_record,
    record_category,
)
from .faults import (
    FAULTS_ENV,
    FAULTS_GUARD_ENV,
    FaultClause,
    FaultPlan,
    FaultSpecError,
    active_fault_plan,
    injected_faults,
    parse_fault_spec,
    reset_fault_state,
    set_fault_plan,
)
from .journal import (
    COMPACT_STEPS,
    FSCK_CLEAN,
    FSCK_FATAL,
    FSCK_PROBLEMS,
    JOURNAL_FORMAT,
    JOURNAL_SCHEMA_VERSION,
    BatchJournal,
    JournalError,
    JournalExistsError,
    JournalLockedError,
    JournalVersionError,
    fsck_file,
    read_journal_completions,
    record_crc,
    scan_journal,
)
from .locking import (
    LOCKING_SUPPORTED,
    FileLock,
    FileLockedError,
    lock_handle,
    unlock_handle,
)
from .shutdown import RESUMABLE_EXIT_CODE, ShutdownRequested, shutdown_guard
from .intra_cache import (
    DEFAULT_FUSED_CACHE_SIZE,
    DEFAULT_INTRA_CACHE_SIZE,
    cached_optimize_fused,
    cached_optimize_intra,
    clear_fused_cache,
    clear_intra_cache,
    configure_intra_cache,
    fused_cache_stats,
    intra_cache_stats,
    operator_signature,
)
from .metrics import CounterRegistry, LatencyReservoir, Stopwatch
from .report import BatchEntry, BatchReport
from .requests import (
    PARANOID_KINDS,
    REQUEST_KINDS,
    AnalysisRequest,
    RequestError,
    apply_paranoid,
    dag_plan_request,
    fusion_request,
    graph_plan_request,
    intra_request,
    parse_request,
    platform_compare_request,
    request_key,
    sweep_point_request,
)
from .resilience import CircuitBreaker, Deadline, RetryPolicy
from .workers import execute_request, result_digest, run_payload

__all__ = [
    "AnalysisRequest",
    "BatchAbortError",
    "BatchEngine",
    "BatchEntry",
    "BatchInterrupted",
    "BatchJournal",
    "BatchReport",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "CircuitBreaker",
    "COMPACT_STEPS",
    "CircuitOpenError",
    "CorruptResultError",
    "CounterRegistry",
    "DEFAULT_FUSED_CACHE_SIZE",
    "DEFAULT_INTRA_CACHE_SIZE",
    "Deadline",
    "DeadlineExceededError",
    "EngineConfig",
    "EXECUTORS",
    "FAULTS_ENV",
    "FAULTS_GUARD_ENV",
    "FSCK_CLEAN",
    "FSCK_FATAL",
    "FSCK_PROBLEMS",
    "FaultClause",
    "FaultPlan",
    "FaultSpecError",
    "FileLock",
    "FileLockedError",
    "InjectedFaultError",
    "JOURNAL_FORMAT",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalExistsError",
    "JournalLockedError",
    "JournalVersionError",
    "LOCKING_SUPPORTED",
    "LRUCache",
    "LatencyReservoir",
    "PARANOID_KINDS",
    "PERMANENT",
    "PermanentError",
    "PoolBrokenError",
    "REQUEST_KINDS",
    "RESUMABLE_EXIT_CODE",
    "RequestError",
    "RetryPolicy",
    "START_METHODS",
    "ServiceError",
    "ShutdownRequested",
    "Stopwatch",
    "TRANSIENT",
    "TransientError",
    "WorkerCrashError",
    "active_fault_plan",
    "apply_paranoid",
    "cached_optimize_fused",
    "cached_optimize_intra",
    "classify_error_name",
    "classify_exception",
    "clear_fused_cache",
    "clear_intra_cache",
    "configure_intra_cache",
    "dag_plan_request",
    "error_record",
    "execute_request",
    "fsck_file",
    "fused_cache_stats",
    "fusion_request",
    "graph_plan_request",
    "injected_faults",
    "intra_cache_stats",
    "intra_request",
    "lock_handle",
    "operator_signature",
    "parse_fault_spec",
    "parse_request",
    "platform_compare_request",
    "read_journal_completions",
    "record_category",
    "record_crc",
    "request_key",
    "scan_journal",
    "reset_fault_state",
    "result_digest",
    "run_payload",
    "set_fault_plan",
    "shutdown_guard",
    "sweep_point_request",
    "unlock_handle",
]
