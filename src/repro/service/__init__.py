"""Batch analysis engine: parallel, cached, metered evaluation service.

The serving substrate over the analysis layers below it: structured
requests (:mod:`~repro.service.requests`) are content-addressed, answered
from a bounded LRU result cache (:mod:`~repro.service.cache`), fanned out
across a thread/process pool with deterministic ordering and per-request
error capture (:mod:`~repro.service.engine` / :mod:`~repro.service.workers`),
and metered end to end (:mod:`~repro.service.metrics`,
:mod:`~repro.service.report`).  :mod:`~repro.service.intra_cache` shares
intra-operator optima process-wide so sweeps and DSE baselines stop
recomputing identical (dims, buffer) problems.

Quick start::

    from repro.service import BatchEngine, EngineConfig, intra_request

    engine = BatchEngine(EngineConfig(jobs=4))
    report = engine.run_batch(
        [intra_request(1024, 768, 768, buffer_elems=64 << 10)]
    )
    print(report.render_text())
"""

from .cache import CacheStats, LRUCache
from .engine import EXECUTORS, BatchEngine, EngineConfig
from .intra_cache import (
    DEFAULT_INTRA_CACHE_SIZE,
    cached_optimize_intra,
    clear_intra_cache,
    configure_intra_cache,
    intra_cache_stats,
    operator_signature,
)
from .metrics import CounterRegistry, Stopwatch
from .report import BatchEntry, BatchReport
from .requests import (
    REQUEST_KINDS,
    AnalysisRequest,
    RequestError,
    fusion_request,
    graph_plan_request,
    intra_request,
    parse_request,
    platform_compare_request,
    request_key,
    sweep_point_request,
)
from .workers import execute_request, run_payload

__all__ = [
    "AnalysisRequest",
    "BatchEngine",
    "BatchEntry",
    "BatchReport",
    "CacheStats",
    "CounterRegistry",
    "DEFAULT_INTRA_CACHE_SIZE",
    "EngineConfig",
    "EXECUTORS",
    "LRUCache",
    "REQUEST_KINDS",
    "RequestError",
    "Stopwatch",
    "cached_optimize_intra",
    "clear_intra_cache",
    "configure_intra_cache",
    "execute_request",
    "fusion_request",
    "graph_plan_request",
    "intra_cache_stats",
    "intra_request",
    "operator_signature",
    "parse_request",
    "platform_compare_request",
    "request_key",
    "run_payload",
    "sweep_point_request",
]
