"""The batch analysis engine: cache + pool + metering.

:class:`BatchEngine` turns a stream of analysis requests into a
:class:`~repro.service.report.BatchReport`:

1. **Canonicalize** every request (:mod:`repro.service.requests`); malformed
   requests become structured error entries without touching the pool.
2. **Dedup + cache**: each distinct content-addressed key is looked up once
   per batch in the bounded LRU result cache; repeats inside the batch are
   answered from the first computation.
3. **Fan out** the remaining unique requests across a
   ``concurrent.futures`` thread or process pool (``pool.map`` keeps result
   order deterministic); each worker captures its own failures, so one
   poisoned request never kills the batch.
4. **Meter** everything: per-request monotonic timings, batch wall time,
   cache hit/miss/eviction deltas, dedup and error counts.

Results are pure data in input order, so batch output is byte-identical
across ``jobs`` settings and cache temperatures.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .cache import CacheStats, LRUCache
from .metrics import CounterRegistry, Stopwatch
from .report import BatchEntry, BatchReport
from .requests import AnalysisRequest, RequestError, parse_request, request_key
from .workers import run_payload

#: Executor kinds accepted by :class:`EngineConfig`.
EXECUTORS = ("thread", "process")

RequestLike = Union[AnalysisRequest, Mapping[str, Any]]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs."""

    jobs: int = 1
    cache_size: int = 4096
    executor: str = "thread"

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        if self.cache_size <= 0:
            raise ValueError("cache_size must be positive")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}"
            )


class BatchEngine:
    """Parallel, cached, metered evaluation of analysis requests."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.cache = LRUCache(self.config.cache_size)
        self.counters = CounterRegistry()

    # ------------------------------------------------------------------
    # Single-request convenience
    # ------------------------------------------------------------------
    def evaluate(self, request: RequestLike) -> Dict[str, Any]:
        """Evaluate one request through the cache; returns its result record."""
        return self.run_batch([request]).entries[0].result_record()

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def run_batch(self, requests: Sequence[RequestLike]) -> BatchReport:
        """Evaluate a batch, preserving input order in the results."""
        watch = Stopwatch()
        stats_before = self.cache.stats()
        self.counters.increment("batches")

        entries: List[Optional[BatchEntry]] = [None] * len(requests)
        # First-occurrence order of keys that need computation.
        pending_order: List[str] = []
        pending_payloads: Dict[str, Dict[str, Any]] = {}
        pending_indices: Dict[str, List[int]] = {}
        seen_records: Dict[str, Dict[str, Any]] = {}
        deduplicated = 0

        for index, raw in enumerate(requests):
            self.counters.increment("requests")
            try:
                request = (
                    raw if isinstance(raw, AnalysisRequest) else parse_request(raw)
                )
            except RequestError as exc:
                self.counters.increment("errors")
                entries[index] = BatchEntry(
                    index=index,
                    key=None,
                    kind=raw.get("kind") if isinstance(raw, Mapping) else None,
                    ok=False,
                    cached=False,
                    seconds=0.0,
                    record={
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                        }
                    },
                )
                continue
            key = request_key(request)
            if key in seen_records:
                # Duplicate of an earlier cache hit in this batch; the
                # lookup counts as a hit, as it would when run serially.
                self.counters.increment("deduplicated")
                deduplicated += 1
                record = self.cache.get(key)
                if record is None:  # unreachable: no puts during this pass
                    record = seen_records[key]
                entries[index] = self._entry_from_record(
                    index, key, record, cached=True, seconds=0.0
                )
                continue
            if key in pending_payloads:
                # Duplicate of a not-yet-computed request: share the compute.
                self.counters.increment("deduplicated")
                deduplicated += 1
                pending_indices[key].append(index)
                continue
            hit = self.cache.get(key)
            if hit is not None:
                seen_records[key] = hit
                entries[index] = self._entry_from_record(
                    index, key, hit, cached=True, seconds=0.0
                )
                continue
            pending_order.append(key)
            pending_payloads[key] = request.canonical_payload()
            pending_indices[key] = [index]

        records = self._compute(
            [pending_payloads[key] for key in pending_order]
        )
        for key, record in zip(pending_order, records):
            seconds = float(record.pop("seconds", 0.0))
            self.counters.increment("computed")
            if not record.get("ok"):
                self.counters.increment("errors")
            # Cache errors too: every request kind is a pure function, so
            # "unknown model" and "infeasible buffer" are as deterministic
            # as any optimum and equally worth answering from the cache.
            self.cache.put(key, record)
            first, *rest = pending_indices[key]
            entries[first] = self._entry_from_record(
                first, key, record, cached=False, seconds=seconds
            )
            for index in rest:
                # Count the duplicate's lookup as the hit it would have
                # been in serial execution (the entry is cached by now).
                self.cache.get(key)
                entries[index] = self._entry_from_record(
                    index, key, record, cached=True, seconds=0.0
                )

        stats_after = self.cache.stats()
        final = [entry for entry in entries if entry is not None]
        assert len(final) == len(requests)
        return BatchReport(
            entries=final,
            cache=CacheStats(
                hits=stats_after.hits - stats_before.hits,
                misses=stats_after.misses - stats_before.misses,
                evictions=stats_after.evictions - stats_before.evictions,
                size=stats_after.size,
                maxsize=stats_after.maxsize,
            ),
            jobs=self.config.jobs,
            executor=self.config.executor,
            wall_seconds=watch.stop(),
            computed=len(pending_order),
            deduplicated=deduplicated,
            counters=self.counters.as_dict(),
        )

    @staticmethod
    def _entry_from_record(
        index: int,
        key: str,
        record: Dict[str, Any],
        cached: bool,
        seconds: float,
    ) -> BatchEntry:
        return BatchEntry(
            index=index,
            key=key,
            kind=record.get("kind"),
            ok=bool(record.get("ok")),
            cached=cached,
            seconds=seconds,
            record=record,
        )

    def _compute(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Run unique payloads through the pool in deterministic order."""
        if not payloads:
            return []
        jobs = min(self.config.jobs, len(payloads))
        if jobs <= 1:
            return [run_payload(payload) for payload in payloads]
        pool_cls = (
            ProcessPoolExecutor
            if self.config.executor == "process"
            else ThreadPoolExecutor
        )
        try:
            with pool_cls(max_workers=jobs) as pool:
                return list(pool.map(run_payload, payloads))
        except Exception:  # pool infrastructure failure (not request errors)
            self.counters.increment("pool_failures")
            return [run_payload(payload) for payload in payloads]

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def save_cache(self, path: str) -> int:
        """Write the cache to a JSON file (LRU order); returns entry count."""
        items: List[Tuple[str, Dict[str, Any]]] = [
            (key, value) for key, value in self.cache.items()
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "entries": items}, handle)
        return len(items)

    def load_cache(self, path: str) -> int:
        """Warm the cache from a JSON file; returns entries loaded."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"malformed cache file {path!r}")
        entries = payload["entries"]
        if not isinstance(entries, list):
            raise ValueError(f"malformed cache file {path!r}")
        return self.cache.load(
            (str(key), value) for key, value in entries
        )
