"""The batch analysis engine: cache + pool + metering + resilience.

:class:`BatchEngine` turns a stream of analysis requests into a
:class:`~repro.service.report.BatchReport`:

1. **Canonicalize** every request (:mod:`repro.service.requests`); malformed
   requests become structured error entries without touching the pool.
2. **Dedup + cache**: each distinct content-addressed key is looked up once
   per batch in the bounded LRU result cache; repeats inside the batch are
   answered from the first computation.
3. **Fan out** the remaining unique requests across a
   ``concurrent.futures`` thread or process pool, collecting results in
   submission order so output stays deterministic; each worker captures
   its own failures, so one poisoned request never kills the batch.
4. **Survive** infrastructure failure: transient errors are retried under
   a :class:`~repro.service.resilience.RetryPolicy`, per-request deadlines
   are enforced preemptively for process pools (timed-out workers are
   terminated and the pool respawned) and cooperatively for threads, a
   broken pool degrades the batch process -> thread -> serial instead of
   aborting it, and a per-kind circuit breaker converts hopeless request
   kinds into fast structured errors.
5. **Meter** everything: per-request monotonic timings, batch wall time,
   cache hit/miss/eviction deltas, dedup/error counts, and resilience
   counters (retries, timeouts, degradations, breaker trips).

Results are pure data in input order, so batch output is byte-identical
across ``jobs`` settings and cache temperatures; all resilience bookkeeping
lives in the report summary, never in the result stream.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .cache import CacheStats, LRUCache
from .errors import PERMANENT, TRANSIENT, record_category
from .faults import active_fault_plan
from .journal import BatchJournal
from .metrics import CounterRegistry, Stopwatch
from .report import BatchEntry, BatchReport
from .requests import (
    AnalysisRequest,
    RequestError,
    apply_paranoid,
    parse_request,
    request_key,
)
from .resilience import CircuitBreaker, RetryPolicy
from .workers import result_digest, run_payload

#: Executor kinds accepted by :class:`EngineConfig`.
EXECUTORS = ("thread", "process")

#: Multiprocessing start methods accepted by :class:`EngineConfig`.
START_METHODS = ("fork", "spawn", "forkserver")

#: Schema version written to persisted cache files.  Bump on any format
#: change; :meth:`BatchEngine.load_cache` refuses unknown versions loudly
#: instead of silently misloading.
CACHE_SCHEMA_VERSION = 2
_COMPATIBLE_CACHE_VERSIONS = (1, 2)

#: Grace added to the preemptive ``future.result`` timeout beyond the
#: cooperative deadline, so a well-behaved worker reports its own clean
#: deadline record before the engine resorts to killing it.
_DEADLINE_GRACE = 0.25

#: Ceiling on a single ``future.result`` wait when a stop event is being
#: watched, so a SIGINT is noticed within a fraction of a second even
#: while a worker grinds on.
_INTERRUPT_POLL = 0.2

RequestLike = Union[AnalysisRequest, Mapping[str, Any]]


class _PoolDegraded(Exception):
    """Internal signal: the current pool mode broke; fall back."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _BatchInterrupted(Exception):
    """Internal signal: the stop event fired; unwind and drain."""


class BatchInterrupted(RuntimeError):
    """A batch stopped early on a graceful shutdown request.

    Raised by :meth:`BatchEngine.run_batch` when its ``stop_event`` fires
    mid-batch.  Every completion that landed before (or finished during
    the drain) is in the journal, so re-running the same batch with the
    same journal recomputes only what is missing.
    """

    def __init__(
        self,
        total_requests: int,
        replayed: int,
        journaled: int,
        completed_keys: int,
        signal_name: Optional[str] = None,
    ):
        self.total_requests = total_requests
        #: Requests answered from the journal before the interrupt.
        self.replayed = replayed
        #: Completions journaled by this run.
        self.journaled = journaled
        #: Total durable completions now in the journal (0 if none).
        self.completed_keys = completed_keys
        self.signal_name = signal_name
        source = f" on {signal_name}" if signal_name else ""
        super().__init__(
            f"batch interrupted{source}: {journaled} completion(s) "
            f"journaled this run, {completed_keys} total checkpointed "
            f"of {total_requests} request(s); rerun with the same "
            "journal to resume"
        )


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs.

    The resilience defaults are all "off" (one attempt, no deadline, no
    breaker), so a default-configured engine behaves exactly like the
    pre-resilience engine; ``fallback`` alone defaults on, because
    finishing a batch serially always beats losing it.
    """

    jobs: int = 1
    cache_size: int = 4096
    executor: str = "thread"
    #: Total attempts per request (1 = no retries of transient failures).
    max_attempts: int = 1
    #: First backoff delay in seconds (0 = immediate retries).
    retry_base_delay: float = 0.0
    #: Backoff cap in seconds.
    retry_max_delay: float = 2.0
    #: Deterministic jitter fraction on top of exponential backoff.
    retry_jitter: float = 0.5
    #: Per-request deadline in seconds (None = unlimited).
    deadline_seconds: Optional[float] = None
    #: Consecutive permanent failures per kind before the circuit opens
    #: (0 = breaker disabled).
    breaker_threshold: int = 0
    #: Degrade process -> thread -> serial on pool breakage instead of
    #: synthesizing pool-broken error records.
    fallback: bool = True
    #: Multiprocessing start method for the process executor (None =
    #: platform default; "spawn" matches the py3.12+/macOS CI default).
    start_method: Optional[str] = None
    #: Stalled-batch watchdog: if no request completes for this many
    #: seconds while a pool has work in flight, the engine declares a
    #: stall -- journal heartbeat, ``stalls`` counter, and (for process
    #: pools) a worker respawn, the same escalation path as a preempted
    #: deadline.  ``None`` disables the watchdog.
    stall_timeout_seconds: Optional[float] = None
    #: Rewrite every certification-capable request (intra/fusion) to run
    #: under paranoid certification: results are independently audited and
    #: cross-checked against a budgeted branch-and-bound probe, with the
    #: self-healing fallback on discrepancy.  Changes request keys (a
    #: paranoid result record carries a certificate an ordinary one lacks).
    paranoid: bool = False

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        if self.cache_size <= 0:
            raise ValueError("cache_size must be positive")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")
        if (
            self.stall_timeout_seconds is not None
            and self.stall_timeout_seconds <= 0
        ):
            raise ValueError("stall_timeout_seconds must be positive")
        if self.start_method is not None and (
            self.start_method not in START_METHODS
        ):
            raise ValueError(
                f"unknown start_method {self.start_method!r}; "
                f"choose from {START_METHODS}"
            )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
        )


class BatchEngine:
    """Parallel, cached, metered, fault-tolerant evaluation of requests."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.config = config or EngineConfig()
        self.cache = LRUCache(self.config.cache_size)
        self.counters = CounterRegistry()
        self.retry_policy = retry_policy or self.config.retry_policy()
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        #: Monotonic timestamp of the latest in-flight completion,
        #: updated by future done-callbacks; the stall watchdog's clock.
        self._progress_at = time.monotonic()
        #: Completions finished by the current run_batch (the
        #: crash-after-n fault's counter).
        self._completions = 0

    # ------------------------------------------------------------------
    # Single-request convenience
    # ------------------------------------------------------------------
    def evaluate(self, request: RequestLike) -> Dict[str, Any]:
        """Evaluate one request through the cache; returns its result record."""
        return self.run_batch([request]).entries[0].result_record()

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def run_batch(
        self,
        requests: Sequence[RequestLike],
        journal: Optional[BatchJournal] = None,
        stop_event: Optional[Any] = None,
    ) -> BatchReport:
        """Evaluate a batch, preserving input order in the results.

        ``journal`` makes the batch crash-safe: keys the journal already
        holds are *replayed* into the result stream (in input order, so
        output stays byte-identical to an uninterrupted run) and every
        new durable completion is fsync'd to the journal before the
        batch proceeds.  ``stop_event`` (any object with ``is_set()``,
        e.g. :class:`~repro.service.shutdown.ShutdownRequested`) requests
        a graceful stop: dispatch halts, finished in-flight work is
        drained into the journal, and :class:`BatchInterrupted` is
        raised with resume bookkeeping.
        """

        requests = list(requests)
        watch = Stopwatch()
        stats_before = self.cache.stats()
        self.counters.increment("batches")
        self._completions = 0

        entries: List[Optional[BatchEntry]] = [None] * len(requests)
        # First-occurrence order of keys that need computation.
        pending_order: List[str] = []
        pending_payloads: Dict[str, Dict[str, Any]] = {}
        pending_indices: Dict[str, List[int]] = {}
        seen_records: Dict[str, Dict[str, Any]] = {}
        deduplicated = 0
        replayed = 0

        for index, raw in enumerate(requests):
            self.counters.increment("requests")
            try:
                request = (
                    raw if isinstance(raw, AnalysisRequest) else parse_request(raw)
                )
                if self.config.paranoid:
                    request = apply_paranoid(request)
            except RequestError as exc:
                self.counters.increment("errors")
                self.breaker.record_failure(exc.kind, PERMANENT)
                entries[index] = BatchEntry(
                    index=index,
                    key=None,
                    kind=raw.get("kind") if isinstance(raw, Mapping) else None,
                    ok=False,
                    cached=False,
                    seconds=0.0,
                    record={
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                            "category": PERMANENT,
                        }
                    },
                )
                continue
            key = request_key(request)
            if key in seen_records:
                # Duplicate of an earlier cache hit in this batch; the
                # lookup counts as a hit, as it would when run serially.
                self.counters.increment("deduplicated")
                deduplicated += 1
                record = self.cache.get(key)
                if record is None:  # unreachable: no puts during this pass
                    record = seen_records[key]
                entries[index] = self._entry_from_record(
                    index, key, record, cached=True, seconds=0.0
                )
                continue
            if key in pending_payloads:
                # Duplicate of a not-yet-computed request: share the compute.
                self.counters.increment("deduplicated")
                deduplicated += 1
                pending_indices[key].append(index)
                continue
            if journal is not None and key in journal.completed:
                # Resume: this key finished in an earlier (interrupted)
                # run.  Replay the journaled record at this input
                # position -- the stream stays byte-identical to an
                # uninterrupted run -- and warm the cache with it.
                record = dict(journal.completed[key])
                record.pop("seconds", None)
                self.counters.increment("replayed")
                replayed += 1
                seen_records[key] = record
                if self._cacheable(record):
                    self.cache.put(key, record)
                entries[index] = self._entry_from_record(
                    index, key, record, cached=False, seconds=0.0,
                    replayed=True,
                )
                continue
            hit = self.cache.get(key)
            if hit is not None:
                seen_records[key] = hit
                entries[index] = self._entry_from_record(
                    index, key, hit, cached=True, seconds=0.0
                )
                continue
            pending_order.append(key)
            pending_payloads[key] = request.canonical_payload()
            pending_indices[key] = [index]

        pending = [(key, pending_payloads[key]) for key in pending_order]
        try:
            records, resilience, degradations = self._compute(
                pending, journal=journal, stop_event=stop_event
            )
        except _BatchInterrupted:
            if journal is not None:
                journal.flush()
            raise BatchInterrupted(
                total_requests=len(requests),
                replayed=replayed,
                journaled=journal.appended if journal is not None else 0,
                completed_keys=(
                    len(journal.completed) if journal is not None else 0
                ),
                signal_name=getattr(stop_event, "signal_name", None),
            ) from None
        for key, record in zip(pending_order, records):
            seconds = float(record.pop("seconds", 0.0))
            self.counters.increment("computed")
            if not record.get("ok"):
                self.counters.increment("errors")
            if self._cacheable(record):
                # Permanent errors are cached alongside successes: every
                # request kind is a pure function, so "unknown model" and
                # "infeasible buffer" are as deterministic as any optimum.
                # Transient errors (timeouts, crashes, open circuits) are
                # infrastructure outcomes, not answers -- never cached.
                self.cache.put(key, record)
            first, *rest = pending_indices[key]
            entries[first] = self._entry_from_record(
                first, key, record, cached=False, seconds=seconds
            )
            for index in rest:
                # Count the duplicate's lookup as the hit it would have
                # been in serial execution (the entry is cached by now).
                self.cache.get(key)
                entries[index] = self._entry_from_record(
                    index, key, record, cached=True, seconds=0.0
                )

        self.counters.merge(resilience)
        if journal is not None:
            # End-of-batch is the natural compaction point: the journal
            # is quiescent and every duplicate/superseded line written
            # this run is reclaimable.  No-op unless thresholds are
            # armed and exceeded.
            journal.maybe_compact()
        stats_after = self.cache.stats()
        final = [entry for entry in entries if entry is not None]
        assert len(final) == len(requests)
        return BatchReport(
            entries=final,
            cache=CacheStats(
                hits=stats_after.hits - stats_before.hits,
                misses=stats_after.misses - stats_before.misses,
                evictions=stats_after.evictions - stats_before.evictions,
                size=stats_after.size,
                maxsize=stats_after.maxsize,
            ),
            jobs=self.config.jobs,
            executor=self.config.executor,
            wall_seconds=watch.stop(),
            computed=len(pending_order),
            deduplicated=deduplicated,
            counters=self.counters.as_dict(),
            resilience=resilience,
            degradations=degradations,
            replayed=replayed,
            journal=journal.stats() if journal is not None else None,
        )

    @staticmethod
    def _entry_from_record(
        index: int,
        key: str,
        record: Dict[str, Any],
        cached: bool,
        seconds: float,
        replayed: bool = False,
    ) -> BatchEntry:
        return BatchEntry(
            index=index,
            key=key,
            kind=record.get("kind"),
            ok=bool(record.get("ok")),
            cached=cached,
            seconds=seconds,
            record=record,
            replayed=replayed,
        )

    @staticmethod
    def _cacheable(record: Dict[str, Any]) -> bool:
        if record.get("ok"):
            return True
        error = record.get("error") or {}
        if error.get("type") == "CircuitOpenError":
            return False
        return record_category(record) == PERMANENT

    # ------------------------------------------------------------------
    # Resilient computation
    # ------------------------------------------------------------------
    def _compute(
        self,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        journal: Optional[BatchJournal] = None,
        stop_event: Optional[Any] = None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, int], List[Dict[str, str]]]:
        """Run unique (key, payload) pairs to final records, in order.

        Returns ``(records, resilience_counters, degradation_events)``.
        ``records`` is aligned with ``pending``; every pair gets a final
        record no matter what breaks underneath -- unless the stop event
        fires, in which case :class:`_BatchInterrupted` unwinds with
        whatever completed already journaled.
        """

        resilience = CounterRegistry()
        events: List[Dict[str, str]] = []
        if not pending:
            return [], resilience.as_dict(), events
        if stop_event is not None and stop_event.is_set():
            raise _BatchInterrupted()

        records: Dict[int, Dict[str, Any]] = {}
        probed: Set[str] = set()
        work: List[int] = []
        for index, (key, payload) in enumerate(pending):
            kind = payload.get("kind")
            if self._breaker_allows(kind, probed):
                work.append(index)
            else:
                resilience.increment("breaker_fastfail")
                records[index] = self._breaker_record(key, kind)

        chain = self._mode_chain(len(work))
        for position, mode in enumerate(chain):
            todo = [index for index in work if index not in records]
            if not todo:
                break
            try:
                self._compute_mode(
                    mode, pending, todo, records, resilience,
                    journal, stop_event,
                )
                break
            except _PoolDegraded as degraded:
                remaining = [i for i in todo if i not in records]
                if position + 1 < len(chain):
                    resilience.increment("degradations")
                    events.append(
                        {
                            "from": mode,
                            "to": chain[position + 1],
                            "reason": degraded.reason,
                        }
                    )
                else:
                    # Fallback disabled (or nowhere left to go): the
                    # remaining requests become structured pool errors.
                    for index in remaining:
                        key, payload = pending[index]
                        resilience.increment("pool_errors")
                        records[index] = self._infra_record(
                            key,
                            payload.get("kind"),
                            "PoolBrokenError",
                            f"executor pool broke ({degraded.reason}) and "
                            "fallback is disabled",
                        )
        return (
            [records[index] for index in range(len(pending))],
            resilience.as_dict(),
            events,
        )

    def _mode_chain(self, work_items: int) -> List[str]:
        jobs = min(self.config.jobs, max(work_items, 1))
        if jobs <= 1:
            return ["serial"]
        if not self.config.fallback:
            return [self.config.executor]
        if self.config.executor == "process":
            return ["process", "thread", "serial"]
        return ["thread", "serial"]

    def _compute_mode(
        self,
        mode: str,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        todo: Sequence[int],
        records: Dict[int, Dict[str, Any]],
        resilience: CounterRegistry,
        journal: Optional[BatchJournal],
        stop_event: Optional[Any],
    ) -> None:
        if mode == "serial":
            self._compute_serial(
                pending, todo, records, resilience, journal, stop_event
            )
        else:
            self._compute_pooled(
                mode, pending, todo, records, resilience, journal, stop_event
            )

    def _compute_serial(
        self,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        todo: Sequence[int],
        records: Dict[int, Dict[str, Any]],
        resilience: CounterRegistry,
        journal: Optional[BatchJournal],
        stop_event: Optional[Any],
    ) -> None:
        # Serial execution sees breaker trips immediately, so a kind that
        # turns hopeless mid-batch starts failing fast mid-batch.
        probed: Set[str] = set()
        deadline = self.config.deadline_seconds
        for index in todo:
            if stop_event is not None and stop_event.is_set():
                raise _BatchInterrupted()
            key, payload = pending[index]
            kind = payload.get("kind")
            if not self._breaker_allows(kind, probed):
                resilience.increment("breaker_fastfail")
                records[index] = self._breaker_record(key, kind)
                continue
            attempt = 0
            while True:
                attempt += 1
                record = self._observe(
                    run_payload(payload, deadline), resilience
                )
                category = record_category(record)
                if category is None or not self.retry_policy.should_retry(
                    category, attempt
                ):
                    break
                resilience.increment("retries")
                self.retry_policy.backoff(attempt + 1, key)
            self._finish(index, key, kind, record, records, resilience, journal)

    def _compute_pooled(
        self,
        mode: str,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        todo: Sequence[int],
        records: Dict[int, Dict[str, Any]],
        resilience: CounterRegistry,
        journal: Optional[BatchJournal],
        stop_event: Optional[Any],
    ) -> None:
        deadline = self.config.deadline_seconds
        grace = None if deadline is None else deadline + _DEADLINE_GRACE
        stall = self.config.stall_timeout_seconds
        jobs = min(self.config.jobs, len(todo))
        pool = self._make_pool(mode, jobs)
        futures: Dict[int, Future] = {}
        attempts: Dict[int, int] = {}
        interrupted = False
        self._note_progress()
        try:
            for index in todo:
                attempts[index] = 1
                futures[index] = self._submit(
                    pool, pending[index][1], deadline
                )
            for index in todo:
                key, payload = pending[index]
                kind = payload.get("kind")
                # The deadline grace window runs from when this future's
                # turn to be collected starts (matching the cooperative
                # clock its worker starts when it actually executes), and
                # resets on every resubmission.
                wait_began = time.monotonic()
                while True:
                    if stop_event is not None and stop_event.is_set():
                        raise _BatchInterrupted()
                    try:
                        record = futures[index].result(
                            timeout=self._wait_slice(
                                wait_began, grace, stall, stop_event
                            )
                        )
                    except FutureTimeoutError:
                        now = time.monotonic()
                        if grace is not None and now - wait_began >= grace:
                            resilience.increment("timeouts")
                            record = self._infra_record(
                                key,
                                kind,
                                "DeadlineExceededError",
                                f"request exceeded its {deadline:.3f}s "
                                "deadline (preempted by the engine)",
                            )
                            futures[index].cancel()
                            if mode == "process":
                                # The worker holding this request never
                                # yielded: kill the workers and respawn
                                # the pool so the rest of the batch isn't
                                # hostage.
                                resilience.increment("pool_respawns")
                                pool = self._respawn_pool(
                                    pool, jobs, pending, todo, records,
                                    futures, exclude=index,
                                )
                                self._note_progress()
                        elif (
                            stall is not None
                            and now - self._progress_at >= stall
                        ):
                            # Stalled batch: nothing has completed
                            # anywhere in the pool for a full watchdog
                            # window.  Escalate like a preempted
                            # deadline: heartbeat the journal, count it,
                            # and (process pools) respawn the workers.
                            resilience.increment("stalls")
                            if journal is not None:
                                journal.heartbeat(
                                    len(journal.completed),
                                    note=f"stall watchdog ({mode} pool)",
                                )
                            if mode == "process":
                                resilience.increment("pool_respawns")
                                pool = self._respawn_pool(
                                    pool, jobs, pending, todo, records,
                                    futures, exclude=None,
                                )
                                wait_began = time.monotonic()
                            self._note_progress()
                            continue
                        else:
                            continue  # poll wakeup; re-check and wait on
                    except BrokenExecutor as exc:
                        raise _PoolDegraded(type(exc).__name__) from exc
                    else:
                        record = self._observe(record, resilience)
                    category = record_category(record)
                    if category is None or not self.retry_policy.should_retry(
                        category, attempts[index]
                    ):
                        break
                    resilience.increment("retries")
                    attempts[index] += 1
                    self.retry_policy.backoff(attempts[index], key)
                    futures[index] = self._submit(pool, payload, deadline)
                    wait_began = time.monotonic()
                self._finish(
                    index, key, kind, record, records, resilience, journal
                )
        except _BatchInterrupted:
            # Graceful shutdown: harvest whatever already finished so it
            # reaches the journal, then stop the pool without waiting on
            # unfinished workers.
            interrupted = True
            self._drain_done(pending, todo, records, futures, resilience, journal)
            if mode == "process":
                for process in list(getattr(pool, "_processes", {}).values()):
                    try:
                        process.terminate()
                    except Exception:  # already dead
                        pass
            raise
        finally:
            # Thread pools may still hold a hung worker past its deadline,
            # and an interrupted batch must not block on in-flight work;
            # don't wait in either case.
            pool.shutdown(
                wait=(mode == "process" and not interrupted),
                cancel_futures=True,
            )

    def _wait_slice(
        self,
        wait_began: float,
        grace: Optional[float],
        stall: Optional[float],
        stop_event: Optional[Any],
    ) -> Optional[float]:
        """How long the next ``future.result`` wait may block.

        Bounded by the deadline grace remaining, the stall watchdog
        window remaining, and (when a stop event is watched) a short
        poll interval; ``None`` means wait forever.
        """

        now = time.monotonic()
        bounds: List[float] = []
        if grace is not None:
            bounds.append(wait_began + grace - now)
        if stall is not None:
            bounds.append(self._progress_at + stall - now)
        if stop_event is not None:
            bounds.append(_INTERRUPT_POLL)
        if not bounds:
            return None
        return max(min(bounds), 0.0)

    def _note_progress(self, _future: Optional[Future] = None) -> None:
        """Done-callback + engine hook feeding the stall watchdog clock."""
        self._progress_at = time.monotonic()

    def _drain_done(
        self,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        todo: Sequence[int],
        records: Dict[int, Dict[str, Any]],
        futures: Dict[int, Future],
        resilience: CounterRegistry,
        journal: Optional[BatchJournal],
    ) -> None:
        """Collect finished in-flight futures during an interrupt.

        Work a worker already finished is work the resumed run should
        not repeat: finish (and journal) every done future before the
        pool is torn down.  Unfinished and failed futures are left for
        the resume.
        """

        for index in todo:
            if index in records:
                continue
            future = futures.get(index)
            if (
                future is None
                or not future.done()
                or future.cancelled()
                or future.exception() is not None
            ):
                continue
            key, payload = pending[index]
            record = self._observe(future.result(), resilience)
            self._finish(
                index, key, payload.get("kind"), record, records,
                resilience, journal, draining=True,
            )

    def _submit(
        self,
        pool: Any,
        payload: Dict[str, Any],
        deadline: Optional[float],
    ) -> Future:
        try:
            future = pool.submit(run_payload, payload, deadline)
        except BrokenExecutor as exc:
            raise _PoolDegraded(type(exc).__name__) from exc
        except RuntimeError as exc:  # submit on a shut-down pool
            raise _PoolDegraded(type(exc).__name__) from exc
        # Completions anywhere in the pool feed the stall watchdog, even
        # while the engine is blocked collecting an earlier future.
        future.add_done_callback(self._note_progress)
        return future

    def _make_pool(self, mode: str, jobs: int) -> Any:
        if mode == "process":
            mp_context = None
            if self.config.start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(
                    self.config.start_method
                )
            try:
                return ProcessPoolExecutor(
                    max_workers=jobs, mp_context=mp_context
                )
            except Exception as exc:  # e.g. no /dev/shm, sandboxed fork
                raise _PoolDegraded(type(exc).__name__) from exc
        return ThreadPoolExecutor(max_workers=jobs)

    def _respawn_pool(
        self,
        pool: Any,
        jobs: int,
        pending: Sequence[Tuple[str, Dict[str, Any]]],
        todo: Sequence[int],
        records: Dict[int, Dict[str, Any]],
        futures: Dict[int, Future],
        exclude: Optional[int],
    ) -> Any:
        """Terminate a process pool's workers and resubmit in-flight work.

        Completed futures keep their results; everything else (except
        ``exclude``, whose retry loop handles its own resubmission --
        ``None`` for a stall respawn, which resubmits everything) is
        resubmitted to the fresh pool.
        """

        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        fresh = self._make_pool("process", jobs)
        deadline = self.config.deadline_seconds
        for index in todo:
            if index in records or index == exclude:
                continue
            future = futures.get(index)
            if (
                future is not None
                and future.done()
                and not future.cancelled()
                and future.exception() is None
            ):
                continue  # finished before the respawn; result is safe
            futures[index] = self._submit(fresh, pending[index][1], deadline)
        return fresh

    def _observe(
        self, record: Dict[str, Any], resilience: CounterRegistry
    ) -> Dict[str, Any]:
        """Verify a worker record's integrity and count notable outcomes."""
        record = self._verify_integrity(record, resilience)
        if not record.get("ok"):
            error = record.get("error") or {}
            if error.get("type") == "DeadlineExceededError":
                resilience.increment("timeouts")
        return record

    def _verify_integrity(
        self, record: Dict[str, Any], resilience: CounterRegistry
    ) -> Dict[str, Any]:
        digest = record.pop("integrity", None)
        if not record.get("ok") or digest is None:
            return record
        if digest == result_digest(record.get("result")):
            return record
        resilience.increment("corrupt_results")
        return self._infra_record(
            record.get("key"),
            record.get("kind"),
            "CorruptResultError",
            "result record failed its integrity check in transit",
            seconds=record.get("seconds", 0.0),
        )

    def _finish(
        self,
        index: int,
        key: Optional[str],
        kind: Optional[str],
        record: Dict[str, Any],
        records: Dict[int, Dict[str, Any]],
        resilience: Optional[CounterRegistry] = None,
        journal: Optional[BatchJournal] = None,
        draining: bool = False,
    ) -> None:
        category = record_category(record)
        if category is None:
            self.breaker.record_success(kind)
        else:
            self.breaker.record_failure(kind, category)
        records[index] = record
        if journal is not None and key is not None:
            # Write-ahead: the completion is durable on disk before the
            # batch counts it as done, so process death right after this
            # point loses nothing.
            if journal.record_completion(key, record) and resilience:
                resilience.increment("journaled")
        self._completions += 1
        if not draining:
            plan = active_fault_plan()
            if plan is not None:
                # The crash-after-n-completions hook: fires *after* the
                # journal write, which is exactly the recovery boundary
                # the fault exists to test.
                plan.maybe_abort(self._completions)

    def _breaker_allows(self, kind: Optional[str], probed: Set[str]) -> bool:
        """Gate a request on the breaker, letting one probe per kind by."""
        if not self.breaker.is_open(kind):
            return True
        if kind not in probed:
            probed.add(kind)
            return True
        return False

    def _breaker_record(
        self, key: Optional[str], kind: Optional[str]
    ) -> Dict[str, Any]:
        return {
            "key": key,
            "kind": kind,
            "ok": False,
            "error": {
                "type": "CircuitOpenError",
                "message": (
                    f"circuit open for kind {kind!r} after "
                    f"{self.breaker.threshold} consecutive permanent "
                    "failures; failing fast"
                ),
                "category": PERMANENT,
            },
            "seconds": 0.0,
        }

    @staticmethod
    def _infra_record(
        key: Optional[str],
        kind: Optional[str],
        error_type: str,
        message: str,
        seconds: float = 0.0,
    ) -> Dict[str, Any]:
        return {
            "key": key,
            "kind": kind,
            "ok": False,
            "error": {
                "type": error_type,
                "message": message,
                "category": TRANSIENT,
            },
            "seconds": seconds,
        }

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def save_cache(self, path: str) -> int:
        """Write the cache to a JSON file (LRU order); returns entry count.

        Crash-safe: the payload is written to a temporary file in the
        target directory, fsynced, and atomically :func:`os.replace`-d
        into place, so a crash mid-write can never leave a half-written
        cache where the next run would trip over it.
        """

        items: List[Tuple[str, Dict[str, Any]]] = [
            (key, value) for key, value in self.cache.items()
        ]
        payload = {"version": CACHE_SCHEMA_VERSION, "entries": items}
        target = os.path.abspath(path)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".",
            suffix=".tmp",
            dir=os.path.dirname(target),
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(items)

    def load_cache(self, path: str) -> int:
        """Warm the cache from a JSON file; returns entries loaded.

        Unknown schema versions fail loud (a format change must never be
        silently misread as an empty or garbled cache); corrupt files
        raise ``ValueError`` for the caller to handle.
        """

        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"malformed cache file {path!r}")
        version = payload.get("version")
        if version not in _COMPATIBLE_CACHE_VERSIONS:
            raise ValueError(
                f"cache file {path!r} has schema version {version!r}; "
                f"this build supports {_COMPATIBLE_CACHE_VERSIONS}"
            )
        entries = payload["entries"]
        if not isinstance(entries, list):
            raise ValueError(f"malformed cache file {path!r}")
        return self.cache.load(
            (str(key), value) for key, value in entries
        )
