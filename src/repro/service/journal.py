"""Write-ahead journal: crash-safe checkpointing for batch runs.

A :class:`BatchJournal` makes a batch *durable across process death*:
every completed request lands in an append-only JSON-lines file as a
fsync'd ``completion`` record before the batch moves on, so a SIGKILL,
OOM-kill, or host reboot mid-run loses at most the request currently in
flight.  On resume the journal is replayed and already-completed keys are
answered from disk -- fed back into the result stream in input order, so
a resumed batch emits output **byte-identical** to an uninterrupted run.

File format (one JSON object per line)::

    {"format": "repro-batch-journal", "version": 3, "created": <epoch>}
    {"type": "completion", "key": "<sha256>", "kind": "intra",
     "category": null, "at": <epoch>, "crc": "<crc32 hex>",
     "record": {...}}
    {"type": "heartbeat", "at": <epoch>, "completed": 17, "note": "..."}

* The **header** is written first and validated on every open.  An
  unknown ``version`` fails loud (:class:`JournalVersionError`): a format
  change must never be silently misread as an empty journal.
* **Completion** records carry the full result record plus its error
  ``category`` (``null`` for successes) and -- since format version 3 --
  a CRC32 (:func:`record_crc`) over the key and the canonical record
  serialization, so bit rot anywhere in the payload (or a record sewn
  onto the wrong key) is *detected*, never silently replayed.  Only
  *durable* outcomes are journaled -- successes and permanent errors,
  the same set the result cache accepts -- so transient infrastructure
  outcomes (timeouts, crashes, open circuits) are recomputed on resume
  rather than replayed.  Version 1/2 journals (no ``crc`` field) still
  load; their records are simply not CRC-verified until a compaction
  rewrites them at the current version.
* **Heartbeat** lines are advisory progress timestamps written by the
  engine's stalled-batch watchdog; they are flushed but not fsync'd and
  carry no result data.

Crash recovery distinguishes two failure shapes:

* A **torn tail** -- the final line has no trailing newline because the
  process died mid-``write`` -- is truncated away and the run continues;
  the torn record's request simply gets recomputed.
* **Mid-file corruption** -- an undecodable line, a non-object line, or
  (format >= 3) a completion whose CRC does not match -- is
  **quarantined**: the raw line is appended to ``<path>.quarantine``,
  counted in :attr:`BatchJournal.corrupt_quarantined`, and reading
  *continues* with the records after it.  After a recovery that
  quarantined anything, the journal is atomically rewritten clean (same
  machinery as compaction) so the damage is dealt with exactly once.
  A corrupt record is never silently served and never takes the good
  records after it down with it.

Journals are bounded by **crash-safe compaction**
(:meth:`BatchJournal.compact`): the deduped set of durable completions
is written to ``<path>.compact.tmp``, fsync'd, and atomically
``os.replace``-d over the journal -- the source file is *never*
truncated in place, so a SIGKILL at any point (see
:data:`COMPACT_STEPS`) leaves either the old or the new journal fully
valid on disk.  :meth:`BatchJournal.maybe_compact` applies the
``compact_max_records`` / ``compact_max_bytes`` thresholds armed at
construction; the serving tier triggers it after batches, after handoff
ingest, and on boot after replay.

Write failures get the same "never fail the batch" treatment: an
``OSError`` while appending (ENOSPC, EIO, a read-only remount...) does
not kill the owning process.  The journal **degrades to loud
non-durable mode** instead -- the failure is classified
(:func:`classify_write_error`), logged once at full volume, surfaced in
:meth:`BatchJournal.stats` (and from there in ``/metrics``), and all
further appends are dropped while the batch keeps computing.  Results
stay correct (they are deterministic and recomputable); only crash
*checkpointing* is lost, which is exactly what the degraded flag tells
operators to go fix.

Offline, :func:`fsck_file` powers ``repro fsck``: scan a journal (or
persisted cache file) without touching it, report per-record integrity
and dedup stats, and with ``repair=True`` quarantine bad records and
rewrite a clean journal using the exact same recovery machinery the
live reader runs.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from .errors import PERMANENT, record_category
from .locking import (
    LOCKING_SUPPORTED,
    FileLockedError,
    lock_handle,
    unlock_handle,
)

#: Magic string identifying a journal file's header line.
JOURNAL_FORMAT = "repro-batch-journal"

#: Schema version written to new journals.  Bump on any format change;
#: unknown versions fail loud on open instead of silently misloading.
#: v1/v2: no per-record checksum.  v3: completion records carry ``crc``.
JOURNAL_SCHEMA_VERSION = 3
_COMPATIBLE_JOURNAL_VERSIONS = (1, 2, 3)

#: First schema version whose completion records carry (and must pass)
#: the per-record CRC.  Older journals load without verification.
_CRC_MIN_VERSION = 3

#: Named points inside :meth:`BatchJournal.compact` where a crash may
#: land (and where the chaos harness injects SIGKILL).  The compaction
#: contract is that dying at *any* of them loses no durable completion:
#: ``pre_tmp`` / ``mid_write`` / ``pre_rename`` leave the old journal
#: untouched (plus at most a stale ``.compact.tmp`` that the next open
#: removes); ``post_rename`` leaves the new journal fully written and
#: fsync'd.
COMPACT_STEPS = ("pre_tmp", "mid_write", "pre_rename", "post_rename")


class JournalError(ValueError):
    """Raised for an unusable journal file (bad header, wrong format)."""


class JournalVersionError(JournalError):
    """Raised for a journal written by an incompatible schema version."""


class JournalExistsError(JournalError):
    """Raised when a journal already exists and resume was not requested."""


class JournalLockedError(JournalError):
    """Raised when another live process holds the journal's write lock.

    The journal is strictly single-writer: two processes appending to one
    file interleave completion records and tear each other's lines.  The
    advisory ``flock`` is taken on open and held for the journal's
    lifetime; the kernel releases it on any process death (including
    SIGKILL), so a respawned shard worker re-locks its predecessor's
    journal cleanly.
    """


#: errno -> degraded-mode reason for journal write failures.  Anything
#: not listed degrades as the generic "os_error"; the point of the map
#: is that dashboards can tell "disk full" from "dying disk" at a
#: glance.
_WRITE_FAILURE_TAXONOMY = {
    errno.ENOSPC: "disk_full",
    getattr(errno, "EDQUOT", errno.ENOSPC): "disk_full",
    errno.EFBIG: "disk_full",
    errno.EIO: "io_error",
    errno.EROFS: "read_only",
}

#: Fault modes :meth:`BatchJournal.inject_write_fault` can arm (the
#: chaos harness reaches these through the shard worker's ``chaos`` op).
JOURNAL_FAULT_MODES = ("enospc", "eio")

_FAULT_ERRNO = {"enospc": errno.ENOSPC, "eio": errno.EIO}


def classify_write_error(exc: OSError) -> str:
    """The degraded-mode reason string for a journal write failure."""
    code = getattr(exc, "errno", None)
    if code in _WRITE_FAILURE_TAXONOMY:
        return _WRITE_FAILURE_TAXONOMY[code]
    return "os_error"


def _default_log(message: str) -> None:
    import sys

    print(f"repro journal: {message}", file=sys.stderr, flush=True)


def record_crc(key: str, record: Dict[str, Any]) -> str:
    """CRC32 (8 hex digits) over a completion's key + canonical record.

    The key participates so a record grafted onto the wrong key -- not
    just a flipped byte inside the record -- fails verification.  The
    record is serialized exactly as the journal writes it
    (``sort_keys``, compact separators), so the checksum is stable
    across write/read round-trips.
    """

    canonical = key + "\n" + json.dumps(
        record, sort_keys=True, separators=(",", ":")
    )
    return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")


class ScannedLine(NamedTuple):
    """One classified journal line from :func:`scan_journal`."""

    #: "completion" | "heartbeat" | "other" | "corrupt" | "torn"
    kind: str
    #: 1-based physical line number in the file (header included).
    line_no: int
    #: Byte offset of the line's first byte.
    start: int
    #: Byte offset just past the trailing newline.
    end: int
    #: The raw line bytes (no newline).
    raw: bytes
    #: Decoded payload when the line parsed as a JSON object.
    payload: Optional[Dict[str, Any]]
    #: Human-readable defect description for corrupt/torn lines.
    reason: Optional[str]


class JournalScan(NamedTuple):
    """Classified contents of a journal file (shared reader result).

    ``header_status`` is one of ``ok`` / ``missing`` (empty file) /
    ``torn`` (header line lacks its newline) / ``corrupt`` (undecodable
    header) / ``foreign`` (valid JSON, wrong format string) /
    ``unsupported_version``.  ``lines`` holds the classified payload
    lines *after* the header and is only populated when the header is
    ``ok``.
    """

    header_status: str
    header: Optional[Dict[str, Any]]
    version: Optional[int]
    header_end: int
    lines: List[ScannedLine]


def scan_journal(raw: bytes) -> JournalScan:
    """Classify every line of a journal file (the one shared reader).

    :meth:`BatchJournal._recover`, :func:`read_journal_completions`, and
    :func:`fsck_file` all consume this scan, so the CRC/corruption rules
    cannot drift between the live, rescue, and offline readers.  The
    scan never raises and never touches the file -- policy (truncate,
    quarantine, fail loud) belongs to the callers.
    """

    lines: List[ScannedLine] = []
    header: Optional[Dict[str, Any]] = None
    header_status = "missing"
    version: Optional[int] = None
    header_end = 0
    verify_crc = False
    offset = 0
    for position, chunk in enumerate(raw.split(b"\n")):
        line_no = position + 1
        start = offset
        end = offset + len(chunk) + 1
        # The final chunk (no trailing newline) is torn by definition:
        # a complete append always ends with "\n".
        torn = offset + len(chunk) >= len(raw)
        offset = end
        if not chunk.strip():
            continue
        payload: Optional[Dict[str, Any]] = None
        reason: Optional[str] = None
        try:
            decoded = json.loads(chunk.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            reason = "undecodable line"
        else:
            if isinstance(decoded, dict):
                payload = decoded
            else:
                reason = "line is not a JSON object"
        if header_status == "missing":
            # First nonblank line: the header slot.
            if torn:
                header_status = "torn"
                break
            if payload is None:
                header_status = "corrupt"
                break
            if payload.get("format") != JOURNAL_FORMAT:
                header_status = "foreign"
                header = payload
                break
            if payload.get("version") not in _COMPATIBLE_JOURNAL_VERSIONS:
                header_status = "unsupported_version"
                header = payload
                break
            header_status = "ok"
            header = payload
            version = payload["version"]
            verify_crc = version >= _CRC_MIN_VERSION
            header_end = end
            continue
        if torn:
            lines.append(
                ScannedLine(
                    "torn", line_no, start, end, chunk, payload,
                    "no trailing newline (torn tail)",
                )
            )
            break
        if payload is None:
            lines.append(
                ScannedLine("corrupt", line_no, start, end, chunk, None, reason)
            )
            continue
        line_type = payload.get("type")
        if line_type == "completion":
            key = payload.get("key")
            record = payload.get("record")
            if not isinstance(key, str) or not isinstance(record, dict):
                lines.append(
                    ScannedLine(
                        "corrupt", line_no, start, end, chunk, payload,
                        "malformed completion (missing key or record)",
                    )
                )
                continue
            if verify_crc:
                stored = payload.get("crc")
                expected = record_crc(key, record)
                if stored != expected:
                    defect = (
                        f"crc mismatch for key {key} "
                        f"(stored {stored!r}, computed {expected!r})"
                        if stored is not None
                        else f"missing crc for key {key}"
                    )
                    lines.append(
                        ScannedLine(
                            "corrupt", line_no, start, end, chunk, payload,
                            defect,
                        )
                    )
                    continue
            lines.append(
                ScannedLine("completion", line_no, start, end, chunk, payload, None)
            )
        elif line_type == "heartbeat":
            lines.append(
                ScannedLine("heartbeat", line_no, start, end, chunk, payload, None)
            )
        else:
            # Future record types pass through untouched (and survive
            # compaction-free reads); they are not corruption.
            lines.append(
                ScannedLine("other", line_no, start, end, chunk, payload, None)
            )
    return JournalScan(header_status, header, version, header_end, lines)


def read_journal_completions(path: str) -> Dict[str, Dict[str, Any]]:
    """Read-only rescue load of a journal's durable completion records.

    Used by the reshard handoff when a retiring slot's worker cannot be
    reached even through respawn-and-retry (e.g. the slot is quarantined
    ``failed``): the router lifts the records straight off disk so the
    handoff still loses nothing.  Parsing runs the same shared scanner
    as :meth:`BatchJournal._recover` -- torn tails are ignored and
    corrupt records (bad JSON, failed CRC) are *skipped*, with the
    records after them still rescued -- but the file is never truncated,
    nothing is quarantined, and no lock is taken: only call this when
    the writing process is known to be dead (the kernel frees its flock
    on death).  A missing or headerless file yields ``{}``.
    """

    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return {}
    scan = scan_journal(raw)
    if scan.header_status != "ok":
        return {}
    completed: Dict[str, Dict[str, Any]] = {}
    for entry in scan.lines:
        if entry.kind != "completion":
            continue
        key = entry.payload["key"]
        record = entry.payload["record"]
        if _durable(record):
            completed[key] = record
    return completed


def _durable(record: Dict[str, Any]) -> bool:
    """Whether a result record is worth journaling / replaying.

    Mirrors the engine's cache policy: successes and permanent errors are
    deterministic answers; transient outcomes (deadline overruns, worker
    crashes, open circuits) are infrastructure weather -- a resumed run
    deserves a fresh attempt at them.
    """

    if record.get("ok"):
        return True
    error = record.get("error") or {}
    if error.get("type") == "CircuitOpenError":
        return False
    return record_category(record) == PERMANENT


class BatchJournal:
    """Append-only, fsync'd journal of completed batch requests.

    Parameters
    ----------
    path:
        Journal file path.  Created (with a versioned header) when
        missing.
    resume:
        When the file already exists: ``True`` recovers and replays it;
        ``False`` raises :class:`JournalExistsError` so a stale journal
        is never silently clobbered.
    fsync:
        fsync after every completion record (the write-ahead guarantee).
        Disable only in tests that hammer thousands of appends.
    log:
        Where degraded-mode announcements go (defaults to stderr).
    compact_max_records / compact_max_bytes:
        Auto-compaction thresholds applied by :meth:`maybe_compact`
        (``None`` disables that bound).  Compaction only fires when the
        journal actually holds reclaimable lines -- duplicates,
        heartbeats, superseded records -- so an all-unique journal never
        thrashes.
    """

    #: Emit one replay-progress stderr line per this many completion
    #: records while recovering a journal (class attribute so tests and
    #: operators can tune it).
    REPLAY_PROGRESS_EVERY = 10000

    def __init__(
        self,
        path: str,
        resume: bool = False,
        fsync: bool = True,
        log: Optional[Callable[[str], None]] = None,
        compact_max_records: Optional[int] = None,
        compact_max_bytes: Optional[int] = None,
    ):
        self.path = os.path.abspath(path)
        self.fsync = fsync
        self._log = log if log is not None else _default_log
        if compact_max_records is not None and compact_max_records < 1:
            raise ValueError("compact_max_records must be positive (or None)")
        if compact_max_bytes is not None and compact_max_bytes < 1:
            raise ValueError("compact_max_bytes must be positive (or None)")
        self.compact_max_records = compact_max_records
        self.compact_max_bytes = compact_max_bytes
        #: Replayable durable records by request key, in journal order.
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: Lines dropped by torn-tail recovery on open.
        self.recovered_drops = 0
        #: Corrupt lines moved to ``<path>.quarantine`` (ever, this
        #: process).
        self.corrupt_quarantined = 0
        #: Completion records appended by *this* process.
        self.appended = 0
        #: Completed compactions (including recovery rewrites).
        self.compactions = 0
        #: Wall seconds the last recovery replay took (0.0 for a fresh
        #: journal).
        self.replay_seconds = 0.0
        #: Payload lines (completions + heartbeats + other) currently on
        #: disk; the compaction thresholds compare against this.
        self.disk_lines = 0
        #: True once a write failure switched the journal to loud
        #: non-durable mode; appends are dropped but never raise.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.degraded_errno: Optional[int] = None
        self.write_errors = 0
        self._armed_fault: Optional[Tuple[str, int]] = None
        self._armed_compact_kill: Optional[str] = None
        self._handle = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            if not resume:
                raise JournalExistsError(
                    f"journal {self.path!r} already exists; resume it "
                    "explicitly or delete it to start over"
                )
            # Lock FIRST: recovery truncates/rewrites the file, which
            # must never happen to a journal another process is still
            # writing.
            self._open_locked()
            self._remove_stale_tmp()
            try:
                self._recover()
            except BaseException:
                self.close()
                raise
        else:
            self._create()

    @property
    def quarantine_path(self) -> str:
        """Sidecar file corrupt journal lines are moved to, verbatim."""
        return self.path + ".quarantine"

    # ------------------------------------------------------------------
    # Open / recover
    # ------------------------------------------------------------------
    def _open_locked(self) -> None:
        """Open the append handle and take the single-writer flock.

        Fails loudly with :class:`JournalLockedError` when another live
        process holds the lock -- the one failure mode that must never be
        papered over, because concurrent appends corrupt the file.
        """

        handle = open(self.path, "ab")
        try:
            lock_handle(handle, self.path, purpose="journal")
        except FileLockedError:
            handle.close()
            raise JournalLockedError(
                f"journal {self.path!r} is locked by another live process; "
                "a journal has exactly one writer -- stop the other owner "
                "or use a different --journal path"
            ) from None
        self._handle = handle

    def _create(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._open_locked()
        self._remove_stale_tmp()
        self._write_header()

    def _remove_stale_tmp(self) -> None:
        """Drop a ``.compact.tmp`` a dead compaction left behind.

        Safe because the journal flock is already held: nobody else can
        be mid-compaction on this path while we own the lock.
        """

        tmp_path = self.path + ".compact.tmp"
        try:
            os.unlink(tmp_path)
        except FileNotFoundError:
            return
        except OSError:
            return
        self._log(
            f"removed stale compaction temp {tmp_path!r} "
            "(a previous compaction died mid-write; the journal itself "
            "was never touched)"
        )

    def _header_payload(self) -> Dict[str, Any]:
        return {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_SCHEMA_VERSION,
            "created": time.time(),
        }

    def _write_header(self) -> None:
        self._write_line(self._header_payload(), sync=True)

    def _completion_payload(
        self, key: str, record: Dict[str, Any]
    ) -> Dict[str, Any]:
        return {
            "type": "completion",
            "key": key,
            "kind": record.get("kind"),
            "category": record_category(record),
            "at": time.time(),
            "crc": record_crc(key, record),
            "record": record,
        }

    def _recover(self) -> None:
        """Replay an existing journal.

        Torn tails are truncated away (cheap, routine); corrupt
        mid-file records are quarantined to ``<path>.quarantine`` and
        the journal is rewritten clean so the next open replays without
        incident.  Foreign files and unknown schema versions fail loud.
        """

        started = time.monotonic()
        with open(self.path, "rb") as handle:
            raw = handle.read()
        scan = scan_journal(raw)
        if scan.header_status == "foreign":
            raise JournalError(
                f"{self.path!r} is not a {JOURNAL_FORMAT} file "
                f"(header {scan.header!r})"
            )
        if scan.header_status == "unsupported_version":
            version = (scan.header or {}).get("version")
            raise JournalVersionError(
                f"journal {self.path!r} has schema version {version!r}; "
                f"this build supports {_COMPATIBLE_JOURNAL_VERSIONS}"
            )
        if scan.header_status in ("missing", "torn"):
            # Even the header was torn: start the journal over (the
            # already-locked append handle survives the truncate).
            self.recovered_drops += sum(
                1 for chunk in raw.split(b"\n") if chunk.strip()
            )
            os.ftruncate(self._handle.fileno(), 0)
            self._write_header()
            self.replay_seconds = time.monotonic() - started
            return
        if scan.header_status == "corrupt":
            # An undecodable header *with* its newline is real corruption
            # at the head of the file, not a torn write: nothing after it
            # can be attributed to this journal.  Quarantine the whole
            # contents (so an operator can still dig) and restart.
            self._quarantine_raw(
                raw,
                sum(1 for chunk in raw.split(b"\n") if chunk.strip()),
                "undecodable journal header",
            )
            os.ftruncate(self._handle.fileno(), 0)
            self._write_header()
            self.replay_seconds = time.monotonic() - started
            return
        replayed = 0
        kept_lines = 0
        corrupt: List[ScannedLine] = []
        torn: List[ScannedLine] = []
        for entry in scan.lines:
            if entry.kind == "corrupt":
                corrupt.append(entry)
                continue
            if entry.kind == "torn":
                torn.append(entry)
                continue
            kept_lines += 1
            if entry.kind != "completion":
                continue  # heartbeats and future record types
            if _durable(entry.payload["record"]):
                self.completed[entry.payload["key"]] = entry.payload["record"]
            replayed += 1
            if (
                self.REPLAY_PROGRESS_EVERY
                and replayed % self.REPLAY_PROGRESS_EVERY == 0
            ):
                self._log(
                    f"replaying {self.path!r}: {replayed} completion "
                    f"record(s) so far ({len(self.completed)} durable)"
                )
        self.disk_lines = kept_lines
        if torn:
            self.recovered_drops += len(torn)
        if corrupt:
            self._quarantine_raw(
                b"".join(entry.raw + b"\n" for entry in corrupt),
                len(corrupt),
                "; ".join(
                    f"line {entry.line_no}: {entry.reason}"
                    for entry in corrupt[:5]
                )
                + ("; ..." if len(corrupt) > 5 else ""),
            )
            # Rewrite the journal clean in one atomic pass -- otherwise
            # every future open would re-quarantine the same lines.
            self._rewrite()
        elif torn:
            # Routine torn-tail recovery: truncate back to the last
            # complete line and carry on.
            os.ftruncate(self._handle.fileno(), torn[0].start)
        self.replay_seconds = time.monotonic() - started
        if replayed >= self.REPLAY_PROGRESS_EVERY:
            self._log(
                f"replayed {self.path!r}: {replayed} completion record(s), "
                f"{len(self.completed)} durable, "
                f"{self.replay_seconds:.2f}s"
            )

    def _quarantine_raw(self, data: bytes, count: int, reason: str) -> None:
        """Append corrupt raw bytes to the quarantine sidecar, fsync'd."""
        if not data.endswith(b"\n"):
            data += b"\n"
        with open(self.quarantine_path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        self.corrupt_quarantined += count
        self._log(
            f"QUARANTINED {count} corrupt journal line(s) from "
            f"{self.path!r} to {self.quarantine_path!r} ({reason}); "
            "the remaining records were kept -- corrupt records are "
            "recomputed, never served"
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _compact_step(
        self, step: str, hook: Optional[Callable[[str], None]]
    ) -> None:
        if hook is not None:
            hook(step)
        if self._armed_compact_kill == step:
            self._armed_compact_kill = None
            self._log(f"injected SIGKILL at compaction step {step!r} (chaos)")
            os.kill(os.getpid(), signal.SIGKILL)

    def _rewrite(
        self, step_hook: Optional[Callable[[str], None]] = None
    ) -> None:
        """Atomically replace the journal with header + deduped records.

        Never truncates the source: the new contents go to
        ``<path>.compact.tmp`` (written, flushed, fsync'd) and land via
        ``os.replace``.  The tmp handle is flocked *before* any bytes
        are written and kept as the journal's append handle after the
        rename -- the fd follows the inode through ``os.replace`` -- so
        there is no instant at which the journal exists unlocked.  The
        old handle (whose lock rode the now-unlinked inode) is closed
        last.
        """

        tmp_path = self.path + ".compact.tmp"
        self._compact_step("pre_tmp", step_hook)
        tmp = open(tmp_path, "wb")
        renamed = False
        try:
            try:
                lock_handle(tmp, tmp_path, purpose="journal compaction")
            except FileLockedError:
                raise JournalError(
                    f"compaction temp {tmp_path!r} is locked by another "
                    "live process; a journal has exactly one writer"
                ) from None
            first = True
            tmp.write(
                json.dumps(
                    self._header_payload(),
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
                + b"\n"
            )
            for key, record in self.completed.items():
                line = json.dumps(
                    self._completion_payload(key, record),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                tmp.write(line.encode("utf-8") + b"\n")
                if first:
                    first = False
                    self._compact_step("mid_write", step_hook)
            if first:
                self._compact_step("mid_write", step_hook)
            tmp.flush()
            os.fsync(tmp.fileno())
            self._compact_step("pre_rename", step_hook)
            os.replace(tmp_path, self.path)
            renamed = True
        except BaseException:
            try:
                tmp.close()
            except OSError:
                pass
            if not renamed:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            raise
        old = self._handle
        self._handle = tmp
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._fsync_directory()
        self.disk_lines = len(self.completed)
        self._compact_step("post_rename", step_hook)

    def _fsync_directory(self) -> None:
        """Persist the rename itself (best-effort off POSIX)."""
        directory = os.path.dirname(self.path) or "."
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def compact(
        self, step_hook: Optional[Callable[[str], None]] = None
    ) -> Optional[Dict[str, Any]]:
        """Rewrite the journal down to its deduped durable completions.

        Crash-safe (see :meth:`_rewrite` and :data:`COMPACT_STEPS`): a
        SIGKILL at any point leaves the old or the new journal fully
        valid, and the next open cleans up any stale tmp.  Duplicates,
        heartbeats, and superseded records are dropped; every surviving
        record is re-stamped at the current schema version with a fresh
        CRC (so compacting is also how a v1/v2 journal upgrades).
        Returns a summary dict, or ``None`` when skipped because the
        journal is degraded (rewriting through a failing disk could
        destroy the one copy that still reads back).
        """

        if self._handle is None:
            raise JournalError(f"journal {self.path!r} is closed")
        if self.degraded:
            self._log(
                f"compaction skipped: {self.path!r} is degraded "
                f"({self.degraded_reason}); fix the volume and restart "
                "to restore durability first"
            )
            return None
        self.flush()
        before_bytes = self._file_bytes()
        before_lines = self.disk_lines
        self._rewrite(step_hook=step_hook)
        after_bytes = self._file_bytes()
        self.compactions += 1
        self._log(
            f"compacted {self.path!r}: {before_lines} line(s) -> "
            f"{len(self.completed)} record(s), {before_bytes} -> "
            f"{after_bytes} bytes"
        )
        return {
            "path": self.path,
            "before_lines": before_lines,
            "before_bytes": before_bytes,
            "records": len(self.completed),
            "after_bytes": after_bytes,
            "reclaimed_bytes": max(0, before_bytes - after_bytes),
            "compactions": self.compactions,
        }

    def maybe_compact(self) -> Optional[Dict[str, Any]]:
        """Compact when an armed threshold is exceeded *and* it helps.

        "Helps" means the file holds more lines than unique durable
        records -- duplicates, heartbeats, superseded imports -- so a
        journal of all-unique completions never rewrites itself over and
        over at the threshold.  Returns the :meth:`compact` summary when
        a compaction ran, else ``None``.
        """

        if self._handle is None or self.degraded:
            return None
        if self.compact_max_records is None and self.compact_max_bytes is None:
            return None
        if self.disk_lines <= len(self.completed):
            return None
        over = (
            self.compact_max_records is not None
            and self.disk_lines > self.compact_max_records
        ) or (
            self.compact_max_bytes is not None
            and self._file_bytes() > self.compact_max_bytes
        )
        if not over:
            return None
        return self.compact()

    def inject_compact_kill(self, step: str) -> None:
        """Arm a SIGKILL of this process at a compaction step.

        ``step`` is one of :data:`COMPACT_STEPS`.  Reached from the
        chaos harness through the shard worker's env-guarded ``chaos``
        op; production code never calls this.
        """

        if step not in COMPACT_STEPS:
            raise ValueError(
                f"unknown compaction step {step!r}; "
                f"expected one of {COMPACT_STEPS}"
            )
        self._armed_compact_kill = step

    def _file_bytes(self) -> int:
        """Current on-disk journal size (appends flush per write)."""
        if self._handle is not None:
            try:
                return os.fstat(self._handle.fileno()).st_size
            except OSError:
                return 0
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def record_completion(self, key: str, record: Dict[str, Any]) -> bool:
        """Journal one finished request; returns whether it was written.

        Non-durable (transient) outcomes are skipped -- they must be
        recomputed on resume, so checkpointing them would only replay
        stale infrastructure failures.
        """

        if not _durable(record):
            return False
        written = self._write_line(
            self._completion_payload(key, record), sync=self.fsync
        )
        # The in-memory replay map stays current even in degraded mode:
        # this process still answers repeats correctly, it just cannot
        # promise the answer survives a crash.
        self.completed[key] = record
        if written:
            self.appended += 1
            self.disk_lines += 1
        return written

    def export_handoff(
        self, should_move: Callable[[str], bool]
    ) -> "List[Dict[str, Any]]":
        """Durable completions whose key satisfies ``should_move``.

        The reshard handoff source: the journal is flushed first (so the
        on-disk segment is at least as current as what is exported) and
        entries come back in journal order as ``{"key", "record",
        "crc"}`` triples -- the CRC rides along so the importing side
        verifies the records survived the trip.  The file itself is
        untouched -- a handoff *copies* records to their new owner; the
        append-only history stays put until the slot is retired and its
        file unlinked.
        """

        self.flush()
        return [
            {"key": key, "record": record, "crc": record_crc(key, record)}
            for key, record in self.completed.items()
            if should_move(key)
        ]

    def ingest_handoff(
        self, entries: "Sequence[Dict[str, Any]]"
    ) -> Tuple[int, int]:
        """Replay handed-off completion records into this journal.

        Returns ``(imported, duplicates)``.  Already-known keys are
        counted as duplicates and skipped (a key can be exported by two
        old owners that both journaled it -- e.g. an owner plus a
        fallback slot that served it during a quarantine); new keys go
        through :meth:`record_completion`, so they are fsync'd here
        before the old owner's file is ever deleted.  An entry carrying
        a ``crc`` is verified against its key + record and a mismatch
        fails loud (:class:`JournalError`) -- a handoff must move
        records intact or not at all.  A degraded journal still ingests
        into the in-memory replay map -- correctness is preserved, only
        crash-durability of the handoff is lost (and that is already
        loudly reported).
        """

        imported = 0
        duplicates = 0
        for entry in entries:
            key = entry.get("key")
            record = entry.get("record")
            if not isinstance(key, str) or not isinstance(record, dict):
                raise JournalError(
                    f"malformed handoff entry {entry!r}: expected "
                    "{'key': str, 'record': dict}"
                )
            crc = entry.get("crc")
            if crc is not None and crc != record_crc(key, record):
                raise JournalError(
                    f"handoff entry for key {key} failed crc verification "
                    f"(stored {crc!r}); refusing to ingest a corrupt record"
                )
            if key in self.completed:
                duplicates += 1
                continue
            self.record_completion(key, record)
            imported += 1
        return imported, duplicates

    def heartbeat(self, completed: int, note: str = "") -> None:
        """Advisory progress timestamp (flushed, not fsync'd)."""
        written = self._write_line(
            {
                "type": "heartbeat",
                "at": time.time(),
                "completed": completed,
                "note": note,
            },
            sync=False,
        )
        if written:
            self.disk_lines += 1

    def _write_line(self, payload: Dict[str, Any], sync: bool) -> bool:
        """Append one line; returns False (never raises) when degraded.

        Any ``OSError`` from write/flush/fsync -- a full disk, a dying
        device, a read-only remount -- flips the journal into loud
        non-durable mode instead of propagating: durability is a
        *checkpointing* promise, and losing it must never take down the
        worker that was about to produce a perfectly good answer.
        """

        if self._handle is None:
            raise JournalError(f"journal {self.path!r} is closed")
        if self.degraded:
            return False
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self._maybe_inject_fault()
            self._handle.write(line.encode("utf-8") + b"\n")
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            self._degrade(exc)
            return False
        return True

    def _degrade(self, exc: OSError) -> None:
        """Enter loud non-durable mode after a write failure."""
        self.write_errors += 1
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = classify_write_error(exc)
        self.degraded_errno = getattr(exc, "errno", None)
        self._log(
            f"DEGRADED to non-durable mode: {self.path!r} append failed "
            f"({self.degraded_reason}: {exc}); results stay correct but "
            "are no longer crash-checkpointed -- free disk space / fix "
            "the volume and restart to restore durability"
        )

    # ------------------------------------------------------------------
    # Fault injection (chaos harness / tests only)
    # ------------------------------------------------------------------
    def inject_write_fault(self, mode: str, after: int = 0) -> None:
        """Arm a one-shot write failure ``after`` successful appends.

        ``mode`` is one of :data:`JOURNAL_FAULT_MODES`; the armed fault
        raises the matching ``OSError`` inside the next append, which
        exercises the real degrade path end to end.  Reached from the
        chaos harness through the shard worker's env-guarded ``chaos``
        op; production code never calls this.
        """

        if mode not in _FAULT_ERRNO:
            raise ValueError(
                f"unknown journal fault mode {mode!r}; "
                f"expected one of {JOURNAL_FAULT_MODES}"
            )
        self._armed_fault = (mode, max(0, int(after)))

    def _maybe_inject_fault(self) -> None:
        if self._armed_fault is None:
            return
        mode, countdown = self._armed_fault
        if countdown > 0:
            self._armed_fault = (mode, countdown - 1)
            return
        self._armed_fault = None
        code = _FAULT_ERRNO[mode]
        raise OSError(code, f"injected journal fault ({mode})")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._handle is None or self.degraded:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            self._degrade(exc)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.flush()
            finally:
                try:
                    self._handle.close()
                except OSError:
                    pass  # a degraded handle may fail its final flush
                self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)

    def stats(self) -> Dict[str, Any]:
        """Summary dict for reports: path, counts, recovery + health."""
        return {
            "path": self.path,
            "completed": len(self.completed),
            "appended": self.appended,
            "recovered_drops": self.recovered_drops,
            "corrupt_quarantined": self.corrupt_quarantined,
            "compactions": self.compactions,
            "file_bytes": self._file_bytes(),
            "disk_lines": self.disk_lines,
            "replay_seconds": round(self.replay_seconds, 6),
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "write_errors": self.write_errors,
        }


# ----------------------------------------------------------------------
# Offline integrity checking (``repro fsck``)
# ----------------------------------------------------------------------

#: ``repro fsck`` exit codes: clean / problems found / cannot check.
FSCK_CLEAN = 0
FSCK_PROBLEMS = 1
FSCK_FATAL = 2


def _probe_locked(path: str) -> bool:
    """Whether a live process holds the journal flock on ``path``."""
    if not LOCKING_SUPPORTED:
        return False
    try:
        handle = open(path, "rb")
    except OSError:
        return False
    try:
        try:
            lock_handle(handle, path, purpose="journal")
        except FileLockedError:
            return True
        unlock_handle(handle)
        return False
    finally:
        handle.close()


def _fsck_report(path: str) -> Dict[str, Any]:
    return {
        "path": os.path.abspath(path),
        "kind": "unknown",
        "status": "fatal",
        "exit_code": FSCK_FATAL,
        "detail": None,
        "version": None,
        "file_bytes": 0,
        "completion_lines": 0,
        "unique_keys": 0,
        "durable_records": 0,
        "duplicate_lines": 0,
        "heartbeat_lines": 0,
        "other_lines": 0,
        "corrupt": [],
        "torn": [],
        "repaired": False,
        "quarantined": 0,
        "recovered_drops": 0,
    }


def _fsck_cache(report: Dict[str, Any], raw: bytes) -> Dict[str, Any]:
    """Light validity check of a persisted result-cache file.

    The cache is a single JSON document written atomically by
    ``save_cache`` -- there is no per-record repair story (a corrupt
    cache is simply deleted and re-warmed), so fsck only reports whether
    it would load.
    """

    report["kind"] = "cache"
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        report["detail"] = f"cache file does not parse as JSON: {exc}"
        return report
    entries = payload.get("entries")
    if not isinstance(entries, list):
        report["detail"] = "malformed cache file (no entries list)"
        return report
    bad = sum(
        1
        for entry in entries
        if not (
            isinstance(entry, (list, tuple))
            and len(entry) == 2
            and isinstance(entry[1], dict)
        )
    )
    report["version"] = payload.get("version")
    report["completion_lines"] = len(entries)
    report["unique_keys"] = len(
        {entry[0] for entry in entries if isinstance(entry, (list, tuple)) and entry}
    )
    if bad:
        report["status"] = "problems"
        report["exit_code"] = FSCK_PROBLEMS
        report["detail"] = f"{bad} malformed cache entr(y/ies)"
    else:
        report["status"] = "clean"
        report["exit_code"] = FSCK_CLEAN
    return report


def fsck_file(path: str, repair: bool = False) -> Dict[str, Any]:
    """Scan a journal (or cache) file offline; optionally repair it.

    Returns a report dict whose ``exit_code`` follows the fsck
    convention: 0 clean, 1 problems found (corrupt or torn records --
    repaired when ``repair=True``), 2 cannot check (missing file,
    foreign format, unknown version, or a live writer holds the lock).
    ``corrupt`` lists each bad record's line number, key (when
    recoverable), and reason, so an operator -- or a CI grep -- can name
    exactly what was lost.

    ``repair=True`` (journals only) runs the *live* recovery machinery:
    corrupt records are quarantined to ``<path>.quarantine`` and the
    journal is atomically rewritten clean, exactly as a resuming worker
    would have done.
    """

    report = _fsck_report(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        report["detail"] = f"unreadable: {exc}"
        return report
    report["file_bytes"] = len(raw)
    if _probe_locked(path):
        report["detail"] = (
            "locked by a live process (it has exactly one writer); "
            "stop the owner before running fsck"
        )
        return report
    first_line = next(
        (chunk for chunk in raw.split(b"\n") if chunk.strip()), b""
    )
    first_payload = None
    try:
        decoded = json.loads(first_line.decode("utf-8"))
        if isinstance(decoded, dict):
            first_payload = decoded
    except (ValueError, UnicodeDecodeError):
        pass
    if first_payload is not None and "entries" in first_payload:
        return _fsck_cache(report, raw)
    report["kind"] = "journal"
    scan = scan_journal(raw)
    report["version"] = scan.version
    if scan.header_status == "missing":
        report["detail"] = "empty file (no journal header)"
        return report
    if scan.header_status == "foreign":
        report["detail"] = (
            f"not a {JOURNAL_FORMAT} file (header {scan.header!r})"
        )
        return report
    if scan.header_status == "unsupported_version":
        report["detail"] = (
            f"schema version {(scan.header or {}).get('version')!r} is not "
            f"supported by this build ({_COMPATIBLE_JOURNAL_VERSIONS})"
        )
        return report
    if scan.header_status == "torn":
        report["status"] = "problems"
        report["exit_code"] = FSCK_PROBLEMS
        report["corrupt"].append(
            {"line": 1, "key": None, "reason": "torn journal header"}
        )
    elif scan.header_status == "corrupt":
        report["status"] = "problems"
        report["exit_code"] = FSCK_PROBLEMS
        report["corrupt"].append(
            {"line": 1, "key": None, "reason": "undecodable journal header"}
        )
    else:
        seen = set()
        durable: Dict[str, Dict[str, Any]] = {}
        for entry in scan.lines:
            if entry.kind == "completion":
                report["completion_lines"] += 1
                key = entry.payload["key"]
                if key in seen:
                    report["duplicate_lines"] += 1
                seen.add(key)
                record = entry.payload["record"]
                if _durable(record):
                    durable[key] = record
            elif entry.kind == "heartbeat":
                report["heartbeat_lines"] += 1
            elif entry.kind == "other":
                report["other_lines"] += 1
            elif entry.kind == "corrupt":
                payload = entry.payload or {}
                report["corrupt"].append(
                    {
                        "line": entry.line_no,
                        "key": payload.get("key"),
                        "reason": entry.reason,
                    }
                )
            elif entry.kind == "torn":
                payload = entry.payload or {}
                report["torn"].append(
                    {
                        "line": entry.line_no,
                        "key": payload.get("key"),
                        "reason": entry.reason,
                    }
                )
        report["unique_keys"] = len(seen)
        report["durable_records"] = len(durable)
        if report["corrupt"] or report["torn"]:
            report["status"] = "problems"
            report["exit_code"] = FSCK_PROBLEMS
        else:
            report["status"] = "clean"
            report["exit_code"] = FSCK_CLEAN
    if repair and report["status"] == "problems":
        try:
            journal = BatchJournal(path, resume=True)
        except JournalLockedError:
            report["detail"] = "locked by a live process; repair aborted"
            report["status"] = "fatal"
            report["exit_code"] = FSCK_FATAL
            return report
        try:
            report["quarantined"] = journal.corrupt_quarantined
            report["recovered_drops"] = journal.recovered_drops
            report["durable_records"] = len(journal.completed)
        finally:
            journal.close()
        report["repaired"] = True
    return report
