"""Write-ahead journal: crash-safe checkpointing for batch runs.

A :class:`BatchJournal` makes a batch *durable across process death*:
every completed request lands in an append-only JSON-lines file as a
fsync'd ``completion`` record before the batch moves on, so a SIGKILL,
OOM-kill, or host reboot mid-run loses at most the request currently in
flight.  On resume the journal is replayed and already-completed keys are
answered from disk -- fed back into the result stream in input order, so
a resumed batch emits output **byte-identical** to an uninterrupted run.

File format (one JSON object per line)::

    {"format": "repro-batch-journal", "version": 1, "created": <epoch>}
    {"type": "completion", "key": "<sha256>", "kind": "intra",
     "category": null, "at": <epoch>, "record": {...}}
    {"type": "heartbeat", "at": <epoch>, "completed": 17, "note": "..."}

* The **header** is written first and validated on every open.  An
  unknown ``version`` fails loud (:class:`JournalVersionError`): a format
  change must never be silently misread as an empty journal.
* **Completion** records carry the full result record plus its error
  ``category`` (``null`` for successes).  Only *durable* outcomes are
  journaled -- successes and permanent errors, the same set the result
  cache accepts -- so transient infrastructure outcomes (timeouts,
  crashes, open circuits) are recomputed on resume rather than replayed.
* **Heartbeat** lines are advisory progress timestamps written by the
  engine's stalled-batch watchdog; they are flushed but not fsync'd and
  carry no result data.

Crash recovery: a process can die mid-``write``, leaving a torn final
line.  Recovery truncates the file back to the last complete line and
continues -- a torn tail must *never* fail the batch, because the torn
record's request simply gets recomputed.  Undecodable lines earlier in
the file (real corruption, not a torn tail) are handled the same
conservative way: everything from the first bad line onward is dropped
and recomputed, which sacrifices checkpoints, never correctness.

Write failures get the same "never fail the batch" treatment: an
``OSError`` while appending (ENOSPC, EIO, a read-only remount...) does
not kill the owning process.  The journal **degrades to loud
non-durable mode** instead -- the failure is classified
(:func:`classify_write_error`), logged once at full volume, surfaced in
:meth:`BatchJournal.stats` (and from there in ``/metrics``), and all
further appends are dropped while the batch keeps computing.  Results
stay correct (they are deterministic and recomputable); only crash
*checkpointing* is lost, which is exactly what the degraded flag tells
operators to go fix.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import PERMANENT, record_category
from .locking import FileLockedError, lock_handle

#: Magic string identifying a journal file's header line.
JOURNAL_FORMAT = "repro-batch-journal"

#: Schema version written to new journals.  Bump on any format change;
#: unknown versions fail loud on open instead of silently misloading.
JOURNAL_SCHEMA_VERSION = 1
_COMPATIBLE_JOURNAL_VERSIONS = (1,)


class JournalError(ValueError):
    """Raised for an unusable journal file (bad header, wrong format)."""


class JournalVersionError(JournalError):
    """Raised for a journal written by an incompatible schema version."""


class JournalExistsError(JournalError):
    """Raised when a journal already exists and resume was not requested."""


#: errno -> degraded-mode reason for journal write failures.  Anything
#: not listed degrades as the generic "os_error"; the point of the map
#: is that dashboards can tell "disk full" from "dying disk" at a
#: glance.
_WRITE_FAILURE_TAXONOMY = {
    errno.ENOSPC: "disk_full",
    getattr(errno, "EDQUOT", errno.ENOSPC): "disk_full",
    errno.EFBIG: "disk_full",
    errno.EIO: "io_error",
    errno.EROFS: "read_only",
}

#: Fault modes :meth:`BatchJournal.inject_write_fault` can arm (the
#: chaos harness reaches these through the shard worker's ``chaos`` op).
JOURNAL_FAULT_MODES = ("enospc", "eio")

_FAULT_ERRNO = {"enospc": errno.ENOSPC, "eio": errno.EIO}


def classify_write_error(exc: OSError) -> str:
    """The degraded-mode reason string for a journal write failure."""
    code = getattr(exc, "errno", None)
    if code in _WRITE_FAILURE_TAXONOMY:
        return _WRITE_FAILURE_TAXONOMY[code]
    return "os_error"


def _default_log(message: str) -> None:
    import sys

    print(f"repro journal: {message}", file=sys.stderr, flush=True)


def read_journal_completions(path: str) -> Dict[str, Dict[str, Any]]:
    """Read-only rescue load of a journal's durable completion records.

    Used by the reshard handoff when a retiring slot's worker cannot be
    reached even through respawn-and-retry (e.g. the slot is quarantined
    ``failed``): the router lifts the records straight off disk so the
    handoff still loses nothing.  Parsing is as tolerant as
    :meth:`BatchJournal._recover` -- a torn tail or corrupt line drops
    that line and everything after it -- but the file is *never*
    truncated and no lock is taken: only call this when the writing
    process is known to be dead (the kernel frees its flock on death).
    A missing or headerless file yields ``{}``.
    """

    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return {}
    completed: Dict[str, Dict[str, Any]] = {}
    header_seen = False
    offset = 0
    for line in raw.split(b"\n"):
        torn = offset + len(line) >= len(raw)
        offset += len(line) + 1
        if not line.strip():
            continue
        try:
            payload = json.loads(line.decode("utf-8"))
            if torn:
                raise ValueError("no trailing newline")
            if not isinstance(payload, dict):
                raise ValueError("journal line is not an object")
        except (ValueError, UnicodeDecodeError):
            break
        if not header_seen:
            if payload.get("format") != JOURNAL_FORMAT or (
                payload.get("version") not in _COMPATIBLE_JOURNAL_VERSIONS
            ):
                return {}
            header_seen = True
            continue
        if payload.get("type") != "completion":
            continue
        key = payload.get("key")
        record = payload.get("record")
        if isinstance(key, str) and isinstance(record, dict):
            if _durable(record):
                completed[key] = record
    return completed


class JournalLockedError(JournalError):
    """Raised when another live process holds the journal's write lock.

    The journal is strictly single-writer: two processes appending to one
    file interleave completion records and tear each other's lines.  The
    advisory ``flock`` is taken on open and held for the journal's
    lifetime; the kernel releases it on any process death (including
    SIGKILL), so a respawned shard worker re-locks its predecessor's
    journal cleanly.
    """


def _durable(record: Dict[str, Any]) -> bool:
    """Whether a result record is worth journaling / replaying.

    Mirrors the engine's cache policy: successes and permanent errors are
    deterministic answers; transient outcomes (deadline overruns, worker
    crashes, open circuits) are infrastructure weather -- a resumed run
    deserves a fresh attempt at them.
    """

    if record.get("ok"):
        return True
    error = record.get("error") or {}
    if error.get("type") == "CircuitOpenError":
        return False
    return record_category(record) == PERMANENT


class BatchJournal:
    """Append-only, fsync'd journal of completed batch requests.

    Parameters
    ----------
    path:
        Journal file path.  Created (with a versioned header) when
        missing.
    resume:
        When the file already exists: ``True`` recovers and replays it;
        ``False`` raises :class:`JournalExistsError` so a stale journal
        is never silently clobbered.
    fsync:
        fsync after every completion record (the write-ahead guarantee).
        Disable only in tests that hammer thousands of appends.
    log:
        Where degraded-mode announcements go (defaults to stderr).
    """

    def __init__(
        self,
        path: str,
        resume: bool = False,
        fsync: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.path = os.path.abspath(path)
        self.fsync = fsync
        self._log = log if log is not None else _default_log
        #: Replayable durable records by request key, in journal order.
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: Lines dropped by torn-tail / corruption recovery on open.
        self.recovered_drops = 0
        #: Completion records appended by *this* process.
        self.appended = 0
        #: True once a write failure switched the journal to loud
        #: non-durable mode; appends are dropped but never raise.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.degraded_errno: Optional[int] = None
        self.write_errors = 0
        self._armed_fault: Optional[Tuple[str, int]] = None
        self._handle = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            if not resume:
                raise JournalExistsError(
                    f"journal {self.path!r} already exists; resume it "
                    "explicitly or delete it to start over"
                )
            # Lock FIRST: recovery truncates the file, which must never
            # happen to a journal another process is still writing.
            self._open_locked()
            try:
                self._recover()
            except BaseException:
                self.close()
                raise
        else:
            self._create()

    # ------------------------------------------------------------------
    # Open / recover
    # ------------------------------------------------------------------
    def _open_locked(self) -> None:
        """Open the append handle and take the single-writer flock.

        Fails loudly with :class:`JournalLockedError` when another live
        process holds the lock -- the one failure mode that must never be
        papered over, because concurrent appends corrupt the file.
        """

        handle = open(self.path, "ab")
        try:
            lock_handle(handle, self.path, purpose="journal")
        except FileLockedError:
            handle.close()
            raise JournalLockedError(
                f"journal {self.path!r} is locked by another live process; "
                "a journal has exactly one writer -- stop the other owner "
                "or use a different --journal path"
            ) from None
        self._handle = handle

    def _create(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._open_locked()
        self._write_header()

    def _write_header(self) -> None:
        header = {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_SCHEMA_VERSION,
            "created": time.time(),
        }
        self._write_line(header, sync=True)

    def _recover(self) -> None:
        """Replay an existing journal, truncating any torn/corrupt tail."""
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        offset = 0
        good_end = 0
        parsed = []
        for position, line in enumerate(lines):
            line_end = offset + len(line) + 1  # +1 for the newline
            if not line.strip():
                offset = line_end
                continue
            # The final chunk (no trailing newline) is torn by definition:
            # a complete append always ends with "\n".
            torn = offset + len(line) >= len(raw)
            try:
                payload = json.loads(line.decode("utf-8"))
                if torn:
                    raise ValueError("no trailing newline")
                if not isinstance(payload, dict):
                    raise ValueError("journal line is not an object")
            except (ValueError, UnicodeDecodeError):
                # Torn tail or corruption: drop this line and everything
                # after it.  The dropped requests are simply recomputed;
                # recovery never fails the batch.
                self.recovered_drops += sum(
                    1 for later in lines[position:] if later.strip()
                )
                break
            parsed.append(payload)
            good_end = line_end
            offset = line_end
        if not parsed:
            # Even the header was torn: start the journal over (the
            # already-locked append handle survives the truncate).
            os.ftruncate(self._handle.fileno(), 0)
            self._write_header()
            return
        header = parsed[0]
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"{self.path!r} is not a {JOURNAL_FORMAT} file "
                f"(header {header!r})"
            )
        version = header.get("version")
        if version not in _COMPATIBLE_JOURNAL_VERSIONS:
            raise JournalVersionError(
                f"journal {self.path!r} has schema version {version!r}; "
                f"this build supports {_COMPATIBLE_JOURNAL_VERSIONS}"
            )
        for payload in parsed[1:]:
            if payload.get("type") != "completion":
                continue  # heartbeats and future record types
            key = payload.get("key")
            record = payload.get("record")
            if not isinstance(key, str) or not isinstance(record, dict):
                continue
            if _durable(record):
                self.completed[key] = record
        if good_end < len(raw):
            os.ftruncate(self._handle.fileno(), good_end)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def record_completion(self, key: str, record: Dict[str, Any]) -> bool:
        """Journal one finished request; returns whether it was written.

        Non-durable (transient) outcomes are skipped -- they must be
        recomputed on resume, so checkpointing them would only replay
        stale infrastructure failures.
        """

        if not _durable(record):
            return False
        written = self._write_line(
            {
                "type": "completion",
                "key": key,
                "kind": record.get("kind"),
                "category": record_category(record),
                "at": time.time(),
                "record": record,
            },
            sync=self.fsync,
        )
        # The in-memory replay map stays current even in degraded mode:
        # this process still answers repeats correctly, it just cannot
        # promise the answer survives a crash.
        self.completed[key] = record
        if written:
            self.appended += 1
        return written

    def export_handoff(
        self, should_move: Callable[[str], bool]
    ) -> "List[Dict[str, Any]]":
        """Durable completions whose key satisfies ``should_move``.

        The reshard handoff source: the journal is flushed first (so the
        on-disk segment is at least as current as what is exported) and
        entries come back in journal order as ``{"key", "record"}``
        pairs.  The file itself is untouched -- a handoff *copies*
        records to their new owner; the append-only history stays put
        until the slot is retired and its file unlinked.
        """

        self.flush()
        return [
            {"key": key, "record": record}
            for key, record in self.completed.items()
            if should_move(key)
        ]

    def ingest_handoff(
        self, entries: "Sequence[Dict[str, Any]]"
    ) -> Tuple[int, int]:
        """Replay handed-off completion records into this journal.

        Returns ``(imported, duplicates)``.  Already-known keys are
        counted as duplicates and skipped (a key can be exported by two
        old owners that both journaled it -- e.g. an owner plus a
        fallback slot that served it during a quarantine); new keys go
        through :meth:`record_completion`, so they are fsync'd here
        before the old owner's file is ever deleted.  A degraded journal
        still ingests into the in-memory replay map -- correctness is
        preserved, only crash-durability of the handoff is lost (and
        that is already loudly reported).
        """

        imported = 0
        duplicates = 0
        for entry in entries:
            key = entry.get("key")
            record = entry.get("record")
            if not isinstance(key, str) or not isinstance(record, dict):
                raise JournalError(
                    f"malformed handoff entry {entry!r}: expected "
                    "{'key': str, 'record': dict}"
                )
            if key in self.completed:
                duplicates += 1
                continue
            self.record_completion(key, record)
            imported += 1
        return imported, duplicates

    def heartbeat(self, completed: int, note: str = "") -> None:
        """Advisory progress timestamp (flushed, not fsync'd)."""
        self._write_line(
            {
                "type": "heartbeat",
                "at": time.time(),
                "completed": completed,
                "note": note,
            },
            sync=False,
        )

    def _write_line(self, payload: Dict[str, Any], sync: bool) -> bool:
        """Append one line; returns False (never raises) when degraded.

        Any ``OSError`` from write/flush/fsync -- a full disk, a dying
        device, a read-only remount -- flips the journal into loud
        non-durable mode instead of propagating: durability is a
        *checkpointing* promise, and losing it must never take down the
        worker that was about to produce a perfectly good answer.
        """

        if self._handle is None:
            raise JournalError(f"journal {self.path!r} is closed")
        if self.degraded:
            return False
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self._maybe_inject_fault()
            self._handle.write(line.encode("utf-8") + b"\n")
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            self._degrade(exc)
            return False
        return True

    def _degrade(self, exc: OSError) -> None:
        """Enter loud non-durable mode after a write failure."""
        self.write_errors += 1
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = classify_write_error(exc)
        self.degraded_errno = getattr(exc, "errno", None)
        self._log(
            f"DEGRADED to non-durable mode: {self.path!r} append failed "
            f"({self.degraded_reason}: {exc}); results stay correct but "
            "are no longer crash-checkpointed -- free disk space / fix "
            "the volume and restart to restore durability"
        )

    # ------------------------------------------------------------------
    # Fault injection (chaos harness / tests only)
    # ------------------------------------------------------------------
    def inject_write_fault(self, mode: str, after: int = 0) -> None:
        """Arm a one-shot write failure ``after`` successful appends.

        ``mode`` is one of :data:`JOURNAL_FAULT_MODES`; the armed fault
        raises the matching ``OSError`` inside the next append, which
        exercises the real degrade path end to end.  Reached from the
        chaos harness through the shard worker's env-guarded ``chaos``
        op; production code never calls this.
        """

        if mode not in _FAULT_ERRNO:
            raise ValueError(
                f"unknown journal fault mode {mode!r}; "
                f"expected one of {JOURNAL_FAULT_MODES}"
            )
        self._armed_fault = (mode, max(0, int(after)))

    def _maybe_inject_fault(self) -> None:
        if self._armed_fault is None:
            return
        mode, countdown = self._armed_fault
        if countdown > 0:
            self._armed_fault = (mode, countdown - 1)
            return
        self._armed_fault = None
        code = _FAULT_ERRNO[mode]
        raise OSError(code, f"injected journal fault ({mode})")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._handle is None or self.degraded:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            self._degrade(exc)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.flush()
            finally:
                try:
                    self._handle.close()
                except OSError:
                    pass  # a degraded handle may fail its final flush
                self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)

    def stats(self) -> Dict[str, Any]:
        """Summary dict for reports: path, counts, recovery + health."""
        return {
            "path": self.path,
            "completed": len(self.completed),
            "appended": self.appended,
            "recovered_drops": self.recovered_drops,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "write_errors": self.write_errors,
        }
