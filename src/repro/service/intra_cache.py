"""Process-wide memoization of intra-operator optimization.

Sweeps, DSE baselines, and the graph planner all re-derive the same
intra-operator optimum for identical (dims, buffer) tuples -- a genetic
fused search comparing against unfused optima, a figure harness sweeping
buffer sizes, and a bisection over the MA(BS) curve can each ask for
``optimize_intra`` on the same operator shape thousands of times.  This
module holds one shared bounded LRU over those results.

Keys are *structural*: the operator's dims, indexing pattern, dtypes and
repetition count -- not its name -- so ``mm1`` and ``proj_q`` with the same
shape share an entry.  On a hit whose cached operator differs from the
requested one, the cached *dataflow* is re-scored against the requested
operator through the ordinary cost model (one ``memory_access`` call
instead of a full candidate enumeration), so returned results always carry
the caller's operator and tensor names.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.fusion import FusionMedium, optimize_fused
from ..core.intra import IntraResult, optimize_intra
from ..core.regimes import classify_buffer
from ..dataflow.cost import PartialSumConvention, memory_access
from ..ir.operator import TensorOperator
from .cache import CacheStats, LRUCache

#: Default bound of the shared cache (entries, not bytes).
DEFAULT_INTRA_CACHE_SIZE = 8192

#: Default bound of the shared fused-segment cache.  Fused results embed
#: their chain (op names included), so entries are keyed exactly and the
#: cache mainly serves searches that re-cost the same segment: the chain
#: DP revisits every (start, end) window, and the enumerative DAG mapper
#: revisits the same segment across thousands of candidate partitions.
DEFAULT_FUSED_CACHE_SIZE = 4096

_cache = LRUCache(DEFAULT_INTRA_CACHE_SIZE)
_fused_cache = LRUCache(DEFAULT_FUSED_CACHE_SIZE)


def operator_signature(operator: TensorOperator) -> Tuple:
    """A name-free structural identity for an operator.

    Two operators with equal signatures have identical optimization
    problems: same loop extents (in canonical order), same tensor indexing
    patterns, same dtypes, same repetition count.
    """

    tensors = list(operator.inputs) + [operator.output]
    return (
        tuple(operator.dims.items()),
        tuple(tuple(operator.indexing[tensor.name]) for tensor in tensors),
        tuple(tensor.dtype_bytes for tensor in tensors),
        operator.count,
    )


def cached_optimize_intra(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> IntraResult:
    """Drop-in :func:`repro.core.optimize_intra` backed by the shared cache.

    Infeasible/unsupported operators raise exactly as the uncached function
    does; failures are never cached.
    """

    key = (operator_signature(operator), buffer_elems, convention.value)
    hit: Optional[IntraResult] = _cache.get(key)
    if hit is not None:
        if hit.operator.name == operator.name:
            return hit
        # Same structure, different name: re-score the winning dataflow
        # against the caller's operator so names in the report are right.
        report = memory_access(operator, hit.dataflow, convention)
        regime = (
            None if hit.regime is None else classify_buffer(operator, buffer_elems)
        )
        return IntraResult(
            operator=operator,
            dataflow=hit.dataflow,
            report=report,
            regime=regime,
            label=hit.label,
        )
    result = optimize_intra(operator, buffer_elems, convention)
    _cache.put(key, result)
    return result


def fused_segment_key(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    convention: PartialSumConvention,
    medium: FusionMedium,
    register_elems: Optional[int],
) -> Tuple:
    """Exact cache key for one fused-segment optimization problem.

    Unlike :func:`operator_signature` this includes operator *names*:
    a :class:`~repro.core.fusion.FusedResult` embeds its chain (tensors
    and all), so sharing entries across renamed chains would require a
    full rebuild on every hit.  Name-keyed entries still collapse the
    dominant repetition -- search layers re-costing one segment many
    times.
    """

    return (
        tuple((op.name, operator_signature(op)) for op in ops),
        buffer_elems,
        convention.value,
        medium.value,
        register_elems,
    )


def cached_optimize_fused(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
):
    """Memoized :func:`repro.core.fusion.optimize_fused` (memory medium etc.).

    Infeasible outcomes (``None``) are cached too -- the enumerative DAG
    mapper asks about the same impossible segment across many candidate
    partitions, and re-deriving "does not fit" each time is as expensive
    as re-deriving a feasible dataflow.
    """

    key = fused_segment_key(ops, buffer_elems, convention, medium, register_elems)
    hit = _fused_cache.get(key)
    if hit is not None:
        return hit[0]
    result = optimize_fused(
        list(ops),
        buffer_elems,
        convention=convention,
        medium=medium,
        register_elems=register_elems,
    )
    _fused_cache.put(key, (result,))
    return result


def intra_cache_stats() -> CacheStats:
    """Counters of the shared intra-operator cache."""
    return _cache.stats()


def fused_cache_stats() -> CacheStats:
    """Counters of the shared fused-segment cache."""
    return _fused_cache.stats()


def clear_intra_cache() -> None:
    """Drop all entries and reset counters (mainly for tests)."""
    _cache.clear()
    _cache.reset_stats()


def clear_fused_cache() -> None:
    """Drop all fused-segment entries and reset counters."""
    _fused_cache.clear()
    _fused_cache.reset_stats()


def configure_intra_cache(maxsize: int) -> None:
    """Replace the shared cache with a fresh one bounded at ``maxsize``."""
    global _cache
    _cache = LRUCache(maxsize)
