"""Deterministic fault injection for the batch service.

The resilience layer (retries, deadlines, degradation) is only as
trustworthy as the failures it has been proven against.  This module
injects failures *deterministically* -- selection is by request-key
pattern and seeded hash, never by wall clock or global randomness -- so a
faulty run is exactly reproducible and byte-identical across ``--jobs``
settings.

Spec grammar (``;``-separated clauses)::

    SPEC   := CLAUSE (";" CLAUSE)*
    CLAUSE := ACTION ":" PATTERN (":" KEY "=" VALUE)*
    ACTION := "raise" | "delay" | "crash" | "corrupt"

``PATTERN`` is an :mod:`fnmatch` glob matched against the request kind
(``intra``), the request key (a SHA-256 hex digest, so prefixes like
``ab12*`` work), and ``kind:key``.  Options:

=============  ==========================================================
``times=N``    inject only the first N attempts *per request key, per
               process* (default: every attempt)
``seconds=S``  sleep duration for ``delay`` (default 0.05)
``hard=1``     ``delay`` ignores cooperative deadline checks -- simulates
               a worker that never yields (tests preemptive timeouts)
``category=C`` ``raise`` category: ``transient`` or ``permanent``
               (default transient, so retry paths get exercised)
``p=F``        inject with probability F, decided by a seeded hash of
               the request key (deterministic per key)
``seed=N``     seed for ``p`` (default 0)
``after=N``    ``exit`` only: die after the Nth completed request of the
               batch (default 1)
=============  ==========================================================

Actions:

* ``raise``   -- raise :class:`~repro.service.errors.InjectedFaultError`
* ``delay``   -- sleep ``seconds``, checking the cooperative deadline in
  slices (unless ``hard=1``)
* ``crash``   -- die like a real worker: ``os._exit`` inside a process
  pool child (breaking the pool), :class:`WorkerCrashError` in a
  thread/serial worker
* ``corrupt`` -- mangle the result payload after its integrity digest is
  taken, so the engine's checksum verification catches it
* ``exit``    -- crash-after-n-completions: kill the *whole batch
  process* once ``after=N`` requests have finished, proving the
  write-ahead journal's recovery path.  Soft by default
  (:class:`~repro.service.errors.BatchAbortError`, a ``BaseException``
  that tears through the engine like a real death but keeps the test
  process alive); ``hard=1`` calls ``os._exit`` for true process death

Activation: :func:`set_fault_plan` (in-process), the
:func:`injected_faults` context manager (tests), or the ``REPRO_FAULTS``
environment variable (read lazily once per process, which is how spawned
process-pool workers inherit the plan).  The CLI flag
``repro batch --inject-faults`` is additionally gated on
``REPRO_ENABLE_FAULT_INJECTION=1`` so the harness cannot be reached from
production invocations by accident.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import (
    PERMANENT,
    TRANSIENT,
    BatchAbortError,
    InjectedFaultError,
    WorkerCrashError,
)
from .resilience import Deadline

#: Environment variable holding an active fault spec (workers inherit it).
FAULTS_ENV = "REPRO_FAULTS"
#: Environment guard for the CLI dev flag.
FAULTS_GUARD_ENV = "REPRO_ENABLE_FAULT_INJECTION"

ACTIONS = ("raise", "delay", "crash", "corrupt", "exit")

#: Process exit status used by the ``exit`` fault's ``hard=1`` variant
#: (a simulated OOM-kill / power loss, distinguishable from real crashes).
ABORT_EXIT_STATUS = 86

#: Sentinel payload a ``corrupt`` fault swaps in for the real result.
CORRUPTED_RESULT = {"__corrupted__": True}


class FaultSpecError(ValueError):
    """Raised for a malformed fault-injection spec."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    action: str
    pattern: str
    times: Optional[int] = None
    seconds: float = 0.05
    hard: bool = False
    category: str = TRANSIENT
    probability: Optional[float] = None
    seed: int = 0
    after: int = 1

    def matches(self, kind: Optional[str], key: Optional[str]) -> bool:
        candidates = [c for c in (kind, key) if c is not None]
        if kind is not None and key is not None:
            candidates.append(f"{kind}:{key}")
        if not any(fnmatchcase(c, self.pattern) for c in candidates):
            return False
        if self.probability is not None:
            digest = hashlib.sha256(
                f"{self.seed}:{key or kind}".encode("utf-8")
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
            if fraction >= self.probability:
                return False
        return True


def _parse_clause(text: str, position: int) -> FaultClause:
    parts = [part.strip() for part in text.split(":")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise FaultSpecError(
            f"clause {position}: expected 'action:pattern[:k=v...]', "
            f"got {text!r}"
        )
    action, pattern = parts[0], parts[1]
    if action not in ACTIONS:
        raise FaultSpecError(
            f"clause {position}: unknown action {action!r}; "
            f"choose from {', '.join(ACTIONS)}"
        )
    options: Dict[str, str] = {}
    for raw in parts[2:]:
        if "=" not in raw:
            raise FaultSpecError(
                f"clause {position}: option {raw!r} is not 'key=value'"
            )
        name, value = raw.split("=", 1)
        options[name.strip()] = value.strip()
    try:
        times = int(options.pop("times")) if "times" in options else None
        seconds = float(options.pop("seconds", 0.05))
        hard = options.pop("hard", "0") not in ("0", "", "false")
        category = options.pop("category", TRANSIENT)
        probability = (
            float(options.pop("p")) if "p" in options else None
        )
        seed = int(options.pop("seed", 0))
        after = int(options.pop("after", 1))
    except ValueError as exc:
        raise FaultSpecError(f"clause {position}: {exc}") from None
    if options:
        raise FaultSpecError(
            f"clause {position}: unknown options {sorted(options)}"
        )
    if category not in (TRANSIENT, PERMANENT):
        raise FaultSpecError(
            f"clause {position}: category must be "
            f"'{TRANSIENT}' or '{PERMANENT}', got {category!r}"
        )
    if times is not None and times < 1:
        raise FaultSpecError(f"clause {position}: times must be >= 1")
    if seconds < 0:
        raise FaultSpecError(f"clause {position}: seconds must be >= 0")
    if probability is not None and not 0.0 <= probability <= 1.0:
        raise FaultSpecError(f"clause {position}: p must be in [0, 1]")
    if after < 1:
        raise FaultSpecError(f"clause {position}: after must be >= 1")
    if action == "exit" and times is None:
        # A simulated process death fires once per process by default;
        # an unconditional repeat would kill every resume attempt too.
        times = 1
    return FaultClause(
        action=action,
        pattern=pattern,
        times=times,
        seconds=seconds,
        hard=hard,
        category=category,
        probability=probability,
        seed=seed,
        after=after,
    )


def parse_fault_spec(spec: str) -> "FaultPlan":
    """Parse a spec string into an executable :class:`FaultPlan`."""
    clauses = [
        _parse_clause(chunk.strip(), position)
        for position, chunk in enumerate(spec.split(";"))
        if chunk.strip()
    ]
    if not clauses:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    return FaultPlan(clauses, spec=spec)


class FaultPlan:
    """An active set of fault clauses with per-key injection counters.

    Counters are per ``(clause, request key)`` and per process: a clause
    with ``times=1`` faults the first attempt of each matching request in
    each process, then stands aside -- which is exactly the shape needed
    to prove retry-then-succeed paths.
    """

    def __init__(self, clauses: List[FaultClause], spec: str = ""):
        self.clauses = list(clauses)
        self.spec = spec
        self._counts: Dict[Tuple[int, str], int] = {}
        self._lock = threading.Lock()

    def _consume(
        self, index: int, clause: FaultClause, key: Optional[str]
    ) -> bool:
        """Check the ``times`` budget for (clause, key) and spend one."""
        if clause.times is None:
            return True
        counter_key = (index, key or "")
        with self._lock:
            used = self._counts.get(counter_key, 0)
            if used >= clause.times:
                return False
            self._counts[counter_key] = used + 1
            return True

    def apply(
        self,
        kind: Optional[str],
        key: Optional[str],
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Run raise/delay/crash clauses matching this request attempt."""
        for index, clause in enumerate(self.clauses):
            if clause.action in ("corrupt", "exit"):
                continue
            if not clause.matches(kind, key):
                continue
            if not self._consume(index, clause, key):
                continue
            if clause.action == "raise":
                raise InjectedFaultError(
                    f"injected fault for {kind or '?'} "
                    f"(pattern {clause.pattern!r})",
                    category=clause.category,
                )
            if clause.action == "crash":
                self._crash(kind)
            elif clause.action == "delay":
                self._delay(clause, deadline)

    def should_corrupt(self, kind: Optional[str], key: Optional[str]) -> bool:
        """Whether a ``corrupt`` clause claims this (successful) attempt."""
        for index, clause in enumerate(self.clauses):
            if clause.action != "corrupt":
                continue
            if not clause.matches(kind, key):
                continue
            if self._consume(index, clause, key):
                return True
        return False

    def maybe_abort(self, completions: int) -> None:
        """Fire any due ``exit`` clause: the crash-after-n-completions.

        Called by the engine after each request finishes (and is
        journaled), with the running completion count for this batch.
        A soft abort raises :class:`BatchAbortError` straight through
        every ``except Exception`` in the stack; ``hard=1`` exits the
        process outright (status :data:`ABORT_EXIT_STATUS`).
        """

        for index, clause in enumerate(self.clauses):
            if clause.action != "exit":
                continue
            if completions < clause.after:
                continue
            if not self._consume(index, clause, "__batch__"):
                continue
            if clause.hard:
                os._exit(ABORT_EXIT_STATUS)
            raise BatchAbortError(
                f"injected batch abort after {completions} completions "
                f"(clause {clause.pattern!r} after={clause.after})"
            )

    @staticmethod
    def _crash(kind: Optional[str]) -> None:
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            # A real worker crash: kill this pool child without cleanup,
            # which surfaces as BrokenProcessPool in the engine.
            os._exit(87)
        raise WorkerCrashError(
            f"injected worker crash for {kind or '?'} (in-process worker)"
        )

    @staticmethod
    def _delay(clause: FaultClause, deadline: Optional[Deadline]) -> None:
        if clause.hard or deadline is None:
            time.sleep(clause.seconds)
            return
        # Cooperative delay: sleep in slices, honoring the deadline the
        # way a well-behaved long computation would.
        remaining = clause.seconds
        while remaining > 0:
            deadline.check("injected delay")
            slice_seconds = min(remaining, 0.01)
            time.sleep(slice_seconds)
            remaining -= slice_seconds
        if deadline is not None:
            deadline.check("injected delay")


# ----------------------------------------------------------------------
# Per-process activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False
_ACTIVATION_LOCK = threading.Lock()


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide fault plan."""
    global _ACTIVE, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        _ACTIVE = plan
        # An explicit set (even to None) overrides env discovery.
        _ENV_CHECKED = True


def reset_fault_state() -> None:
    """Forget any plan *and* re-enable env discovery (test isolation)."""
    global _ACTIVE, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False


def active_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan, discovering ``REPRO_FAULTS`` lazily once.

    Lazy env discovery is what lets *spawned* process-pool workers (fresh
    interpreters that re-import this module) pick up the plan: the parent
    exports the spec into the environment and each child parses it on its
    first request.
    """

    global _ACTIVE, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        if not _ENV_CHECKED:
            _ENV_CHECKED = True
            spec = os.environ.get(FAULTS_ENV)
            if spec:
                _ACTIVE = parse_fault_spec(spec)
        return _ACTIVE


@contextmanager
def injected_faults(spec: str, export_env: bool = False) -> Iterator[FaultPlan]:
    """Context manager installing a plan for the duration of a block.

    ``export_env=True`` additionally exports the spec to ``REPRO_FAULTS``
    so process-pool children (including spawn-start-method ones) inherit
    it.
    """

    plan = parse_fault_spec(spec)
    previous_env = os.environ.get(FAULTS_ENV)
    set_fault_plan(plan)
    if export_env:
        os.environ[FAULTS_ENV] = spec
    try:
        yield plan
    finally:
        reset_fault_state()
        if export_env:
            if previous_env is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = previous_env
