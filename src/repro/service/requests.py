"""Structured analysis requests and their content-addressed keys.

Every query the library can answer from the command line has a request
form here: a ``kind`` naming the analysis plus a flat ``params`` mapping.
Requests are *canonicalized* -- defaults applied, values coerced, keys
sorted -- so that two payloads meaning the same analysis always produce the
same :func:`request_key` (a SHA-256 digest of the canonical JSON), no
matter the insertion order or representation of the incoming dict.  The
key is what the engine's result cache is addressed by.

Request kinds
-------------
``intra``             optimize one ``M x K x L`` matmul at a buffer size
``fusion``            fusion decision for an ``(M,K,L) -> (M,L,N)`` chain
``graph_plan``        graph-level fusion plan for a Table II model
``dag_plan``          DAG-scale plan (joins + retention) for a scenario
``platform_compare``  Fig. 10-style platform comparison for one model
``sweep_point``       one (operator, buffer) point of the MA(BS) sweep
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple


class RequestError(ValueError):
    """Raised for malformed or unknown analysis requests.

    ``kind`` carries the request kind when it was recognizable, so the
    service's circuit breaker can attribute parse failures to a kind
    even though the request never reached a worker.
    """

    def __init__(self, message: str, kind: Optional[str] = None):
        super().__init__(message)
        self.kind = kind


#: Per-kind parameter schema: name -> (type, required, default).
_BOOL = "bool"
_INT = "int"
_STR = "str"

_SCHEMAS: Dict[str, Dict[str, Tuple[str, bool, Any]]] = {
    "intra": {
        "m": (_INT, True, None),
        "k": (_INT, True, None),
        "l": (_INT, True, None),
        "buffer_elems": (_INT, True, None),
        "convention": (_STR, False, "single"),
        "certify": (_BOOL, False, False),
        "paranoid": (_BOOL, False, False),
    },
    "fusion": {
        "m": (_INT, True, None),
        "k": (_INT, True, None),
        "l": (_INT, True, None),
        "n": (_INT, True, None),
        "buffer_elems": (_INT, True, None),
        "include_cross": (_BOOL, False, False),
        "convention": (_STR, False, "single"),
        "certify": (_BOOL, False, False),
        "paranoid": (_BOOL, False, False),
    },
    "graph_plan": {
        "model": (_STR, True, None),
        "buffer_elems": (_INT, True, None),
        "enable_fusion": (_BOOL, False, True),
        "max_group": (_INT, False, 3),
    },
    "dag_plan": {
        "scenario": (_STR, True, None),
        "buffer_elems": (_INT, True, None),
        "model": (_STR, False, ""),
        "enable_fusion": (_BOOL, False, True),
        "max_group": (_INT, False, 3),
        "retention": (_BOOL, False, True),
        "baseline": (_BOOL, False, False),
        "budget": (_INT, False, 4096),
        "certify": (_BOOL, False, False),
        "paranoid": (_BOOL, False, False),
    },
    "platform_compare": {
        "model": (_STR, True, None),
        "buffer_elems": (_INT, True, None),
    },
    "sweep_point": {
        "m": (_INT, True, None),
        "k": (_INT, True, None),
        "l": (_INT, True, None),
        "buffer_elems": (_INT, True, None),
        "convention": (_STR, False, "single"),
    },
}

REQUEST_KINDS: Tuple[str, ...] = tuple(sorted(_SCHEMAS))

#: Request kinds that understand the ``certify``/``paranoid`` params.
PARANOID_KINDS: Tuple[str, ...] = tuple(
    sorted(kind for kind, schema in _SCHEMAS.items() if "paranoid" in schema)
)


@dataclass(frozen=True)
class AnalysisRequest:
    """One canonicalized analysis query.

    Construct through :func:`parse_request` (or the ``*_request`` helpers),
    which validate and normalize; ``params`` holds the full canonical
    parameter set with defaults applied.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def canonical_payload(self) -> Dict[str, Any]:
        """The canonical JSON-able form (sorted params, defaults applied)."""
        return {"kind": self.kind, "params": dict(self.params)}


def _coerce(kind: str, name: str, spec: str, value: Any) -> Any:
    if spec == _INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise RequestError(
                f"{kind} request: param {name!r} must be an integer, "
                f"got {value!r}",
                kind=kind,
            )
        return int(value)
    if spec == _BOOL:
        if not isinstance(value, bool):
            raise RequestError(
                f"{kind} request: param {name!r} must be a boolean, "
                f"got {value!r}",
                kind=kind,
            )
        return bool(value)
    if not isinstance(value, str):
        raise RequestError(
            f"{kind} request: param {name!r} must be a string, got {value!r}",
            kind=kind,
        )
    return str(value)


def parse_request(payload: Mapping[str, Any]) -> AnalysisRequest:
    """Validate and canonicalize a raw request mapping.

    Accepts either ``{"kind": ..., "params": {...}}`` or the flat form
    ``{"kind": ..., <param>: ...}``.  Unknown kinds, unknown params, missing
    required params, and wrong types all raise :class:`RequestError`.
    """

    if not isinstance(payload, Mapping):
        raise RequestError(f"request must be a mapping, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in _SCHEMAS:
        raise RequestError(
            f"unknown request kind {kind!r}; choose from {', '.join(REQUEST_KINDS)}"
        )
    raw = payload.get("params")
    if raw is None:
        raw = {key: value for key, value in payload.items() if key != "kind"}
    if not isinstance(raw, Mapping):
        raise RequestError(
            f"{kind} request: params must be a mapping", kind=kind
        )
    schema = _SCHEMAS[kind]
    unknown = sorted(set(raw) - set(schema))
    if unknown:
        raise RequestError(
            f"{kind} request: unknown params {unknown}", kind=kind
        )
    params: Dict[str, Any] = {}
    for name, (spec, required, default) in schema.items():
        if name in raw:
            params[name] = _coerce(kind, name, spec, raw[name])
        elif required:
            raise RequestError(
                f"{kind} request: missing required param {name!r}",
                kind=kind,
            )
        else:
            params[name] = default
    return AnalysisRequest(
        kind=kind, params=tuple(sorted(params.items()))
    )


def apply_paranoid(request: AnalysisRequest) -> AnalysisRequest:
    """Rewrite a request to run under paranoid certification.

    Kinds that do not understand the ``paranoid`` param pass through
    untouched.  Note the rewrite changes the request's canonical payload
    and therefore its :func:`request_key` -- paranoid and ordinary runs of
    the same analysis are distinct cache entries by design (their result
    records differ: only the former carries a certificate).
    """

    if request.kind not in PARANOID_KINDS:
        return request
    params = request.param_dict
    if params.get("paranoid"):
        return request
    params["paranoid"] = True
    return AnalysisRequest(
        kind=request.kind, params=tuple(sorted(params.items()))
    )


def request_key(request: AnalysisRequest) -> str:
    """Stable content-addressed key: SHA-256 over the canonical JSON."""
    canonical = json.dumps(
        request.canonical_payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def intra_request(
    m: int,
    k: int,
    l: int,
    buffer_elems: int,
    convention: str = "single",
    certify: bool = False,
    paranoid: bool = False,
) -> AnalysisRequest:
    return parse_request(
        {
            "kind": "intra",
            "m": m, "k": k, "l": l,
            "buffer_elems": buffer_elems,
            "convention": convention,
            "certify": certify,
            "paranoid": paranoid,
        }
    )


def fusion_request(
    m: int,
    k: int,
    l: int,
    n: int,
    buffer_elems: int,
    include_cross: bool = False,
    convention: str = "single",
    certify: bool = False,
    paranoid: bool = False,
) -> AnalysisRequest:
    return parse_request(
        {
            "kind": "fusion",
            "m": m, "k": k, "l": l, "n": n,
            "buffer_elems": buffer_elems,
            "include_cross": include_cross,
            "convention": convention,
            "certify": certify,
            "paranoid": paranoid,
        }
    )


def graph_plan_request(
    model: str,
    buffer_elems: int,
    enable_fusion: bool = True,
    max_group: int = 3,
) -> AnalysisRequest:
    return parse_request(
        {
            "kind": "graph_plan",
            "model": model,
            "buffer_elems": buffer_elems,
            "enable_fusion": enable_fusion,
            "max_group": max_group,
        }
    )


def dag_plan_request(
    scenario: str,
    buffer_elems: int,
    model: str = "",
    enable_fusion: bool = True,
    max_group: int = 3,
    retention: bool = True,
    baseline: bool = False,
    budget: int = 4096,
    certify: bool = False,
    paranoid: bool = False,
) -> AnalysisRequest:
    return parse_request(
        {
            "kind": "dag_plan",
            "scenario": scenario,
            "buffer_elems": buffer_elems,
            "model": model,
            "enable_fusion": enable_fusion,
            "max_group": max_group,
            "retention": retention,
            "baseline": baseline,
            "budget": budget,
            "certify": certify,
            "paranoid": paranoid,
        }
    )


def platform_compare_request(model: str, buffer_elems: int) -> AnalysisRequest:
    return parse_request(
        {"kind": "platform_compare", "model": model, "buffer_elems": buffer_elems}
    )


def sweep_point_request(
    m: int, k: int, l: int, buffer_elems: int, convention: str = "single"
) -> AnalysisRequest:
    return parse_request(
        {
            "kind": "sweep_point",
            "m": m, "k": k, "l": l,
            "buffer_elems": buffer_elems,
            "convention": convention,
        }
    )
