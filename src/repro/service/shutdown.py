"""Graceful SIGINT/SIGTERM shutdown for long-running batches.

:func:`shutdown_guard` wraps a batch run with signal handlers that turn
the *first* SIGINT/SIGTERM into a cooperative stop request (a
``threading.Event`` the engine polls between completions) instead of an
immediate ``KeyboardInterrupt`` tearing through half-journaled state.
The engine then stops dispatching, drains finished in-flight work into
the journal, and raises :class:`~repro.service.engine.BatchInterrupted`
so the caller can flush caches and exit with the distinct
"interrupted, resumable" exit code.

A *second* signal escalates: the handlers are restored and the default
behavior (``KeyboardInterrupt`` / termination) applies, so a wedged
drain can always be killed the old-fashioned way.

Signal handlers can only be installed from the main thread; elsewhere
(e.g. an engine embedded in a server worker thread) the guard degrades
to a plain event the host is free to set itself.
"""

from __future__ import annotations

import signal
import sys
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

#: Exit code for "interrupted, but the journal makes it resumable".
#: 75 is BSD sysexits' EX_TEMPFAIL: temporary failure, retry invited --
#: distinct from 1 (batch errors under --strict) and 2 (usage errors).
RESUMABLE_EXIT_CODE = 75

_GUARDED_SIGNALS = ("SIGINT", "SIGTERM")


class ShutdownRequested:
    """A stop request shared between signal handlers and the engine."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signal_name: Optional[str] = None

    def request(self, signal_name: str = "request") -> None:
        if self.signal_name is None:
            self.signal_name = signal_name
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


@contextmanager
def shutdown_guard(
    announce: bool = True,
) -> Iterator[ShutdownRequested]:
    """Install first-signal-graceful, second-signal-hard handlers.

    Yields the :class:`ShutdownRequested` to pass as the engine's
    ``stop_event``.  Handlers are restored on exit no matter how the
    block leaves.
    """

    stop = ShutdownRequested()
    previous = {}

    def _handler(signum: int, frame: object) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - exotic platform
            name = str(signum)
        if stop.is_set():
            # Second signal: stop being polite.
            _restore()
            raise KeyboardInterrupt(name)
        if announce:
            print(
                f"{name} received: finishing in-flight work, flushing the "
                "journal; signal again to force quit",
                file=sys.stderr,
            )
        stop.request(name)

    def _restore() -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        previous.clear()

    for name in _GUARDED_SIGNALS:
        signum = getattr(signal, name, None)
        if signum is None:  # pragma: no cover - platform without SIGTERM
            continue
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:
            # Not the main thread: no handlers, but the event still
            # works as a host-driven stop flag.
            break
    try:
        yield stop
    finally:
        _restore()
