"""Lightweight observability primitives for the batch engine.

Monotonic-clock stopwatches, a thread-safe counter registry, and a
bounded latency reservoir with percentile summaries -- enough to meter a
batch (wall time, per-request latency distribution, error/dedup counts)
without pulling in a metrics framework.  The engine snapshots these into
each :class:`repro.service.report.BatchReport`; the serving daemon keeps
a process-lifetime reservoir for ``GET /metrics``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union


class Stopwatch:
    """A monotonic-clock stopwatch.

    ``Stopwatch()`` starts running; :meth:`elapsed` reads without stopping,
    :meth:`stop` freezes the reading.
    """

    def __init__(self) -> None:
        self._start = time.monotonic()
        self._stopped: float = -1.0

    def elapsed(self) -> float:
        if self._stopped >= 0.0:
            return self._stopped
        return time.monotonic() - self._start

    def stop(self) -> float:
        if self._stopped < 0.0:
            self._stopped = time.monotonic() - self._start
        return self._stopped


class CounterRegistry:
    """Named monotonically-increasing counters (thread-safe)."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> int:
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def merge(self, other: Mapping[str, int]) -> None:
        """Fold another registry's counts in (e.g. per-batch -> engine)."""
        with self._lock:
            for name, amount in other.items():
                self._counters[name] = self._counters.get(name, 0) + amount

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))


class LatencyReservoir:
    """A bounded, deterministic latency sample with percentile summaries.

    Holds at most ``capacity`` samples no matter how many are recorded.
    When full it *decimates*: every other retained sample is dropped and
    the acceptance stride doubles, leaving a uniform systematic sample
    of the whole stream -- no randomness involved, so summaries are
    reproducible run to run (classic reservoir sampling would make
    p-quantiles flutter across identical runs).

    ``count``/``mean``/``max`` are exact over *all* recorded values;
    only the percentile estimates come from the bounded sample.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = capacity
        self._samples: List[float] = []
        self._stride = 1
        self._skipped = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            self._skipped += 1
            if self._skipped < self._stride:
                return
            self._skipped = 0
            self._samples.append(seconds)
            if len(self._samples) >= self.capacity:
                self._samples = self._samples[::2]
                self._stride *= 2

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile over the sample; None when empty."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        rank = max(1, math.ceil(fraction * len(samples)))
        return samples[min(rank, len(samples)) - 1]

    # ------------------------------------------------------------------
    # State transfer + merging (cross-process aggregation)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The reservoir's full state as pure JSON (for IPC / persistence).

        Round-trips through :meth:`from_state`; a shard worker ships this
        over the wire so the router can :meth:`merge` reservoirs without
        losing the exact ``count``/``mean``/``max`` bookkeeping.
        """

        with self._lock:
            return {
                "capacity": self.capacity,
                "count": self._count,
                "total": self._total,
                "max": self._max,
                "stride": self._stride,
                "skipped": self._skipped,
                "samples": list(self._samples),
            }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "LatencyReservoir":
        """Rebuild a reservoir from :meth:`state_dict` output."""
        reservoir = cls(capacity=int(state.get("capacity", 512)))
        reservoir._count = int(state.get("count", 0))
        reservoir._total = float(state.get("total", 0.0))
        reservoir._max = float(state.get("max", 0.0))
        reservoir._stride = max(1, int(state.get("stride", 1)))
        reservoir._skipped = int(state.get("skipped", 0))
        reservoir._samples = [float(v) for v in state.get("samples", [])]
        return reservoir

    def merge(self, other: Union["LatencyReservoir", Mapping[str, Any]]) -> None:
        """Fold another reservoir's samples in, deterministically.

        The exact counters (``count``/``total``/``max``) simply add; the
        bounded sample is combined by *deterministic decimation*: both
        sides are first thinned to the coarser of the two strides (keep
        every ``stride_ratio``-th sample, oldest first -- the same
        systematic rule :meth:`record` applies), concatenated self-first,
        then halved until the capacity bound holds.  No randomness
        anywhere, so merging the same shard states in the same order
        always yields the same percentile summary.

        Merge order matters (self's samples precede the other's before
        any final decimation); callers aggregating several reservoirs
        should merge in a fixed order -- the shard router merges in
        shard-id order -- to keep aggregates reproducible.
        """

        if isinstance(other, LatencyReservoir):
            state = other.state_dict()
        else:
            state = dict(other)
        other_samples = [float(v) for v in state.get("samples", [])]
        other_stride = max(1, int(state.get("stride", 1)))
        with self._lock:
            self._count += int(state.get("count", 0))
            self._total += float(state.get("total", 0.0))
            self._max = max(self._max, float(state.get("max", 0.0)))
            stride = max(self._stride, other_stride)
            mine = self._decimated(self._samples, self._stride, stride)
            theirs = self._decimated(other_samples, other_stride, stride)
            samples = mine + theirs
            while len(samples) >= self.capacity:
                samples = samples[::2]
                stride *= 2
            self._samples = samples
            self._stride = stride
            self._skipped = 0

    @staticmethod
    def _decimated(
        samples: List[float], stride: int, target_stride: int
    ) -> List[float]:
        """Thin a systematic sample from ``stride`` to ``target_stride``."""
        if target_stride <= stride or not samples:
            return list(samples)
        ratio = max(1, target_stride // stride)
        return samples[::ratio]

    def summary(self, digits: int = 6) -> Dict[str, Any]:
        """Counters + p50/p95/p99 in one JSON-able dict."""
        with self._lock:
            count = self._count
            total = self._total
            maximum = self._max
            samples = sorted(self._samples)

        def rank(fraction: float) -> Optional[float]:
            if not samples:
                return None
            position = max(1, math.ceil(fraction * len(samples)))
            return round(samples[min(position, len(samples)) - 1], digits)

        return {
            "count": count,
            "mean": round(total / count, digits) if count else 0.0,
            "max": round(maximum, digits),
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "samples": len(samples),
        }
