"""Lightweight observability primitives for the batch engine.

Monotonic-clock stopwatches and a thread-safe counter registry -- enough to
meter a batch (wall time, per-request latency, error/dedup counts) without
pulling in a metrics framework.  The engine snapshots these into each
:class:`repro.service.report.BatchReport`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Mapping


class Stopwatch:
    """A monotonic-clock stopwatch.

    ``Stopwatch()`` starts running; :meth:`elapsed` reads without stopping,
    :meth:`stop` freezes the reading.
    """

    def __init__(self) -> None:
        self._start = time.monotonic()
        self._stopped: float = -1.0

    def elapsed(self) -> float:
        if self._stopped >= 0.0:
            return self._stopped
        return time.monotonic() - self._start

    def stop(self) -> float:
        if self._stopped < 0.0:
            self._stopped = time.monotonic() - self._start
        return self._stopped


class CounterRegistry:
    """Named monotonically-increasing counters (thread-safe)."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> int:
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def merge(self, other: Mapping[str, int]) -> None:
        """Fold another registry's counts in (e.g. per-batch -> engine)."""
        with self._lock:
            for name, amount in other.items():
                self._counters[name] = self._counters.get(name, 0) + amount

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))
