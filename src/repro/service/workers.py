"""Request execution: one pure function per analysis kind.

:func:`run_payload` is the unit of work the engine ships to its pool.  It
is a module-level function of a plain dict returning a plain dict, so it is
picklable for :class:`concurrent.futures.ProcessPoolExecutor` and safe for
thread pools alike.  All failures -- malformed requests, unknown models,
infeasible buffers -- are captured into a structured error record; a worker
never raises, so one poisoned request can never kill a batch.

Results contain only deterministic JSON-able data (no timings, no object
ids), which is what makes ``--jobs 1`` and ``--jobs 4`` batch outputs
byte-identical and cache entries portable across processes.

Resilience hooks: each attempt honors a *cooperative* per-request
deadline (checked between parse and execute -- a thread cannot be
preempted, so well-behaved workers self-enforce), routes through the
process-wide fault-injection plan when one is active, and stamps
successful records with an integrity digest so the engine can detect a
corrupted result envelope and retry it.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, List, Mapping, Optional

from ..arch import ALL_PLATFORMS, MemorySpec, evaluate_graph
from ..core import decide_fusion, optimize_graph, optimize_intra
from ..core.lower_bound import shift_point_band, three_nra_threshold
from ..dataflow.cost import PartialSumConvention
from ..dataflow.serialize import dataflow_to_dict
from ..ir import matmul
from ..workloads import build_layer_graph, model_by_name
from .errors import classify_exception
from .faults import CORRUPTED_RESULT, active_fault_plan
from .requests import AnalysisRequest, parse_request, request_key
from .resilience import Deadline

#: Platform used to normalize comparison rows (the paper's baseline).
COMPARE_BASELINE = "TPUv4i"


def _convention(name: str) -> PartialSumConvention:
    for convention in PartialSumConvention:
        if convention.value == name:
            return convention
    raise ValueError(
        f"unknown partial-sum convention {name!r}; choose from "
        + ", ".join(c.value for c in PartialSumConvention)
    )


def _certification_dict(result: Any) -> Optional[Dict[str, Any]]:
    """JSON form of an attached certificate (ints/strs/bools only)."""
    certificate = getattr(result, "certificate", None)
    return None if certificate is None else certificate.as_dict()


def _intra_result_dict(result: Any) -> Dict[str, Any]:
    record = {
        "operator": result.operator.name,
        "dims": dict(result.operator.dims),
        "memory_access": result.memory_access,
        "ideal": result.operator.ideal_memory_access(),
        "redundancy": round(result.redundancy, 6),
        "nra_class": str(result.nra_class),
        "regime": None if result.regime is None else result.regime.regime.value,
        "label": result.label,
        "dataflow": dataflow_to_dict(result.dataflow),
        "per_tensor": {
            name: {"accesses": entry.accesses, "multiplier": entry.multiplier}
            for name, entry in sorted(result.report.per_tensor.items())
        },
    }
    certification = _certification_dict(result)
    if certification is not None:
        record["certification"] = certification
    return record


def _execute_intra(params: Mapping[str, Any]) -> Dict[str, Any]:
    op = matmul("mm", params["m"], params["k"], params["l"])
    result = optimize_intra(
        op,
        params["buffer_elems"],
        _convention(params["convention"]),
        certify=params.get("certify", False),
        paranoid=params.get("paranoid", False),
    )
    return _intra_result_dict(result)


def _execute_fusion(params: Mapping[str, Any]) -> Dict[str, Any]:
    op1 = matmul("mm1", params["m"], params["k"], params["l"])
    op2 = matmul("mm2", params["m"], params["l"], params["n"], a=op1.output)
    decision = decide_fusion(
        [op1, op2],
        params["buffer_elems"],
        include_cross=params["include_cross"],
        convention=_convention(params["convention"]),
        certify=params.get("certify", False),
        paranoid=params.get("paranoid", False),
    )
    record = {
        "ops": [op.name for op in decision.ops],
        "unfused_memory_access": decision.unfused_memory_access,
        "fused_memory_access": decision.fused_memory_access,
        "profitable": decision.profitable,
        "predicted_profitable": decision.predicted_profitable,
        "saving": round(decision.saving, 6),
        "fused": None if decision.fused is None else decision.fused.describe(),
    }
    certifications = {}
    for intra in decision.unfused:
        certification = _certification_dict(intra)
        if certification is not None:
            certifications[intra.operator.name] = certification
    fused_certification = (
        None if decision.fused is None else _certification_dict(decision.fused)
    )
    if fused_certification is not None:
        certifications["fused"] = fused_certification
    if certifications:
        record["certification"] = certifications
    return record


def _execute_graph_plan(params: Mapping[str, Any]) -> Dict[str, Any]:
    graph = build_layer_graph(model_by_name(params["model"]))
    plan = optimize_graph(
        graph,
        params["buffer_elems"],
        enable_fusion=params["enable_fusion"],
        max_group=params["max_group"],
    )
    return {
        "model": params["model"],
        "graph": plan.graph_name,
        "total_memory_access": plan.memory_access,
        "segments": [
            {
                "ops": [op.name for op in segment.ops],
                "fused": segment.fused,
                "memory_access": segment.memory_access,
            }
            for segment in plan.segments
        ],
    }


def _execute_dag_plan(params: Mapping[str, Any]) -> Dict[str, Any]:
    from ..plan import enumerate_plans, plan_dag, scenario_graph

    graph = scenario_graph(params["scenario"], params["model"] or None)
    buffer_elems = params["buffer_elems"]
    knobs = dict(
        enable_fusion=params["enable_fusion"],
        max_group=params["max_group"],
    )
    certify = params.get("certify", False) or params.get("paranoid", False)
    if certify:
        from ..verify import certify_plan

        certified = certify_plan(
            graph,
            buffer_elems,
            enable_retention=params["retention"],
            paranoid=params.get("paranoid", False),
            budget=params["budget"],
            **knobs,
        )
        plan = certified.plan
    else:
        certified = None
        plan = plan_dag(
            graph, buffer_elems, enable_retention=params["retention"], **knobs
        )
    record: Dict[str, Any] = {
        "scenario": params["scenario"],
        "model": params["model"] or None,
        "graph": plan.graph_name,
        "buffer_elems": buffer_elems,
        "method": plan.method,
        "total_memory_access": plan.memory_access,
        "ideal_memory_access": graph.ideal_memory_access(),
        "chain_memory_access": optimize_graph(
            graph, buffer_elems, **knobs
        ).memory_access,
        "retained": list(plan.retained),
        "segments": [
            {
                "ops": [op.name for op in segment.ops],
                "fused": segment.fused,
                "memory_access": segment.memory_access,
                "resident": list(segment.resident),
                "reserved_elems": segment.reserved_elems,
            }
            for segment in plan.segments
        ],
    }
    if params["baseline"]:
        outcome = enumerate_plans(
            graph,
            buffer_elems,
            budget=params["budget"],
            enable_retention=params["retention"],
            **knobs,
        )
        record["baseline"] = {
            "total_memory_access": (
                None if outcome.plan is None else outcome.plan.memory_access
            ),
            "agrees": (
                outcome.plan is not None
                and plan.memory_access <= outcome.plan.memory_access
            ),
            **outcome.stats.as_dict(),
        }
    if certified is not None:
        record["certification"] = certified.certificate.as_dict()
    return record


def _execute_platform_compare(params: Mapping[str, Any]) -> Dict[str, Any]:
    memory = MemorySpec(buffer_bytes=params["buffer_elems"])
    graph = build_layer_graph(model_by_name(params["model"]))
    perfs = {
        factory(memory).name: evaluate_graph(graph, factory(memory))
        for factory in ALL_PLATFORMS
    }
    baseline = perfs[COMPARE_BASELINE]
    rows: List[Dict[str, Any]] = []
    for name, perf in perfs.items():
        rows.append(
            {
                "platform": name,
                "memory_access": perf.total_memory_access,
                "normalized_ma": round(
                    perf.total_memory_access / baseline.total_memory_access, 6
                ),
                "utilization": round(perf.utilization, 6),
                "speedup": round(perf.speedup_over(baseline), 6),
            }
        )
    return {
        "model": params["model"],
        "baseline": COMPARE_BASELINE,
        "rows": rows,
    }


def _execute_sweep_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    op = matmul("mm", params["m"], params["k"], params["l"])
    result = optimize_intra(
        op, params["buffer_elems"], _convention(params["convention"])
    )
    band = shift_point_band(op)
    return {
        "operator": op.name,
        "dims": dict(op.dims),
        "buffer_elems": params["buffer_elems"],
        "memory_access": result.memory_access,
        "ideal": op.ideal_memory_access(),
        "normalized": round(result.redundancy, 6),
        "regime": None if result.regime is None else result.regime.regime.value,
        "nra_class": str(result.nra_class),
        "shift_band": [band[0], band[1]],
        "three_nra_at": three_nra_threshold(op),
    }


_EXECUTORS = {
    "intra": _execute_intra,
    "fusion": _execute_fusion,
    "graph_plan": _execute_graph_plan,
    "dag_plan": _execute_dag_plan,
    "platform_compare": _execute_platform_compare,
    "sweep_point": _execute_sweep_point,
}


def execute_request(
    request: AnalysisRequest, deadline: Optional[Deadline] = None
) -> Dict[str, Any]:
    """Execute one canonical request; raises on failure.

    This is the fault-injection point: when a plan is active (set
    in-process or inherited via ``REPRO_FAULTS``), matching raise /
    delay / crash clauses fire here, before the real computation.
    """

    key = request_key(request)
    plan = active_fault_plan()
    if plan is not None:
        plan.apply(request.kind, key, deadline)
    if deadline is not None:
        deadline.check(f"{request.kind} request")
    return _EXECUTORS[request.kind](request.param_dict)


def result_digest(result: Any) -> str:
    """Integrity digest of a result payload (canonical JSON, SHA-256)."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_payload(
    payload: Mapping[str, Any],
    deadline_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Parse + execute a raw request payload with full error capture.

    Returns a record shaped for the batch output stream::

        {"key": ..., "kind": ..., "ok": true,  "result": {...}, "seconds": ...}
        {"key": ..., "kind": ..., "ok": false, "error": {...},  "seconds": ...}

    ``seconds`` (monotonic wall time of this evaluation) and ``integrity``
    (digest of ``result``, verified by the engine) are stripped from the
    deterministic output stream by the engine/report layers.  Error dicts
    carry a ``category`` field (transient/permanent) so retry decisions
    survive process boundaries.

    ``deadline_seconds`` starts this attempt's cooperative deadline: the
    budget is enforced at safe points here and inside injected delays;
    preemptive enforcement (for workers that never yield) is the engine's
    job.
    """

    started = time.monotonic()
    deadline = (
        Deadline(deadline_seconds) if deadline_seconds is not None else None
    )
    kind = payload.get("kind") if isinstance(payload, Mapping) else None
    try:
        request = parse_request(payload)
        if deadline is not None:
            deadline.check(f"{request.kind} request")
        result = execute_request(request, deadline)
        record: Dict[str, Any] = {
            "key": request_key(request),
            "kind": request.kind,
            "ok": True,
            "result": result,
            "integrity": result_digest(result),
        }
        plan = active_fault_plan()
        if plan is not None and plan.should_corrupt(
            request.kind, record["key"]
        ):
            # Mangle *after* the digest is taken, so the engine's
            # integrity check catches the corruption in transit.
            record["result"] = dict(CORRUPTED_RESULT)
    except Exception as exc:  # noqa: BLE001 - error isolation by design
        record = {
            "key": None,
            "kind": kind if isinstance(kind, str) else None,
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "category": classify_exception(exc),
            },
        }
    record["seconds"] = time.monotonic() - started
    return record
