"""Structured error taxonomy for the batch service.

Every failure the service can observe is classified **transient** (worth
retrying: the same request may succeed on another attempt or another
worker) or **permanent** (deterministic: the request itself is the
problem, so retrying burns cycles for the same answer).  The
classification rides inside each error record as a ``category`` field, so
it survives pickling across process pools, persistence in the result
cache, and replay from a warm cache file.

Transient by construction: deadline overruns, worker crashes, broken
pools, corrupted result envelopes.  Permanent by construction: malformed
requests (:class:`~repro.service.requests.RequestError`), structurally
invalid workloads (:class:`~repro.ir.operator.InvalidWorkloadError` --
zero/negative dims, non-positive or non-integer buffer sizes), infeasible
buffers (:class:`~repro.core.intra.InfeasibleError`), impossible fusions
(:class:`~repro.dataflow.fusion_nest.FusionError`), certification
failures (:class:`~repro.verify.CertificationError` -- the audit recount
is deterministic, so a failed certificate fails identically on every
retry), unknown models, and a tripped circuit breaker.  All of these are
``ValueError`` subclasses outside :data:`_TRANSIENT_NAMES`, so the
name-based default covers them.  Anything unrecognized defaults to
permanent -- retrying an unknown failure mode is how retry storms start.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Category labels carried in error records.
TRANSIENT = "transient"
PERMANENT = "permanent"


class ServiceError(Exception):
    """Base class for errors raised by the service layer itself."""

    category = PERMANENT


class TransientError(ServiceError):
    """A failure worth retrying: infrastructure, not the request."""

    category = TRANSIENT


class PermanentError(ServiceError):
    """A deterministic failure: the request itself cannot succeed."""

    category = PERMANENT


class DeadlineExceededError(TransientError):
    """A request overran its per-request deadline."""


class WorkerCrashError(TransientError):
    """A worker died (or a fault simulated its death) mid-request."""


class PoolBrokenError(TransientError):
    """The executor pool itself broke; the request never completed."""


class CorruptResultError(TransientError):
    """A result record failed its integrity check in transit."""


class CircuitOpenError(PermanentError):
    """The circuit breaker for this request kind is open (failing fast)."""


class InjectedFaultError(ServiceError):
    """Raised by the fault-injection harness (category set per clause)."""

    def __init__(self, message: str, category: str = PERMANENT):
        super().__init__(message)
        self.category = category


class BatchAbortError(BaseException):
    """An injected *process death* (the ``exit`` fault action).

    Deliberately a ``BaseException``: the batch layers catch ``Exception``
    to isolate request failures, and a simulated crash must tear through
    all of them exactly like a real SIGKILL would -- leaving the journal
    behind as the only survivor.  The ``hard=1`` variant calls
    ``os._exit`` instead and never raises at all.
    """


#: Exception type *names* that classify as transient.  Names (not types)
#: because records cross process boundaries as plain dicts, and the cache
#: replays records written by earlier processes.
_TRANSIENT_NAMES = frozenset(
    {
        "BrokenProcessPool",
        "BrokenExecutor",
        "ConnectionError",
        "CorruptResultError",
        "DeadlineExceededError",
        "InterruptedError",
        "PoolBrokenError",
        "TimeoutError",
        "WorkerCrashError",
    }
)


def classify_exception(exc: BaseException) -> str:
    """Classify a live exception object as transient or permanent."""
    if isinstance(exc, ServiceError):
        return exc.category
    if isinstance(exc, (TimeoutError, BrokenPipeError, InterruptedError)):
        return TRANSIENT
    return classify_error_name(type(exc).__name__)


def classify_error_name(name: Optional[str]) -> str:
    """Classify an exception by type name (for records crossing pickles)."""
    return TRANSIENT if name in _TRANSIENT_NAMES else PERMANENT


def error_record(exc: BaseException) -> Dict[str, Any]:
    """The structured error dict carried in batch result records."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "category": classify_exception(exc),
    }


def record_category(record: Dict[str, Any]) -> Optional[str]:
    """Category of a result record: ``None`` for successes.

    Falls back to name-based classification for records written before
    the taxonomy existed (e.g. replayed from an old cache file).
    """

    if record.get("ok"):
        return None
    error = record.get("error") or {}
    category = error.get("category")
    if category in (TRANSIENT, PERMANENT):
        return category
    return classify_error_name(error.get("type"))
