"""Self-verification layer: certificates, audits, and healing fallbacks.

Independently validates optimization results from :mod:`repro.core`
against first-principles recounts (:mod:`repro.verify.audit`), the
Theorem lower bound, and -- in paranoid mode -- a budgeted
branch-and-bound probe with a self-healing fallback
(:mod:`repro.verify.certify`).

Import direction: this package imports :mod:`repro.core` and
:mod:`repro.search`; :mod:`repro.core` only imports it lazily inside the
``certify=``/``paranoid=`` paths, so there is no cycle at import time.
"""

from .audit import (
    audit_footprint,
    audit_fused_footprint,
    audit_fused_memory_access,
    audit_memory_access,
    simulate_memory_access,
)
from .certificate import (
    Certificate,
    CertificationError,
    CheckResult,
    DiscrepancyReport,
)
from .certify import (
    DEFAULT_PROBE_NODES,
    DEFAULT_SIMULATE_LIMIT,
    CertifiedFused,
    CertifiedIntra,
    certify_fused,
    certify_intra,
    drain_discrepancies,
    list_discrepancies,
    record_discrepancy,
)
from .plan_audit import CertifiedPlan, certify_plan

__all__ = [
    "Certificate",
    "CertificationError",
    "CertifiedFused",
    "CertifiedIntra",
    "CertifiedPlan",
    "CheckResult",
    "DEFAULT_PROBE_NODES",
    "DEFAULT_SIMULATE_LIMIT",
    "DiscrepancyReport",
    "audit_footprint",
    "audit_fused_footprint",
    "audit_fused_memory_access",
    "audit_memory_access",
    "certify_fused",
    "certify_intra",
    "certify_plan",
    "drain_discrepancies",
    "list_discrepancies",
    "record_discrepancy",
    "simulate_memory_access",
]
