"""Certification entry points: audit a result, probe it, heal it.

:func:`certify_intra` and :func:`certify_fused` take an optimization
result (or compute one) and re-derive every claim it makes through the
independent counters in :mod:`repro.verify.audit`:

* **feasibility** -- the dataflow's recomputed footprint fits the buffer
  (plus the register-file constraint for compute-unit fusion);
* **cost_audit** -- the claimed memory-access count equals the analytical
  recount of the loop nest;
* **simulation** (intra only) -- a literal tile-by-tile walk of the nest
  agrees too, when the nest is small enough to enumerate;
* **bound** -- the claim respects the Theorem lower bound (the fused ideal
  for chains);
* **regime** / **nra_consistency** / **fusability** -- the structural
  claims (buffer regime, per-operator NRA classes, non-redundant
  intermediates) hold under recomputation.

With ``paranoid=True`` a budgeted branch-and-bound probe cross-checks
optimality.  When the probe certifies a strictly better dataflow -- or the
analytical result fails its own audit -- the probe's dataflow replaces it
(*self-healing fallback*): the returned result is rebuilt from the probe,
re-audited, and the event is recorded as a
:class:`~repro.verify.certificate.DiscrepancyReport` both on the
certificate and in a process-wide registry that batch tooling drains into
its reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.fusion_nest import FusedChain, fused_memory_access
from ..dataflow.spec import NRAClass
from ..search.branch_bound import (
    branch_and_bound_fused_search,
    branch_and_bound_search,
)
from .audit import (
    _ceil_div,
    _fused_tiles,
    _op_order,
    _walk_multiplier,
    audit_footprint,
    audit_fused_footprint,
    audit_fused_memory_access,
    audit_memory_access,
    simulate_memory_access,
)
from .certificate import (
    Certificate,
    CertificationError,
    CheckResult,
    DiscrepancyReport,
)

#: Default node budget for the paranoid branch-and-bound probe.  Enough to
#: prove optimality exactly for BERT-scale operators (~45k nodes) while
#: keeping the probe bounded on adversarial shapes.
DEFAULT_PROBE_NODES = 200_000

#: Default iteration ceiling for the literal nest simulation.
DEFAULT_SIMULATE_LIMIT = 200_000


# ----------------------------------------------------------------------
# Discrepancy registry (drained by the service layer into batch reports)
# ----------------------------------------------------------------------
_registry_lock = threading.Lock()
_registry: List[DiscrepancyReport] = []


def record_discrepancy(report: DiscrepancyReport) -> None:
    with _registry_lock:
        _registry.append(report)


def list_discrepancies() -> Tuple[DiscrepancyReport, ...]:
    with _registry_lock:
        return tuple(_registry)


def drain_discrepancies() -> Tuple[DiscrepancyReport, ...]:
    """Return all recorded discrepancies and clear the registry."""
    with _registry_lock:
        drained = tuple(_registry)
        _registry.clear()
    return drained


# ----------------------------------------------------------------------
# Intra-operator certification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifiedIntra:
    """A (possibly healed) intra result plus its certificate."""

    result: "IntraResult"  # type: ignore[name-defined]  # noqa: F821
    certificate: Certificate


def _intra_checks(
    result,
    buffer_elems: int,
    convention: PartialSumConvention,
    claimed: int,
    simulate_limit: int,
) -> List[CheckResult]:
    from ..core.regimes import classify_buffer

    operator = result.operator
    checks: List[CheckResult] = []

    footprint = audit_footprint(operator, result.dataflow)
    checks.append(
        CheckResult(
            name="feasibility",
            passed=footprint <= buffer_elems,
            claimed=buffer_elems,
            recomputed=footprint,
            detail="recomputed footprint vs buffer capacity",
        )
    )

    recount = audit_memory_access(operator, result.dataflow, convention)
    checks.append(
        CheckResult(
            name="cost_audit",
            passed=recount == claimed,
            claimed=claimed,
            recomputed=recount,
            detail="independent reuse-rule recount",
        )
    )

    simulated = simulate_memory_access(
        operator, result.dataflow, convention, limit=simulate_limit
    )
    if simulated is None:
        checks.append(
            CheckResult(
                name="simulation",
                passed=True,
                detail=f"skipped: nest exceeds {simulate_limit} tile iterations",
            )
        )
    else:
        checks.append(
            CheckResult(
                name="simulation",
                passed=simulated == claimed,
                claimed=claimed,
                recomputed=simulated,
                detail="literal tile-by-tile nest walk",
            )
        )

    # Theorem lower bound: re-run the principle engine from scratch (for
    # streaming operators the engine is itself the single candidate, so the
    # bound degenerates to the infinite-buffer ideal).
    from ..core.intra import optimize_intra

    bound = optimize_intra(operator, buffer_elems, convention).memory_access
    checks.append(
        CheckResult(
            name="bound",
            passed=claimed >= bound,
            claimed=claimed,
            recomputed=bound,
            detail="claimed MA vs Theorem lower bound",
        )
    )

    if result.regime is not None:
        recomputed_regime = classify_buffer(operator, buffer_elems).regime
        checks.append(
            CheckResult(
                name="regime",
                passed=recomputed_regime is result.regime.regime,
                claimed=result.regime.regime.value,
                recomputed=recomputed_regime.value,
                detail="buffer-regime classification",
            )
        )
    return checks


def certify_intra(
    operator: TensorOperator,
    buffer_elems: int,
    result=None,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    claimed_memory_access: Optional[int] = None,
    paranoid: bool = False,
    probe_nodes: int = DEFAULT_PROBE_NODES,
    simulate_limit: int = DEFAULT_SIMULATE_LIMIT,
) -> CertifiedIntra:
    """Independently certify an intra-operator optimization result.

    ``result`` defaults to a fresh :func:`repro.core.intra.optimize_intra`
    run.  ``claimed_memory_access`` overrides the claim under audit (the
    fault-injection hook used by tests and ``repro certify --corrupt-ma``).
    With ``paranoid=True`` a branch-and-bound probe bounded by
    ``probe_nodes`` cross-checks optimality; a strictly better probe
    dataflow -- or any failed check -- triggers the self-healing fallback.
    """

    from ..core.intra import IntraResult, optimize_intra
    from ..core.nra import is_mm_like
    from ..core.regimes import classify_buffer

    buffer_elems = validate_buffer_elems(buffer_elems)
    if result is None:
        result = optimize_intra(operator, buffer_elems, convention)
    claimed = (
        result.memory_access
        if claimed_memory_access is None
        else claimed_memory_access
    )
    checks = _intra_checks(
        result, buffer_elems, convention, claimed, simulate_limit
    )
    discrepancy: Optional[DiscrepancyReport] = None
    healed = False
    failed = any(not check.passed for check in checks)

    if paranoid and is_mm_like(operator):
        probe = branch_and_bound_search(
            operator, buffer_elems, convention, max_nodes=probe_nodes
        )
        if probe is not None and (probe.memory_access < claimed or failed):
            discrepancy = DiscrepancyReport(
                kind="intra",
                subject=operator.name,
                claimed_memory_access=claimed,
                certified_memory_access=probe.memory_access,
                dataflow=probe.dataflow.describe(operator),
                evaluations=probe.evaluations,
                reason="failed_audit" if failed else "probe_beat_analytical",
            )
            record_discrepancy(discrepancy)
            result = IntraResult(
                operator=operator,
                dataflow=probe.dataflow,
                report=memory_access(operator, probe.dataflow, convention),
                regime=classify_buffer(operator, buffer_elems),
                label="branch-and-bound-fallback",
            )
            claimed = result.memory_access
            checks = _intra_checks(
                result, buffer_elems, convention, claimed, simulate_limit
            )
            healed = True
        elif probe is not None:
            checks.append(
                CheckResult(
                    name="optimality_probe",
                    passed=True,
                    claimed=claimed,
                    recomputed=probe.memory_access,
                    detail=f"branch-and-bound probe ({probe.evaluations} nodes)",
                )
            )

    certificate = Certificate(
        kind="intra",
        subject=operator.name,
        buffer_elems=buffer_elems,
        checks=tuple(checks),
        discrepancy=discrepancy,
        healed=healed,
    )
    return CertifiedIntra(
        result=replace(result, certificate=certificate),
        certificate=certificate,
    )


# ----------------------------------------------------------------------
# Fused-chain certification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifiedFused:
    """A (possibly healed) fused result plus its certificate."""

    result: "FusedResult"  # type: ignore[name-defined]  # noqa: F821
    certificate: Certificate


def _fused_checks(
    result,
    buffer_elems: int,
    convention: PartialSumConvention,
    claimed: int,
    register_elems: Optional[int],
) -> List[CheckResult]:
    from ..core.fusion import FusionMedium

    chain: FusedChain = result.chain
    dataflow = result.dataflow
    checks: List[CheckResult] = []
    intermediates = tuple(t.name for t in chain.intermediates())
    compute_unit = result.medium is FusionMedium.COMPUTE_UNIT
    exclude = intermediates if compute_unit else ()

    footprint = audit_fused_footprint(chain, dataflow, exclude=exclude)
    checks.append(
        CheckResult(
            name="feasibility",
            passed=footprint <= buffer_elems,
            claimed=buffer_elems,
            recomputed=footprint,
            detail="recomputed fused footprint vs buffer capacity"
            + (" (intermediates in compute unit)" if compute_unit else ""),
        )
    )

    if compute_unit:
        if register_elems is None:
            checks.append(
                CheckResult(
                    name="registers",
                    passed=False,
                    detail="compute-unit medium but no register capacity given",
                )
            )
        else:
            worst = max(
                (
                    dataflow.tile_elements(chain, name)
                    for name in intermediates
                ),
                default=0,
            )
            checks.append(
                CheckResult(
                    name="registers",
                    passed=worst <= register_elems,
                    claimed=register_elems,
                    recomputed=worst,
                    detail="largest intermediate tile vs register capacity",
                )
            )

    recount, inter_mult = audit_fused_memory_access(
        chain, dataflow, convention
    )
    checks.append(
        CheckResult(
            name="cost_audit",
            passed=recount == claimed,
            claimed=claimed,
            recomputed=recount,
            detail="independent fused reuse-rule recount",
        )
    )
    checks.append(
        CheckResult(
            name="fusability",
            passed=all(m == 1 for m in inter_mult.values()),
            recomputed={name: mult for name, mult in sorted(inter_mult.items())},
            detail="intermediate tensors must be non-redundant",
        )
    )

    bound = chain.ideal_memory_access()
    checks.append(
        CheckResult(
            name="bound",
            passed=claimed >= bound,
            claimed=claimed,
            recomputed=bound,
            detail="claimed MA vs fused infinite-buffer ideal",
        )
    )

    tiles = _fused_tiles(chain, dataflow)
    trips = {
        dim: _ceil_div(extent, tiles[dim])
        for dim, extent in chain.global_dims.items()
    }
    recomputed_nra = []
    for index, op in enumerate(chain.ops):
        order = _op_order(chain, dataflow, index)
        non_redundant = sum(
            1
            for tensor in op.tensors
            if _walk_multiplier(
                order, trips, chain.global_dims_of_tensor(index, tensor.name)
            )
            == 1
        )
        recomputed_nra.append(NRAClass(max(1, min(3, non_redundant))))
    checks.append(
        CheckResult(
            name="nra_consistency",
            passed=tuple(recomputed_nra) == tuple(result.per_op_nra),
            claimed=[cls.value for cls in result.per_op_nra],
            recomputed=[cls.value for cls in recomputed_nra],
            detail="per-operator NRA classes",
        )
    )
    return checks


def _fallback_fused_result(chain: FusedChain, dataflow, convention):
    """Rebuild a FusedResult around a branch-and-bound dataflow."""
    from ..core.fusion import (
        FusedPattern,
        FusedResult,
        FusionMedium,
        Role,
        per_op_nra_classes,
    )

    tiles = _fused_tiles(chain, dataflow)
    roles = {}
    for dim, extent in chain.global_dims.items():
        if tiles[dim] == extent:
            roles[dim] = Role.UNTILE
        elif tiles[dim] == 1:
            roles[dim] = Role.MINIMIZE
        else:
            roles[dim] = Role.MAXIMIZE
    pattern = FusedPattern(
        label="branch-and-bound-fallback", roles=roles, cross_nra=True
    )
    return FusedResult(
        chain=chain,
        pattern=pattern,
        dataflow=dataflow,
        report=fused_memory_access(chain, dataflow, convention),
        per_op_nra=per_op_nra_classes(chain, dataflow),
        medium=FusionMedium.MEMORY,
    )


def certify_fused(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    result=None,
    include_cross: bool = False,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    register_elems: Optional[int] = None,
    claimed_memory_access: Optional[int] = None,
    paranoid: bool = False,
    probe_nodes: int = DEFAULT_PROBE_NODES,
) -> CertifiedFused:
    """Independently certify a fused-chain optimization result.

    ``result`` defaults to a fresh
    :func:`repro.core.fusion.optimize_fused` run (memory medium).  The
    branch-and-bound probe explores memory-medium fused nests for
    two-operator chains only; longer chains are audited without a probe.
    Raises :class:`repro.core.intra.InfeasibleError` when no fused
    dataflow exists to certify.
    """

    from ..core.fusion import optimize_fused
    from ..core.intra import InfeasibleError

    ops = tuple(ops)
    buffer_elems = validate_buffer_elems(buffer_elems)
    if result is None:
        result = optimize_fused(
            ops,
            buffer_elems,
            include_cross=include_cross,
            convention=convention,
            register_elems=register_elems,
        )
        if result is None:
            raise InfeasibleError(
                "no fused dataflow fits a buffer of "
                f"{buffer_elems} elements for chain "
                + "+".join(op.name for op in ops)
            )
    chain: FusedChain = result.chain
    subject = "+".join(op.name for op in chain.ops)
    claimed = (
        result.memory_access
        if claimed_memory_access is None
        else claimed_memory_access
    )
    checks = _fused_checks(
        result, buffer_elems, convention, claimed, register_elems
    )
    discrepancy: Optional[DiscrepancyReport] = None
    healed = False
    failed = any(not check.passed for check in checks)

    if paranoid and len(chain.ops) == 2:
        probe = branch_and_bound_fused_search(
            list(ops), buffer_elems, convention, max_nodes=probe_nodes
        )
        if probe is not None and (probe.memory_access < claimed or failed):
            discrepancy = DiscrepancyReport(
                kind="fused",
                subject=subject,
                claimed_memory_access=claimed,
                certified_memory_access=probe.memory_access,
                dataflow=probe.dataflow.describe(chain),
                evaluations=probe.evaluations,
                reason="failed_audit" if failed else "probe_beat_analytical",
            )
            record_discrepancy(discrepancy)
            result = _fallback_fused_result(chain, probe.dataflow, convention)
            claimed = result.memory_access
            checks = _fused_checks(
                result, buffer_elems, convention, claimed, register_elems
            )
            healed = True
        elif probe is not None:
            checks.append(
                CheckResult(
                    name="optimality_probe",
                    passed=True,
                    claimed=claimed,
                    recomputed=probe.memory_access,
                    detail=f"fused branch-and-bound probe ({probe.evaluations} nodes)",
                )
            )

    certificate = Certificate(
        kind="fused",
        subject=subject,
        buffer_elems=buffer_elems,
        checks=tuple(checks),
        discrepancy=discrepancy,
        healed=healed,
    )
    return CertifiedFused(
        result=replace(result, certificate=certificate),
        certificate=certificate,
    )
