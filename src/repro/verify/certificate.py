"""Machine-checkable certificates for dataflow optimization results.

A :class:`Certificate` is the structured outcome of independently
re-deriving everything a result claims: that its dataflow fits the buffer
(feasibility), that its memory-access count is what the loop nest actually
incurs (cost audit + bounded simulation), that the count respects the
Theorem lower bound and the regime classification (bound/consistency
checks), and -- in paranoid mode -- that a budgeted branch-and-bound probe
cannot beat it (optimality probe).

When the probe *does* beat the analytical answer, or the analytical answer
fails its own audit, the certification layer falls back to the
branch-and-bound dataflow and records the event as a
:class:`DiscrepancyReport`; the certificate then describes the *healed*
result.  Everything here is plain, JSON-able, deterministic data so
certificates can ride inside batch result records across process pools and
journals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class CertificationError(ValueError):
    """An independently-audited result failed one of its checks.

    Deterministic for a given (workload, buffer, convention) triple, so the
    service layer classifies it permanent: retrying cannot change what the
    auditor recounts.  Carries the failing :class:`Certificate` when one
    was assembled.
    """

    def __init__(self, message: str, certificate: Optional["Certificate"] = None):
        super().__init__(message)
        self.certificate = certificate


@dataclass(frozen=True)
class CheckResult:
    """One independent check inside a certificate."""

    #: ``feasibility`` | ``cost_audit`` | ``simulation`` | ``bound`` |
    #: ``regime`` | ``fusability`` | ``nra_consistency`` | ``registers`` |
    #: ``optimality_probe``
    name: str
    passed: bool
    #: What the result claimed (count, regime name, ...); None when the
    #: check has no claimed side (e.g. a skipped simulation).
    claimed: Optional[Any] = None
    #: What the independent recomputation produced.
    recomputed: Optional[Any] = None
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "passed": self.passed}
        if self.claimed is not None:
            out["claimed"] = self.claimed
        if self.recomputed is not None:
            out["recomputed"] = self.recomputed
        if self.detail:
            out["detail"] = self.detail
        return out

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        parts = [f"{self.name}: {status}"]
        if self.claimed is not None or self.recomputed is not None:
            parts.append(f"claimed={self.claimed} recomputed={self.recomputed}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


@dataclass(frozen=True)
class DiscrepancyReport:
    """A certified difference between the analytical answer and the probe.

    Recorded whenever the branch-and-bound fallback replaced an analytical
    result -- either because the probe found a strictly cheaper dataflow or
    because the analytical result failed its audit and could not be
    trusted.  ``improvement`` is ``claimed - certified`` (negative when a
    corrupted claim understated the true cost).
    """

    kind: str  # "intra" | "fused"
    subject: str  # operator or chain name
    claimed_memory_access: int
    certified_memory_access: int
    dataflow: str  # description of the certified-better dataflow
    evaluations: int  # branch-and-bound nodes spent by the probe
    reason: str  # "probe_beat_analytical" | "failed_audit"
    healed: bool = True

    @property
    def improvement(self) -> int:
        return self.claimed_memory_access - self.certified_memory_access

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "claimed_memory_access": self.claimed_memory_access,
            "certified_memory_access": self.certified_memory_access,
            "improvement": self.improvement,
            "dataflow": self.dataflow,
            "evaluations": self.evaluations,
            "reason": self.reason,
            "healed": self.healed,
        }

    def describe(self) -> str:
        return (
            f"discrepancy[{self.kind}:{self.subject}]: claimed MA "
            f"{self.claimed_memory_access} vs certified "
            f"{self.certified_memory_access} ({self.reason}); "
            f"healed={self.healed} via {self.dataflow}"
        )


@dataclass(frozen=True)
class Certificate:
    """The full audit trail for one optimization result."""

    kind: str  # "intra" | "fused"
    subject: str  # operator or chain name
    buffer_elems: int
    checks: Tuple[CheckResult, ...]
    discrepancy: Optional[DiscrepancyReport] = None
    #: True when the certified result is the branch-and-bound fallback
    #: rather than the analytical answer.
    healed: bool = False

    @property
    def ok(self) -> bool:
        """All checks hold for the (possibly healed) certified result."""
        return all(check.passed for check in self.checks)

    def failures(self) -> Tuple[CheckResult, ...]:
        return tuple(check for check in self.checks if not check.passed)

    def failure_summaries(self) -> Tuple[str, ...]:
        return tuple(check.describe() for check in self.failures())

    def check(self, name: str) -> Optional[CheckResult]:
        for candidate in self.checks:
            if candidate.name == name:
                return candidate
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "buffer_elems": self.buffer_elems,
            "ok": self.ok,
            "healed": self.healed,
            "checks": [check.as_dict() for check in self.checks],
            "discrepancy": (
                None if self.discrepancy is None else self.discrepancy.as_dict()
            ),
        }

    def describe(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"certificate[{self.kind}:{self.subject}] @ "
            f"{self.buffer_elems} elems: {status}"
            + (" (healed by branch-and-bound fallback)" if self.healed else "")
        ]
        for check in self.checks:
            lines.append("  " + check.describe())
        if self.discrepancy is not None:
            lines.append("  " + self.discrepancy.describe())
        return "\n".join(lines)
