"""Certification of DAG plans: recount, cross-check, self-heal.

:func:`certify_plan` audits a :class:`repro.plan.partition.DagPlan` the
way :func:`repro.verify.certify.certify_intra` audits one dataflow --
every structural and numeric claim is re-derived from the graph and the
independent counters in :mod:`repro.verify.audit`, never from the
planner's own helpers:

* **cover** -- the segments partition the graph exactly;
* **topology** -- within-segment links are legal fusion edges and every
  cross-segment edge points forward in the execution order;
* **retention** -- each retained tensor is eligible (last-op producer,
  strictly-later consumers, equal counts) and every segment's reserved
  capacity equals the live retained footprint;
* **feasibility** -- each segment's recomputed footprint fits the buffer
  *minus* its recomputed reservation;
* **cost_audit** -- each segment's base claim equals the independent
  recount, the per-tensor split sums to it, and the plan total equals
  the recounted sum net of retention elisions;
* **fusability** -- fused segments keep all intermediates non-redundant;
* **bound** -- the total respects the graph's infinite-buffer ideal;
* **chain_baseline** -- a DAG plan is never worse than the tested
  chain-independent plan on the same graph.

With ``paranoid=True`` the budgeted enumerative mapper
(:mod:`repro.plan.enumerative`) probes the same partition space; a
strictly better enumerative plan -- or any failed check -- triggers the
same self-healing fallback the intra/fused certifiers use: the
enumerative plan replaces the claim, is re-audited, and the event lands
in the process-wide discrepancy registry batch tooling drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import validate_buffer_elems
from ..dataflow.cost import PartialSumConvention
from ..core.fusion import FusionMedium
from ..plan.enumerative import DEFAULT_PLAN_BUDGET, enumerate_plans
from ..plan.partition import DagPlan, plan_dag
from .audit import (
    audit_footprint,
    audit_fused_footprint,
    audit_fused_memory_access,
    audit_memory_access,
)
from .certificate import Certificate, CheckResult, DiscrepancyReport
from .certify import record_discrepancy


@dataclass(frozen=True)
class CertifiedPlan:
    """A (possibly healed) DAG plan plus its certificate.

    ``baseline_memory_access`` carries the enumerative probe's best total
    when the probe ran (``paranoid=True``), else ``None``.
    """

    plan: DagPlan
    certificate: Certificate
    baseline_memory_access: Optional[int] = None


def _plan_structure(
    graph: OperatorGraph, plan: DagPlan
) -> Tuple[List[CheckResult], Dict[str, int], Tuple[int, ...]]:
    """Structural checks plus the recomputed op->segment map and reserves."""
    checks: List[CheckResult] = []

    segment_of: Dict[str, int] = {}
    duplicates: List[str] = []
    for index, segment in enumerate(plan.segments):
        for op in segment.ops:
            if op.name in segment_of:
                duplicates.append(op.name)
            segment_of[op.name] = index
    graph_names = sorted(op.name for op in graph)
    missing = sorted(set(graph_names) - set(segment_of))
    extra = sorted(set(segment_of) - set(graph_names))
    checks.append(
        CheckResult(
            name="cover",
            passed=not (duplicates or missing or extra),
            claimed=sum(len(segment.ops) for segment in plan.segments),
            recomputed=len(graph_names),
            detail="segments must partition the graph exactly"
            + (f" (missing={missing} extra={extra} dup={duplicates})"
               if duplicates or missing or extra else ""),
        )
    )

    bad_links: List[str] = []
    backward: List[str] = []
    if not (duplicates or missing or extra):
        for index, segment in enumerate(plan.segments):
            for a, b in zip(segment.ops, segment.ops[1:]):
                consumers = graph.consumers(a.output.name)
                if (
                    len(consumers) != 1
                    or consumers[0].name != b.name
                    or a.count != b.count
                ):
                    bad_links.append(f"{a.name}->{b.name}")
            for op in segment.ops:
                for consumer in graph.consumers(op.output.name):
                    if segment_of[consumer.name] < index:
                        backward.append(f"{op.name}->{consumer.name}")
    checks.append(
        CheckResult(
            name="topology",
            passed=not (bad_links or backward),
            recomputed=sorted(bad_links + backward) or None,
            detail="in-segment links must be sole-consumer equal-count "
            "edges; cross-segment edges must point forward",
        )
    )

    reserved = [0] * len(plan.segments)
    resident: List[set] = [set() for _ in plan.segments]
    retention_faults: List[str] = []
    for name in plan.retained:
        producer = graph.producer(name)
        consumers = graph.consumers(name)
        if producer is None or not consumers:
            retention_faults.append(f"{name}: not an intermediate tensor")
            continue
        pseg = segment_of.get(producer.name)
        csegs = [segment_of.get(c.name) for c in consumers]
        if pseg is None or any(s is None for s in csegs):
            retention_faults.append(f"{name}: uncovered producer/consumer")
            continue
        if plan.segments[pseg].ops[-1].name != producer.name:
            retention_faults.append(f"{name}: producer not last in segment")
        if min(csegs) <= pseg:
            retention_faults.append(f"{name}: consumer not strictly later")
        if any(c.count != producer.count for c in consumers):
            retention_faults.append(f"{name}: repetition counts differ")
        for index in range(pseg, max(csegs) + 1):
            reserved[index] += producer.output.size
        resident[pseg].add(name)
        for index in csegs:
            resident[index].add(name)
    reserve_faults: List[str] = []
    for index, segment in enumerate(plan.segments):
        if segment.reserved_elems != reserved[index]:
            reserve_faults.append(
                f"segment {index}: claimed {segment.reserved_elems} "
                f"reserved, recomputed {reserved[index]}"
            )
        if tuple(sorted(resident[index])) != tuple(sorted(segment.resident)):
            reserve_faults.append(
                f"segment {index}: resident set "
                f"{sorted(segment.resident)} != {sorted(resident[index])}"
            )
    checks.append(
        CheckResult(
            name="retention",
            passed=not (retention_faults or reserve_faults),
            claimed=list(plan.retained) or None,
            recomputed=(retention_faults + reserve_faults) or None,
            detail="retained tensors must be eligible and reservations "
            "must equal the live retained footprint",
        )
    )
    return checks, segment_of, tuple(reserved)


def _plan_cost_checks(
    graph: OperatorGraph,
    plan: DagPlan,
    buffer_elems: int,
    convention: PartialSumConvention,
    claimed_total: int,
    reserved: Tuple[int, ...],
) -> List[CheckResult]:
    checks: List[CheckResult] = []
    footprint_faults: List[str] = []
    cost_faults: List[str] = []
    fusability_faults: List[str] = []
    recounted_total = 0
    for index, segment in enumerate(plan.segments):
        result = segment.result
        budget = buffer_elems - reserved[index]
        if segment.fused:
            chain = result.chain
            compute_unit = result.medium is FusionMedium.COMPUTE_UNIT
            exclude = (
                tuple(t.name for t in chain.intermediates())
                if compute_unit
                else ()
            )
            footprint = audit_fused_footprint(chain, result.dataflow, exclude=exclude)
            recount, inter_mult = audit_fused_memory_access(
                chain, result.dataflow, convention
            )
            redundant = sorted(
                name for name, mult in inter_mult.items() if mult != 1
            )
            if redundant:
                fusability_faults.append(f"segment {index}: {redundant}")
        else:
            footprint = audit_footprint(result.operator, result.dataflow)
            recount = audit_memory_access(result.operator, result.dataflow, convention)
        if footprint > budget:
            footprint_faults.append(
                f"segment {index}: footprint {footprint} > budget {budget}"
            )
        if recount != segment.raw_memory_access:
            cost_faults.append(
                f"segment {index}: claimed {segment.raw_memory_access}, "
                f"recounted {recount}"
            )
        report = result.report
        split = report.count * sum(
            entry.accesses for entry in report.per_tensor.values()
        )
        if split != segment.raw_memory_access:
            cost_faults.append(
                f"segment {index}: per-tensor split sums to {split}, "
                f"not {segment.raw_memory_access}"
            )
        elided = report.count * sum(
            report.per_tensor[name].accesses
            for name in segment.resident
            if name in report.per_tensor
        )
        if elided != segment.elided_access:
            cost_faults.append(
                f"segment {index}: claimed elision {segment.elided_access}, "
                f"recomputed {elided}"
            )
        recounted_total += recount - elided
    checks.append(
        CheckResult(
            name="feasibility",
            passed=not footprint_faults,
            claimed=buffer_elems,
            recomputed=footprint_faults or None,
            detail="recomputed segment footprints vs buffer minus reservation",
        )
    )
    if recounted_total != claimed_total:
        cost_faults.append(
            f"plan total: claimed {claimed_total}, recounted {recounted_total}"
        )
    checks.append(
        CheckResult(
            name="cost_audit",
            passed=not cost_faults,
            claimed=claimed_total,
            recomputed=recounted_total,
            detail="independent segment-by-segment recount net of retention"
            + (f" ({'; '.join(cost_faults)})" if cost_faults else ""),
        )
    )
    checks.append(
        CheckResult(
            name="fusability",
            passed=not fusability_faults,
            recomputed=fusability_faults or None,
            detail="fused intermediates must be non-redundant",
        )
    )
    bound = graph.ideal_memory_access()
    checks.append(
        CheckResult(
            name="bound",
            passed=claimed_total >= bound,
            claimed=claimed_total,
            recomputed=bound,
            detail="plan total vs infinite-buffer graph ideal",
        )
    )
    return checks


def _plan_checks(
    graph: OperatorGraph,
    plan: DagPlan,
    buffer_elems: int,
    convention: PartialSumConvention,
    claimed_total: int,
    chain_total: Optional[int],
) -> List[CheckResult]:
    checks, _, reserved = _plan_structure(graph, plan)
    structural_ok = all(check.passed for check in checks)
    if structural_ok:
        checks.extend(
            _plan_cost_checks(
                graph, plan, buffer_elems, convention, claimed_total, reserved
            )
        )
    else:
        checks.append(
            CheckResult(
                name="cost_audit",
                passed=False,
                claimed=claimed_total,
                detail="skipped: structural checks failed",
            )
        )
    if chain_total is None:
        checks.append(
            CheckResult(
                name="chain_baseline",
                passed=True,
                detail="skipped: chain-independent plan infeasible",
            )
        )
    else:
        checks.append(
            CheckResult(
                name="chain_baseline",
                passed=claimed_total <= chain_total,
                claimed=claimed_total,
                recomputed=chain_total,
                detail="DAG plan must not lose to the chain-independent plan",
            )
        )
    return checks


def _plan_subject(graph: OperatorGraph, plan: DagPlan) -> str:
    return f"{graph.name}[{len(plan.segments)} segments]"


def _describe_partition(plan: DagPlan) -> str:
    parts = [
        "+".join(op.name for op in segment.ops) for segment in plan.segments
    ]
    text = " | ".join(parts)
    if plan.retained:
        text += " ; retained " + ",".join(plan.retained)
    return text


def certify_plan(
    graph: OperatorGraph,
    buffer_elems: int,
    plan: Optional[DagPlan] = None,
    enable_fusion: bool = True,
    max_group: int = 3,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    enable_retention: bool = True,
    claimed_memory_access: Optional[int] = None,
    paranoid: bool = False,
    budget: int = DEFAULT_PLAN_BUDGET,
) -> CertifiedPlan:
    """Independently certify a DAG plan for ``graph``.

    ``plan`` defaults to a fresh :func:`repro.plan.partition.plan_dag`
    run with the same knobs.  ``claimed_memory_access`` overrides the
    claim under audit (the fault-injection hook mirroring
    ``certify_intra``).  With ``paranoid=True`` the budgeted enumerative
    mapper probes the partition space; a strictly better enumerative
    plan or any failed check triggers the self-healing fallback and a
    recorded discrepancy.
    """

    from ..core.graph_optimizer import optimize_graph

    buffer_elems = validate_buffer_elems(buffer_elems)
    knobs = dict(
        enable_fusion=enable_fusion, max_group=max_group,
        convention=convention, medium=medium,
        register_elems=register_elems,
    )
    if plan is None:
        plan = plan_dag(
            graph, buffer_elems, enable_retention=enable_retention, **knobs
        )
    claimed = (
        plan.memory_access
        if claimed_memory_access is None
        else claimed_memory_access
    )
    try:
        chain_total: Optional[int] = optimize_graph(
            graph, buffer_elems, **knobs
        ).memory_access
    except ValueError:
        chain_total = None
    checks = _plan_checks(
        graph, plan, buffer_elems, convention, claimed, chain_total
    )
    discrepancy: Optional[DiscrepancyReport] = None
    healed = False
    failed = any(not check.passed for check in checks)
    baseline_total: Optional[int] = None

    if paranoid:
        probe = enumerate_plans(
            graph, buffer_elems, budget=budget,
            enable_retention=enable_retention, **knobs
        )
        if probe.plan is not None:
            baseline_total = probe.plan.memory_access
        if probe.plan is not None and (baseline_total < claimed or failed):
            discrepancy = DiscrepancyReport(
                kind="plan",
                subject=_plan_subject(graph, plan),
                claimed_memory_access=claimed,
                certified_memory_access=baseline_total,
                dataflow=_describe_partition(probe.plan),
                evaluations=probe.stats.plans_evaluated,
                reason="failed_audit" if failed else "probe_beat_analytical",
            )
            record_discrepancy(discrepancy)
            plan = probe.plan
            claimed = plan.memory_access
            checks = _plan_checks(
                graph, plan, buffer_elems, convention, claimed, chain_total
            )
            healed = True
        elif probe.plan is not None:
            checks.append(
                CheckResult(
                    name="optimality_probe",
                    passed=True,
                    claimed=claimed,
                    recomputed=baseline_total,
                    detail=(
                        f"enumerative probe ({probe.stats.plans_evaluated} "
                        f"plans, exhausted={probe.stats.exhausted})"
                    ),
                )
            )

    certificate = Certificate(
        kind="plan",
        subject=_plan_subject(graph, plan),
        buffer_elems=buffer_elems,
        checks=tuple(checks),
        discrepancy=discrepancy,
        healed=healed,
    )
    return CertifiedPlan(
        plan=plan,
        certificate=certificate,
        baseline_memory_access=baseline_total,
    )
