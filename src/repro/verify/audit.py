"""Independent re-derivation of footprints and memory-access counts.

Everything in this module is deliberately reimplemented from the raw
dataflow description (loop order + tile sizes) instead of calling
:mod:`repro.dataflow.cost` or :mod:`repro.dataflow.fusion_nest` -- those
are the modules under audit.  Two independent counters are provided:

* an **analytical recount** that re-applies the reuse rule from scratch
  (walk the loop nest, find each tensor's innermost indexing loop, multiply
  the trip counts of outer non-indexing loops);
* a **literal simulation** that iterates every tile coordinate of the nest
  in lexicographic order and charges a tensor each time its projected tile
  coordinate changes, clipping edge tiles to the true extents.  The
  simulation knows nothing about reuse rules; agreement between the two is
  strong evidence the model counts what the nest actually does.

Both agree with the production counters by construction of the model --
the point of the audit is that a *corrupted or buggy* claimed count cannot
agree with either.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from ..dataflow.fusion_nest import FusedChain, FusedDataflow
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import UNTILED


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _resolved_tiles(
    tiles: Mapping[str, int], dims: Mapping[str, int]
) -> Dict[str, int]:
    """Resolve UNTILED sentinels and range-check, independently of Tiling."""
    resolved: Dict[str, int] = {}
    for dim, extent in dims.items():
        if dim not in tiles:
            raise ValueError(f"audit: missing tile for dim {dim!r}")
        tile = tiles[dim]
        if tile == UNTILED:
            tile = extent
        if not isinstance(tile, int) or not 1 <= tile <= extent:
            raise ValueError(
                f"audit: tile {tile!r} for dim {dim!r} out of range "
                f"[1, {extent}]"
            )
        resolved[dim] = tile
    return resolved


def _walk_multiplier(
    order: Sequence[str],
    trips: Mapping[str, int],
    tensor_dims: Sequence[str],
) -> int:
    """Reuse-rule multiplier, re-derived from the walk itself.

    Walk the nest outermost-in.  Once the innermost *effective* (trip > 1)
    loop indexing the tensor has been passed, the buffered tile is reused by
    everything inside it; every effective loop outside that point which does
    not index the tensor forces a full re-sweep.
    """

    indexed = set(tensor_dims)
    effective = [dim for dim in order if trips[dim] > 1]
    innermost = -1
    for position, dim in enumerate(effective):
        if dim in indexed:
            innermost = position
    multiplier = 1
    for position, dim in enumerate(effective):
        if position >= innermost:
            break
        if dim not in indexed:
            multiplier *= trips[dim]
    return multiplier


def _charge(
    size: int,
    multiplier: int,
    is_output: bool,
    convention: PartialSumConvention,
) -> int:
    if is_output and convention is PartialSumConvention.READ_WRITE:
        return size * (2 * multiplier - 1)
    return size * multiplier


# ----------------------------------------------------------------------
# Intra-operator audits
# ----------------------------------------------------------------------
def audit_footprint(operator: TensorOperator, dataflow: Dataflow) -> int:
    """Buffered elements, recomputed from raw tiles (all operand tiles)."""
    tiles = _resolved_tiles(dataflow.tiling.tiles, operator.dims)
    return sum(
        math.prod(tiles[dim] for dim in operator.dims_of(tensor.name))
        for tensor in operator.tensors
    )


def audit_memory_access(
    operator: TensorOperator,
    dataflow: Dataflow,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> int:
    """Analytical recount of total memory accesses (includes op count)."""
    tiles = _resolved_tiles(dataflow.tiling.tiles, operator.dims)
    order = tuple(dataflow.schedule.order)
    if set(order) != set(operator.dims):
        raise ValueError(
            f"audit: schedule {order} does not cover dims "
            f"{tuple(operator.dims)}"
        )
    trips = {
        dim: _ceil_div(operator.dims[dim], tiles[dim]) for dim in order
    }
    total = 0
    for tensor in operator.tensors:
        multiplier = _walk_multiplier(
            order, trips, operator.dims_of(tensor.name)
        )
        total += _charge(
            tensor.size,
            multiplier,
            tensor.name == operator.output.name,
            convention,
        )
    return total * operator.count


def simulate_memory_access(
    operator: TensorOperator,
    dataflow: Dataflow,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    limit: int = 200_000,
) -> Optional[int]:
    """Literal tile-by-tile simulation of the nest's memory traffic.

    Enumerates every tile coordinate in lexicographic (loop) order and
    charges a tensor the clipped element count of its new tile whenever its
    projected coordinate differs from the previous iteration's.  Knows
    nothing about reuse rules.  Returns ``None`` when the nest has more
    than ``limit`` tile iterations (the caller reports the check skipped).
    """

    tiles = _resolved_tiles(dataflow.tiling.tiles, operator.dims)
    order = tuple(dataflow.schedule.order)
    trips = {
        dim: _ceil_div(operator.dims[dim], tiles[dim]) for dim in order
    }
    iterations = math.prod(trips[dim] for dim in order)
    if iterations > limit:
        return None

    tensor_dims: Dict[str, Tuple[str, ...]] = {
        tensor.name: operator.dims_of(tensor.name)
        for tensor in operator.tensors
    }
    fetched: Dict[str, int] = {name: 0 for name in tensor_dims}
    last_coord: Dict[str, Optional[Tuple[int, ...]]] = {
        name: None for name in tensor_dims
    }

    def tile_elems(dims: Tuple[str, ...], coord: Mapping[str, int]) -> int:
        elems = 1
        for dim in dims:
            start = coord[dim] * tiles[dim]
            elems *= min(tiles[dim], operator.dims[dim] - start)
        return elems

    for point in itertools.product(*(range(trips[dim]) for dim in order)):
        coord = dict(zip(order, point))
        for name, dims in tensor_dims.items():
            projected = tuple(coord[dim] for dim in dims)
            if projected != last_coord[name]:
                last_coord[name] = projected
                fetched[name] += tile_elems(dims, coord)

    total = 0
    for tensor in operator.tensors:
        count = fetched[tensor.name]
        if (
            tensor.name == operator.output.name
            and convention is PartialSumConvention.READ_WRITE
        ):
            # Every pass over an output element is a read-modify-write
            # except the very first, which is a plain write.
            count = 2 * count - tensor.size
        total += count
    return total * operator.count


# ----------------------------------------------------------------------
# Fused-chain audits
# ----------------------------------------------------------------------
def _fused_tiles(chain: FusedChain, dataflow: FusedDataflow) -> Dict[str, int]:
    return _resolved_tiles(dataflow.tiling.tiles, chain.global_dims)


def _op_order(
    chain: FusedChain, dataflow: FusedDataflow, index: int
) -> Tuple[str, ...]:
    """The loop order operator ``index`` experiences (outermost first)."""
    op = chain.ops[index]
    op_dims = set(chain.op_global_dims(index))
    shared = tuple(dim for dim in dataflow.shared_order if dim in op_dims)
    return shared + tuple(dataflow.private_orders[op.name])


def audit_fused_footprint(
    chain: FusedChain,
    dataflow: FusedDataflow,
    exclude: Tuple[str, ...] = (),
) -> int:
    """Buffered elements for the fused nest: each distinct tensor once."""
    tiles = _fused_tiles(chain, dataflow)
    seen = set(exclude)
    total = 0
    for index, op in enumerate(chain.ops):
        for tensor in op.tensors:
            if tensor.name in seen:
                continue
            seen.add(tensor.name)
            axes = chain.global_dims_of_tensor(index, tensor.name)
            total += math.prod(tiles[dim] for dim in axes)
    return total


def audit_fused_memory_access(
    chain: FusedChain,
    dataflow: FusedDataflow,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Tuple[int, Dict[str, int]]:
    """Analytical recount for a fused chain.

    Returns ``(total, intermediate_multipliers)``: intermediates are
    charged zero traffic but their worst multiplier across producer and
    consumer nests is reported so the caller can re-check fusability
    (non-redundant intermediates, paper Sec. III-B1).  A tensor consumed by
    several operators is charged its worst multiplier once, matching the
    production model's buffered-across-the-shared-nest semantics.
    """

    tiles = _fused_tiles(chain, dataflow)
    trips = {
        dim: _ceil_div(extent, tiles[dim])
        for dim, extent in chain.global_dims.items()
    }
    intermediates = {tensor.name for tensor in chain.intermediates()}
    inter_mult: Dict[str, int] = {name: 1 for name in intermediates}
    external_charges: Dict[str, int] = {}
    for index, op in enumerate(chain.ops):
        order = _op_order(chain, dataflow, index)
        for tensor in op.tensors:
            axes = chain.global_dims_of_tensor(index, tensor.name)
            multiplier = _walk_multiplier(order, trips, axes)
            if tensor.name in intermediates:
                inter_mult[tensor.name] = max(
                    inter_mult[tensor.name], multiplier
                )
                continue
            charge = _charge(
                tensor.size,
                multiplier,
                tensor.name == op.output.name,
                convention,
            )
            previous = external_charges.get(tensor.name)
            if previous is None or charge > previous:
                external_charges[tensor.name] = charge
    total = sum(external_charges.values()) * chain.count
    return total, inter_mult
