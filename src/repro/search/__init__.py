"""Searching-based DSE baseline (the paper's DAT [15] stand-in).

Exhaustive and genetic optimizers over the same tiling/scheduling space and
cost model as the principle engine, for intra-operator and fused dataflows.
Used to validate principle optimality (Fig. 9) and to quantify the
evaluation-count gap between one-shot principles and black-box search.
"""

from .space import SearchResult, power_of_two_tiles, space_size, tile_grid
from .exhaustive import exhaustive_search
from .genetic import GAResult, GASettings, GeneticOptimizer, genetic_search
from .annealing import AnnealingResult, AnnealingSettings, annealing_search
from .branch_bound import FusedBBResult, branch_and_bound_fused_search, branch_and_bound_search
from .fusion_search import (
    FusedSearchResult,
    SearchedFusionDecision,
    exhaustive_fused_search,
    genetic_fused_search,
    searched_fusion_decision,
)

__all__ = [
    "SearchedFusionDecision",
    "searched_fusion_decision",
    "FusedBBResult",
    "branch_and_bound_fused_search",
    "branch_and_bound_search",
    "AnnealingResult",
    "AnnealingSettings",
    "annealing_search",
    "SearchResult",
    "power_of_two_tiles",
    "space_size",
    "tile_grid",
    "exhaustive_search",
    "GAResult",
    "GASettings",
    "GeneticOptimizer",
    "genetic_search",
    "FusedSearchResult",
    "exhaustive_fused_search",
    "genetic_fused_search",
]
