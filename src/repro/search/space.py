"""Design-space definitions for searching-based dataflow optimization.

This package is the library's stand-in for the searching-based optimizers
the paper compares against (DAT [15]'s mixed-integer programming + genetic
algorithms over the full tiling & scheduling space).  It shares the cost
model with the principle engine, so "search finds X" and "principles
construct X" are directly comparable -- the Fig. 9 validation.

The space for one operator is

* schedule: any permutation of the loop dimensions (n! orders), and
* tiling: any integer tile vector with the buffer-footprint constraint.

Exhaustive enumeration discretizes tiles (powers of two plus the full
extent by default); the genetic optimizer mutates raw integers and can land
anywhere in the space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.spec import Dataflow


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search run."""

    dataflow: Dataflow
    memory_access: int
    evaluations: int
    label: str

    def describe(self, operator: TensorOperator) -> str:
        return (
            f"{self.label}: MA={self.memory_access} after {self.evaluations} "
            f"evaluations [{self.dataflow.describe(operator)}]"
        )


def power_of_two_tiles(extent: int, include_extent: bool = True) -> Tuple[int, ...]:
    """Tile candidates 1, 2, 4, ... up to ``extent`` (plus ``extent``)."""
    if extent <= 0:
        raise ValueError("extent must be positive")
    tiles: List[int] = []
    tile = 1
    while tile < extent:
        tiles.append(tile)
        tile *= 2
    if include_extent or not tiles:
        tiles.append(extent)
    return tuple(tiles)


def tile_grid(
    operator: TensorOperator,
    per_dim: Dict[str, Sequence[int]] = None,
) -> Dict[str, Tuple[int, ...]]:
    """Per-dimension tile candidate lists (default: powers of two + extent)."""
    grid: Dict[str, Tuple[int, ...]] = {}
    for dim, extent in operator.dims.items():
        if per_dim is not None and dim in per_dim:
            candidates = tuple(sorted(set(per_dim[dim])))
            for tile in candidates:
                if not 1 <= tile <= extent:
                    raise ValueError(
                        f"tile candidate {tile} for dim {dim!r} out of range"
                    )
            grid[dim] = candidates
        else:
            grid[dim] = power_of_two_tiles(extent)
    return grid


def space_size(operator: TensorOperator, grid: Dict[str, Tuple[int, ...]]) -> int:
    """Number of (schedule, tiling) points in a discretized space."""
    import math

    orders = math.factorial(len(operator.dims))
    tiles = math.prod(len(candidates) for candidates in grid.values())
    return orders * tiles
