"""Exhaustive (brute-force) dataflow search over a discretized space.

Used by the test suite as ground truth: the principle-based optimizer must
never lose to any point exhaustive search can reach, because both are scored
by the same access counter over the same feasible space.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.scheduling import all_schedules
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling
from .space import SearchResult, tile_grid


def exhaustive_search(
    operator: TensorOperator,
    buffer_elems: int,
    grid: Optional[Dict[str, Tuple[int, ...]]] = None,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Optional[SearchResult]:
    """Minimum-MA dataflow over all (order, tile-grid) combinations.

    Returns ``None`` when no grid point fits the buffer.
    """

    if grid is None:
        grid = tile_grid(operator)
    dims = operator.dim_names
    best: Optional[Tuple[Dataflow, int]] = None
    evaluations = 0
    schedules = list(all_schedules(operator))
    for tiles in itertools.product(*(grid[dim] for dim in dims)):
        tiling = Tiling(dict(zip(dims, tiles)))
        footprint = tiling.buffer_footprint(operator)
        if footprint > buffer_elems:
            continue
        for schedule in schedules:
            dataflow = Dataflow(tiling, schedule)
            evaluations += 1
            total = memory_access(operator, dataflow, convention).total
            if best is None or total < best[1]:
                best = (dataflow, total)
    if best is None:
        return None
    return SearchResult(
        dataflow=best[0],
        memory_access=best[1],
        evaluations=evaluations,
        label="exhaustive",
    )
