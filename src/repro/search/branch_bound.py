"""Exact branch-and-bound dataflow optimization (DAT's MIP component).

DAT [15] combines genetic search with mixed-integer programming.  This
module supplies the MIP-strength comparator: for each loop order, the
memory access of an MM-like operator is *linear* in the per-dimension trip
counts ``n_d = ceil(D_d / T_d)`` (each tensor's redundancy multiplier is a
single trip count or 1), while the minimal buffer footprint for given trip
counts is ``sum_t prod_{d in t} ceil(D_d / n_d)`` -- monotonically
*decreasing* in every ``n_d``.  That monotone structure lets branch and
bound find the **provably global optimum** of the modeled space:

* lower-bound a box of trip counts by its cheapest corner (all ``n`` low);
* check feasibility at the most-tiled corner (all ``n`` high);
* prune, or split the widest dimension and recurse.

Because any tiling is dominated by its trip-count-snapped form (same trip
counts, no larger footprint), optimizing over trip counts loses nothing.
The test suite uses this to certify the one-shot principles *exactly*:
``optimize_intra`` must equal the branch-and-bound optimum everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.scheduling import Schedule, all_schedules
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling
from .space import SearchResult


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _multiplier_dims(
    operator: TensorOperator, order: Tuple[str, ...]
) -> Dict[str, Optional[str]]:
    """For each tensor: the dim whose trip count multiplies its accesses.

    Under the reuse rule with loop order ``order``, tensor ``t``'s
    multiplier is the product of trip counts of loops outside its innermost
    indexing loop that don't index it.  For MM-like operators (each tensor
    indexed by 2 of 3 dims) that is at most one loop; returns ``None`` when
    the tensor is unconditionally non-redundant under this order.
    """

    result: Dict[str, Optional[str]] = {}
    for tensor in operator.tensors:
        dims = set(operator.dims_of(tensor.name))
        innermost = -1
        for position, dim in enumerate(order):
            if dim in dims:
                innermost = position
        outside = [
            dim for position, dim in enumerate(order)
            if position < innermost and dim not in dims
        ]
        if len(outside) > 1:
            raise ValueError("not an MM-like operator/order")
        result[tensor.name] = outside[0] if outside else None
    return result


def _linear_cost(
    operator: TensorOperator,
    mult_dims: Dict[str, Optional[str]],
    trips: Dict[str, int],
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> int:
    total = 0
    for tensor in operator.tensors:
        dim = mult_dims[tensor.name]
        factor = trips[dim] if dim is not None else 1
        if (
            tensor.name == operator.output.name
            and convention is PartialSumConvention.READ_WRITE
        ):
            # 2*passes - 1 accesses per element: still linear and still
            # monotonically increasing in the trip count, so the
            # cheapest-corner bound stays valid.
            total += tensor.size * (2 * factor - 1)
        else:
            total += tensor.size * factor
    return total


def _min_footprint(operator: TensorOperator, trips: Dict[str, int]) -> int:
    tiles = {
        dim: _ceil_div(extent, trips[dim])
        for dim, extent in operator.dims.items()
    }
    return Tiling(tiles).buffer_footprint(operator)


@dataclass
class _Box:
    low: Dict[str, int]
    high: Dict[str, int]


def _optimize_order(
    operator: TensorOperator,
    order: Tuple[str, ...],
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    budget: Optional[List[int]] = None,
) -> Optional[Tuple[int, Dict[str, int], int]]:
    """Global optimum (cost, trips, nodes) for one loop order, or None.

    ``budget`` is a shared single-element node allowance (mutated in
    place); when it runs out the search stops expanding and returns the
    best found so far, which may be suboptimal but is always feasible.
    """

    mult_dims = _multiplier_dims(operator, order)
    dims = list(operator.dims)
    root = _Box(
        low={d: 1 for d in dims},
        high={d: operator.dims[d] for d in dims},
    )
    best_cost: Optional[int] = None
    best_trips: Optional[Dict[str, int]] = None
    stack: List[_Box] = [root]
    nodes = 0
    while stack:
        if budget is not None:
            if budget[0] <= 0:
                break
            budget[0] -= 1
        box = stack.pop()
        nodes += 1
        # Feasibility: the most-tiled corner has the smallest footprint.
        if _min_footprint(operator, box.high) > buffer_elems:
            continue
        # Bound: the least-tiled corner has the smallest cost.
        bound = _linear_cost(operator, mult_dims, box.low, convention)
        if best_cost is not None and bound >= best_cost:
            continue
        # Is the cheapest corner itself feasible?  Then it is this box's
        # optimum (cost increases in every trip count).
        if _min_footprint(operator, box.low) <= buffer_elems:
            if best_cost is None or bound < best_cost:
                best_cost = bound
                best_trips = dict(box.low)
            continue
        # Split the widest dimension.
        widest = max(dims, key=lambda d: box.high[d] - box.low[d])
        if box.high[widest] == box.low[widest]:
            continue  # degenerate box, infeasible cheap corner: dead end
        mid = (box.low[widest] + box.high[widest]) // 2
        left = _Box(low=dict(box.low), high=dict(box.high))
        left.high[widest] = mid
        right = _Box(low=dict(box.low), high=dict(box.high))
        right.low[widest] = mid + 1
        stack.append(left)
        stack.append(right)
    if best_cost is None or best_trips is None:
        return None
    return best_cost, best_trips, nodes


def branch_and_bound_search(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    max_nodes: Optional[int] = None,
) -> Optional[SearchResult]:
    """Provably optimal dataflow over the modeled space (all orders).

    Returns ``None`` when no dataflow fits the buffer.  ``max_nodes``
    bounds the total nodes expanded across all loop orders (the
    certification layer's budgeted probe); an exhausted budget returns the
    best feasible dataflow found so far, dropping the optimality proof.
    """

    best: Optional[Tuple[int, Dataflow]] = None
    nodes = 0
    budget = [max_nodes] if max_nodes is not None else None
    for schedule in all_schedules(operator):
        outcome = _optimize_order(
            operator, schedule.order, buffer_elems, convention, budget
        )
        if outcome is None:
            continue
        cost, trips, visited = outcome
        nodes += visited
        tiles = {
            dim: _ceil_div(extent, trips[dim])
            for dim, extent in operator.dims.items()
        }
        dataflow = Dataflow(Tiling(tiles), schedule)
        total = memory_access(operator, dataflow, convention).total
        if best is None or total < best[0]:
            best = (total, dataflow)
    if best is None:
        return None
    return SearchResult(
        dataflow=best[1],
        memory_access=best[0],
        evaluations=nodes,
        label="branch-and-bound",
    )


# ----------------------------------------------------------------------
# Fused-space branch and bound
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedBBResult:
    """Outcome of the fused-space branch and bound."""

    dataflow: object  # FusedDataflow (import-cycle-free annotation)
    memory_access: int
    evaluations: int
    label: str = "branch-and-bound-fused"


def branch_and_bound_fused_search(
    ops: List[TensorOperator],
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    max_nodes: Optional[int] = None,
) -> Optional[FusedBBResult]:
    """Provably optimal *fused* dataflow for a two-matmul chain.

    Same box-splitting scheme over global trip counts, with two twists that
    keep it exact for fused nests:

    * the lower bound is the **true** fused cost at the cheapest corner
      (evaluated through :func:`fused_memory_access`; fused cost is
      monotone in every trip count, so the corner bounds the box);
    * the structure (shared loops over the intermediate's dims, one private
      loop per operator) is fixed, but every permutation of the shared
      dims is enumerated -- a tensor indexed by only one common dim is
      re-swept by common loops ordered before it, so the order changes
      cost; private loops cannot legally move outside the shared nest.

    Used to certify that the Fig. 4 pattern set plus integer refinement
    (`repro.core.fusion.optimize_fused`) covers the global fused optimum.
    ``max_nodes`` bounds the nodes expanded across all shared orders (the
    certification layer's budgeted probe); exhausting it returns the best
    feasible dataflow found so far without the optimality proof.
    """

    from ..dataflow.fusion_nest import (
        FusedChain,
        FusedDataflow,
        fused_memory_access,
    )

    import itertools

    chain = FusedChain.from_ops(ops)
    dims = list(chain.global_dims)
    common = list(chain.common_dims)
    privates = {
        op.name: tuple(
            d for d in chain.op_global_dims(i) if d not in common
        )
        for i, op in enumerate(chain.ops)
    }

    best_cost: Optional[int] = None
    best_dataflow: Optional[FusedDataflow] = None
    nodes = 0
    # The shared-loop order matters: a tensor indexed by only one common
    # dim is re-swept by common loops ordered before that dim.  Enumerate
    # every order of the (two) common dims.
    for shared_order in itertools.permutations(common):

        def build(trips: Dict[str, int]) -> FusedDataflow:
            tiles = {
                d: _ceil_div(chain.global_dims[d], trips[d]) for d in dims
            }
            return FusedDataflow(
                shared_order=shared_order,
                private_orders=privates,
                tiling=Tiling(tiles),
            )

        def true_cost(trips: Dict[str, int]) -> Optional[int]:
            report = fused_memory_access(chain, build(trips), convention)
            return report.total if report.fusable else None

        def footprint(trips: Dict[str, int]) -> int:
            return build(trips).buffer_footprint(chain)

        stack: List[Tuple[Dict[str, int], Dict[str, int]]] = [
            (
                {d: 1 for d in dims},
                {d: chain.global_dims[d] for d in dims},
            )
        ]
        while stack:
            if max_nodes is not None and nodes >= max_nodes:
                break
            low, high = stack.pop()
            nodes += 1
            if footprint(high) > buffer_elems:
                continue
            bound = true_cost(low)
            if bound is None:
                continue
            if best_cost is not None and bound >= best_cost:
                continue
            if footprint(low) <= buffer_elems:
                best_cost = bound
                best_dataflow = build(low)
                continue
            widest = max(dims, key=lambda d: high[d] - low[d])
            if high[widest] == low[widest]:
                continue
            mid = (low[widest] + high[widest]) // 2
            left_high = dict(high)
            left_high[widest] = mid
            right_low = dict(low)
            right_low[widest] = mid + 1
            stack.append((dict(low), left_high))
            stack.append((right_low, dict(high)))
    if best_cost is None or best_dataflow is None:
        return None
    return FusedBBResult(
        dataflow=best_dataflow,
        memory_access=best_cost,
        evaluations=nodes,
    )
