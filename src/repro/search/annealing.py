"""Simulated-annealing dataflow search (a third DSE comparator).

Alongside exhaustive enumeration and the genetic algorithm, simulated
annealing is the other black-box optimizer common in the dataflow-DSE
literature; including it strengthens the Fig. 9 claim (the principles'
one-shot result is compared against three independent search strategies
over the same space and cost model).

Deterministic for a fixed seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.scheduling import Schedule
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling


@dataclass(frozen=True)
class AnnealingSettings:
    """Simulated-annealing hyperparameters."""

    steps: int = 2000
    initial_temperature: float = 0.5
    cooling: float = 0.995
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if not 0 < self.cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")


@dataclass
class AnnealingResult:
    """Outcome of an annealing run."""

    dataflow: Dataflow
    memory_access: int
    evaluations: int
    label: str = "annealing"

    def describe(self, operator: TensorOperator) -> str:
        return (
            f"{self.label}: MA={self.memory_access} after {self.evaluations} "
            f"evaluations [{self.dataflow.describe(operator)}]"
        )


def annealing_search(
    operator: TensorOperator,
    buffer_elems: int,
    settings: AnnealingSettings = AnnealingSettings(),
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> AnnealingResult:
    """Simulated annealing over (loop order, integer tile vector)."""
    if buffer_elems <= 0:
        raise ValueError("buffer size must be positive")
    rng = random.Random(settings.seed)
    dims = operator.dim_names
    extents = tuple(operator.dims[dim] for dim in dims)
    evaluations = 0

    def cost(order: Tuple[str, ...], tiles: Tuple[int, ...]) -> float:
        nonlocal evaluations
        tiling = Tiling(dict(zip(dims, tiles)))
        dataflow = Dataflow(tiling, Schedule(order))
        evaluations += 1
        total = memory_access(operator, dataflow, convention).total
        footprint = tiling.buffer_footprint(operator)
        if footprint > buffer_elems:
            return total * (1.0 + footprint / buffer_elems) + operator.macs
        return float(total)

    def neighbor(
        order: Tuple[str, ...], tiles: Tuple[int, ...]
    ) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        new_order = list(order)
        new_tiles = list(tiles)
        move = rng.random()
        if move < 0.25 and len(dims) >= 2:
            a, b = rng.sample(range(len(dims)), k=2)
            new_order[a], new_order[b] = new_order[b], new_order[a]
        else:
            index = rng.randrange(len(dims))
            choice = rng.random()
            if choice < 0.2:
                new_tiles[index] = extents[index]
            elif choice < 0.4:
                new_tiles[index] = 1
            else:
                factor = 2 ** rng.randint(-1, 1)
                new_tiles[index] = max(
                    1, min(extents[index], int(new_tiles[index] * factor) or 1)
                )
        return tuple(new_order), tuple(new_tiles)

    order = tuple(dims)
    tiles = tuple(max(1, extent // 4) for extent in extents)
    current = cost(order, tiles)
    best: Optional[Tuple[float, Tuple[str, ...], Tuple[int, ...]]] = None
    scale = max(1.0, float(operator.ideal_memory_access()))
    temperature = settings.initial_temperature
    for _ in range(settings.steps):
        candidate_order, candidate_tiles = neighbor(order, tiles)
        candidate_cost = cost(candidate_order, candidate_tiles)
        delta = (candidate_cost - current) / scale
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            order, tiles, current = candidate_order, candidate_tiles, candidate_cost
        tiling = Tiling(dict(zip(dims, tiles)))
        if tiling.buffer_footprint(operator) <= buffer_elems:
            if best is None or current < best[0]:
                best = (current, order, tiles)
        temperature *= settings.cooling
    if best is None:
        raise ValueError(
            f"annealing found no feasible dataflow for {operator.name!r} "
            f"with buffer {buffer_elems}"
        )
    _, order, tiles = best
    dataflow = Dataflow(Tiling(dict(zip(dims, tiles))), Schedule(order))
    total = memory_access(operator, dataflow, convention).total
    return AnnealingResult(
        dataflow=dataflow, memory_access=total, evaluations=evaluations
    )
