"""Genetic-algorithm dataflow search (the DAT-style black-box baseline).

DAT [15] optimizes tiling and scheduling with mixed-integer programming and
genetic algorithms; this module reproduces the genetic component over the
same space as :mod:`repro.search.exhaustive` but with *continuous* integer
tiles, so it can (and usually does) converge to the same optimum the
principles construct in one shot -- while spending thousands of cost-model
evaluations to get there.  The evaluation-count gap is the paper's
"search is time-consuming" argument, quantified in
``benchmarks/test_ablation_search.py``.

The optimizer is deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention, memory_access
from ..dataflow.scheduling import Schedule
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling


@dataclass(frozen=True)
class GASettings:
    """Genetic-algorithm hyperparameters."""

    population: int = 64
    generations: int = 60
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.35
    elitism: int = 2
    seed: int = 2025


@dataclass
class GAResult:
    """Outcome of a GA run, with convergence history."""

    dataflow: Dataflow
    memory_access: int
    evaluations: int
    history: Tuple[int, ...]
    label: str = "genetic"

    def describe(self, operator: TensorOperator) -> str:
        return (
            f"{self.label}: MA={self.memory_access} after {self.evaluations} "
            f"evaluations [{self.dataflow.describe(operator)}]"
        )


class _Genome:
    """(loop order, integer tile vector) individual."""

    __slots__ = ("order", "tiles")

    def __init__(self, order: Tuple[str, ...], tiles: Tuple[int, ...]) -> None:
        self.order = order
        self.tiles = tiles


class GeneticOptimizer:
    """GA over the full tiling & scheduling space of one operator."""

    def __init__(
        self,
        operator: TensorOperator,
        buffer_elems: int,
        settings: GASettings = GASettings(),
        convention: PartialSumConvention = PartialSumConvention.SINGLE,
    ) -> None:
        if buffer_elems <= 0:
            raise ValueError("buffer size must be positive")
        self.operator = operator
        self.buffer_elems = buffer_elems
        self.settings = settings
        self.convention = convention
        self._rng = random.Random(settings.seed)
        self._dims = operator.dim_names
        self._extents = tuple(operator.dims[dim] for dim in self._dims)
        self._evaluations = 0

    # ------------------------------------------------------------------
    def _random_tile(self, extent: int) -> int:
        """Log-uniform random tile in [1, extent]."""
        import math

        if extent == 1:
            return 1
        log_max = math.log2(extent)
        return max(1, min(extent, round(2 ** self._rng.uniform(0.0, log_max))))

    def _random_genome(self) -> _Genome:
        order = list(self._dims)
        self._rng.shuffle(order)
        tiles = tuple(self._random_tile(extent) for extent in self._extents)
        return _Genome(tuple(order), tiles)

    def _fitness(self, genome: _Genome) -> float:
        """Memory access, with an additive penalty for overflowing genomes."""
        tiling = Tiling(dict(zip(self._dims, genome.tiles)))
        footprint = tiling.buffer_footprint(self.operator)
        dataflow = Dataflow(tiling, Schedule(genome.order))
        self._evaluations += 1
        total = memory_access(self.operator, dataflow, self.convention).total
        if footprint > self.buffer_elems:
            overflow = footprint / self.buffer_elems
            return total * (1.0 + overflow) + self.operator.ideal_memory_access()
        return float(total)

    def _tournament(self, scored: List[Tuple[float, _Genome]]) -> _Genome:
        contenders = self._rng.sample(
            scored, k=min(self.settings.tournament, len(scored))
        )
        return min(contenders, key=lambda item: item[0])[1]

    def _crossover(self, mother: _Genome, father: _Genome) -> _Genome:
        tiles = tuple(
            mother.tiles[i] if self._rng.random() < 0.5 else father.tiles[i]
            for i in range(len(self._dims))
        )
        order = mother.order if self._rng.random() < 0.5 else father.order
        return _Genome(order, tiles)

    def _mutate(self, genome: _Genome) -> _Genome:
        tiles = list(genome.tiles)
        order = list(genome.order)
        for index, extent in enumerate(self._extents):
            if self._rng.random() < self.settings.mutation_rate:
                choice = self._rng.random()
                if choice < 0.25:
                    tiles[index] = extent  # jump to untiled
                elif choice < 0.5:
                    tiles[index] = 1  # jump to minimal
                else:
                    factor = 2 ** self._rng.randint(-2, 2)
                    tiles[index] = max(1, min(extent, int(tiles[index] * factor)))
        if self._rng.random() < self.settings.mutation_rate:
            a, b = self._rng.sample(range(len(order)), k=2)
            order[a], order[b] = order[b], order[a]
        return _Genome(tuple(order), tuple(tiles))

    # ------------------------------------------------------------------
    def run(self) -> GAResult:
        """Run the GA; returns the best *feasible* dataflow found."""
        population = [self._random_genome() for _ in range(self.settings.population)]
        best: Optional[Tuple[float, _Genome]] = None
        history: List[int] = []
        for _ in range(self.settings.generations):
            scored = [(self._fitness(genome), genome) for genome in population]
            scored.sort(key=lambda item: item[0])
            for fitness, genome in scored:
                tiling = Tiling(dict(zip(self._dims, genome.tiles)))
                if tiling.buffer_footprint(self.operator) > self.buffer_elems:
                    continue
                if best is None or fitness < best[0]:
                    best = (fitness, genome)
                break
            history.append(int(best[0]) if best is not None else -1)
            elite = [genome for _, genome in scored[: self.settings.elitism]]
            offspring: List[_Genome] = list(elite)
            while len(offspring) < self.settings.population:
                mother = self._tournament(scored)
                if self._rng.random() < self.settings.crossover_rate:
                    father = self._tournament(scored)
                    child = self._crossover(mother, father)
                else:
                    child = mother
                offspring.append(self._mutate(child))
            population = offspring
        if best is None:
            raise ValueError(
                f"GA found no feasible dataflow for {self.operator.name!r} "
                f"with buffer {self.buffer_elems}"
            )
        _, genome = best
        tiling = Tiling(dict(zip(self._dims, genome.tiles)))
        dataflow = Dataflow(tiling, Schedule(genome.order))
        total = memory_access(self.operator, dataflow, self.convention).total
        return GAResult(
            dataflow=dataflow,
            memory_access=total,
            evaluations=self._evaluations,
            history=tuple(history),
        )


def genetic_search(
    operator: TensorOperator,
    buffer_elems: int,
    settings: GASettings = GASettings(),
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> GAResult:
    """Convenience wrapper: build and run a :class:`GeneticOptimizer`."""
    return GeneticOptimizer(operator, buffer_elems, settings, convention).run()
