"""Searching-based inter-operator (fused) dataflow optimization.

The inter-operator analogue of :mod:`repro.search.exhaustive` /
:mod:`repro.search.genetic`: enumerate (or evolve) global tile vectors for a
fused chain and keep the best *fusable* dataflow -- the paper's DAT baseline
applied to fusion.  The fused space is much larger than the intra space
(tiles over the union of both operators' dims), which is the paper's point
about search time exploding when fusion enters the picture.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from ..dataflow.fusion_nest import (
    FusedChain,
    FusedDataflow,
    fused_memory_access,
)
from ..dataflow.tiling import Tiling
from ..service.intra_cache import cached_optimize_intra
from .space import power_of_two_tiles


@dataclass(frozen=True)
class FusedSearchResult:
    """Outcome of a fused-space search."""

    chain: FusedChain
    dataflow: FusedDataflow
    memory_access: int
    evaluations: int
    label: str

    def describe(self) -> str:
        ops = "+".join(op.name for op in self.chain.ops)
        return (
            f"{self.label}[{ops}]: MA={self.memory_access} after "
            f"{self.evaluations} evaluations [{self.dataflow.describe(self.chain)}]"
        )


def _default_structure(chain: FusedChain) -> Tuple[Tuple[str, ...], Dict[str, Tuple[str, ...]]]:
    common = chain.common_dims
    shared_order = tuple(common)
    private_orders = {}
    common_set = set(common)
    for index, op in enumerate(chain.ops):
        private_orders[op.name] = tuple(
            dim for dim in chain.op_global_dims(index) if dim not in common_set
        )
    return shared_order, private_orders


def exhaustive_fused_search(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    grid: Optional[Dict[str, Tuple[int, ...]]] = None,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Optional[FusedSearchResult]:
    """Brute-force the fused tile space of a chain.

    Tiles default to powers of two plus the full extent per global dim.
    Returns ``None`` when no grid point is simultaneously feasible (fits the
    buffer) and fusable (non-redundant intermediates).
    """

    chain = FusedChain.from_ops(ops)
    shared_order, private_orders = _default_structure(chain)
    if grid is None:
        grid = {
            dim: power_of_two_tiles(extent)
            for dim, extent in chain.global_dims.items()
        }
    dims = tuple(chain.global_dims)
    best: Optional[Tuple[FusedDataflow, int]] = None
    evaluations = 0
    for tiles in itertools.product(*(grid[dim] for dim in dims)):
        dataflow = FusedDataflow(
            shared_order=shared_order,
            private_orders=private_orders,
            tiling=Tiling(dict(zip(dims, tiles))),
        )
        if dataflow.buffer_footprint(chain) > buffer_elems:
            continue
        evaluations += 1
        report = fused_memory_access(chain, dataflow, convention)
        if not report.fusable:
            continue
        if best is None or report.total < best[1]:
            best = (dataflow, report.total)
    if best is None:
        return None
    return FusedSearchResult(
        chain=chain,
        dataflow=best[0],
        memory_access=best[1],
        evaluations=evaluations,
        label="exhaustive-fused",
    )


def genetic_fused_search(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    population: int = 64,
    generations: int = 60,
    mutation_rate: float = 0.35,
    seed: int = 2025,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Optional[FusedSearchResult]:
    """GA over fused tile vectors (deterministic for a fixed seed)."""
    chain = FusedChain.from_ops(ops)
    shared_order, private_orders = _default_structure(chain)
    dims = tuple(chain.global_dims)
    extents = tuple(chain.global_dims[dim] for dim in dims)
    rng = random.Random(seed)
    evaluations = 0

    def random_tile(extent: int) -> int:
        import math

        if extent == 1:
            return 1
        return max(1, min(extent, round(2 ** rng.uniform(0.0, math.log2(extent)))))

    def build(tiles: Tuple[int, ...]) -> FusedDataflow:
        return FusedDataflow(
            shared_order=shared_order,
            private_orders=private_orders,
            tiling=Tiling(dict(zip(dims, tiles))),
        )

    def fitness(tiles: Tuple[int, ...]) -> float:
        nonlocal evaluations
        dataflow = build(tiles)
        footprint = dataflow.buffer_footprint(chain)
        evaluations += 1
        report = fused_memory_access(chain, dataflow, convention)
        penalty = 0.0
        if footprint > buffer_elems:
            penalty += report.total * (footprint / buffer_elems)
            penalty += chain.ideal_memory_access()
        if not report.fusable:
            penalty += chain.ideal_memory_access() * 10
        return report.total + penalty

    def feasible(tiles: Tuple[int, ...]) -> bool:
        dataflow = build(tiles)
        if dataflow.buffer_footprint(chain) > buffer_elems:
            return False
        return fused_memory_access(chain, dataflow, convention).fusable

    def mutate(tiles: Tuple[int, ...]) -> Tuple[int, ...]:
        mutated = list(tiles)
        for index, extent in enumerate(extents):
            if rng.random() < mutation_rate:
                choice = rng.random()
                if choice < 0.25:
                    mutated[index] = extent
                elif choice < 0.5:
                    mutated[index] = 1
                else:
                    factor = 2 ** rng.randint(-2, 2)
                    mutated[index] = max(1, min(extent, int(mutated[index] * factor)))
        return tuple(mutated)

    population_tiles = [
        tuple(random_tile(extent) for extent in extents) for _ in range(population)
    ]
    best: Optional[Tuple[float, Tuple[int, ...]]] = None
    for _ in range(generations):
        scored = sorted(
            ((fitness(tiles), tiles) for tiles in population_tiles),
            key=lambda item: item[0],
        )
        for score, tiles in scored:
            if feasible(tiles) and (best is None or score < best[0]):
                best = (score, tiles)
            break
        elite = [tiles for _, tiles in scored[:2]]
        offspring = list(elite)
        while len(offspring) < population:
            contenders = rng.sample(scored, k=min(3, len(scored)))
            parent = min(contenders, key=lambda item: item[0])[1]
            partner = min(
                rng.sample(scored, k=min(3, len(scored))), key=lambda item: item[0]
            )[1]
            child = tuple(
                parent[i] if rng.random() < 0.5 else partner[i]
                for i in range(len(dims))
            )
            offspring.append(mutate(child))
        population_tiles = offspring
    if best is None:
        return None
    dataflow = build(best[1])
    total = fused_memory_access(chain, dataflow, convention).total
    return FusedSearchResult(
        chain=chain,
        dataflow=dataflow,
        memory_access=total,
        evaluations=evaluations,
        label="genetic-fused",
    )


# ----------------------------------------------------------------------
# Searched fusion decision (DSE analogue of core.decide_fusion)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchedFusionDecision:
    """Searched fused optimum vs. the chain's unfused optima.

    The unfused reference comes from the process-wide intra-operator cache
    (:mod:`repro.service.intra_cache`): a DSE study asking about many fused
    chains over the same operator shapes computes each (dims, buffer)
    intra optimum exactly once.
    """

    ops: Tuple[TensorOperator, ...]
    fused: Optional[FusedSearchResult]
    unfused_memory_access: int
    label: str

    @property
    def fused_memory_access(self) -> Optional[int]:
        return None if self.fused is None else self.fused.memory_access

    @property
    def profitable(self) -> bool:
        return (
            self.fused is not None
            and self.fused.memory_access < self.unfused_memory_access
        )

    @property
    def saving(self) -> float:
        if not self.profitable:
            return 0.0
        assert self.fused is not None
        return 1.0 - self.fused.memory_access / self.unfused_memory_access

    def describe(self) -> str:
        names = "+".join(op.name for op in self.ops)
        return (
            f"{self.label}[{names}]: unfused MA={self.unfused_memory_access}, "
            f"fused MA={self.fused_memory_access}, profitable={self.profitable}"
        )


def searched_fusion_decision(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    method: str = "genetic",
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    **search_kwargs,
) -> SearchedFusionDecision:
    """Search the fused space and compare against cached unfused optima."""
    if method == "genetic":
        fused = genetic_fused_search(
            ops, buffer_elems, convention=convention, **search_kwargs
        )
    elif method == "exhaustive":
        fused = exhaustive_fused_search(
            ops, buffer_elems, convention=convention, **search_kwargs
        )
    else:
        raise ValueError(
            f"unknown search method {method!r}; choose genetic or exhaustive"
        )
    unfused = sum(
        cached_optimize_intra(op, buffer_elems, convention).memory_access
        for op in ops
    )
    return SearchedFusionDecision(
        ops=tuple(ops),
        fused=fused,
        unfused_memory_access=unfused,
        label=f"searched-{method}",
    )
