"""Command-line interface: ``python -m repro <command>``.

Commands
--------
optimize M K L      principle-optimize one matmul at a buffer size
fuse M K L N        fusion decision for a two-matmul chain
plan MODEL          graph-level fusion plan for a Table II model; with
                    ``--scenario`` a DAG-scale plan (joins + retained
                    intermediates) with an optional ``--baseline
                    enumerative`` cross-check, ``--certify/--paranoid``
                    plan certificates, and ``--json`` service records
compare MODEL       Fig. 10-style platform comparison for one model
explain M K L       narrate the principle decisions (add --consumer-n for fusion)
certify M K L       independently certify the optimizer's answer for one
                    matmul (add --consumer-n for a fused chain, --paranoid
                    for the branch-and-bound probe, --corrupt-ma to prove
                    the auditor catches a corrupted claim)
batch FILE          evaluate JSON-lines analysis requests through the
                    batch engine (``--jobs``, ``--cache-file``, ``--stats``,
                    retry/deadline/breaker knobs, ``--strict``,
                    ``--paranoid`` for certified-and-probed results)
serve               run the long-lived HTTP serving daemon over the batch
                    engine (``--port --jobs --queue-depth --rate-limit
                    --paranoid --journal``; SIGTERM drains losslessly;
                    ``--shards N`` puts N journal-backed worker processes
                    behind the same endpoints with kill-one-shard
                    resilience)
bench               time optimize_intra / optimize_fused / end-to-end
                    batch throughput and write a ``BENCH_<date>.json``
call FILE           evaluate requests against a running ``repro serve``
                    daemon via :class:`repro.server.ReproClient`
                    (deterministic retries on 429/503; ``--health``,
                    ``--server-stats``; ``--reshard N`` live-resizes a
                    sharded tier; ``--compact`` folds its journal(s))
fsck PATH...        offline integrity check of journal / cache files:
                    per-record CRC verification, dedup stats, exit 0/1/2;
                    ``--repair`` quarantines corrupt records and rewrites
                    a clean journal
selfcheck           run a small fault-injected batch end to end and verify
                    the resilience, certification, and serving layers held
                    (CI smoke test)
tables              render paper Tables I-III
fig9 / fig10 / fig11 / fig12
                    regenerate a paper figure's rows/series
report              run everything, emit a markdown reproduction report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .arch import ALL_PLATFORMS, MemorySpec, evaluate_graph
from .chaos import CHAOS_PROFILES
from .core import decide_fusion, optimize_graph, optimize_intra
from .experiments import (
    format_table,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    table1,
    table2,
    table3,
)
from .ir import matmul
from .workloads import build_layer_graph, model_by_name


def _buffer_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--buffer-kb",
        type=int,
        default=512,
        help="on-chip buffer size in KB (1-byte elements); default 512",
    )


def build_parser() -> argparse.ArgumentParser:
    from .server.protocol import version_banner

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Principle-based dataflow optimization for operator-fused "
            "tensor accelerators (DAC 2025 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=version_banner(),
        help="print package + protocol versions and exit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    optimize = commands.add_parser(
        "optimize", help="principle-optimize one matmul"
    )
    optimize.add_argument("m", type=int)
    optimize.add_argument("k", type=int)
    optimize.add_argument("l", type=int)
    _buffer_argument(optimize)

    fuse = commands.add_parser("fuse", help="fusion decision for A@B then @D")
    fuse.add_argument("m", type=int)
    fuse.add_argument("k", type=int)
    fuse.add_argument("l", type=int)
    fuse.add_argument("n", type=int)
    fuse.add_argument(
        "--cross", action="store_true", help="also consider cross-NRA patterns"
    )
    _buffer_argument(fuse)

    from .plan import list_scenarios

    plan = commands.add_parser(
        "plan",
        help="graph fusion plan for a model, or a DAG-scale scenario plan "
        "with joins + retained intermediates (--scenario)",
    )
    plan.add_argument(
        "model",
        nargs="?",
        default=None,
        help="Table II model name (required without --scenario; with "
        "--scenario it rescales the scenario to that model's shape)",
    )
    _buffer_argument(plan)
    plan.add_argument(
        "--scenario",
        choices=list_scenarios(),
        default=None,
        help="plan a pinned DAG scenario through repro.plan",
    )
    plan.add_argument(
        "--buffer",
        type=int,
        default=None,
        help="buffer size in elements (overrides --buffer-kb)",
    )
    plan.add_argument(
        "--baseline",
        choices=["enumerative"],
        default=None,
        help="also run the budgeted enumerative mapper; exit 1 if the "
        "principle-guided plan loses to it",
    )
    plan.add_argument(
        "--budget",
        type=int,
        default=4096,
        help="enumeration budget (candidate plans costed); default 4096",
    )
    plan.add_argument(
        "--max-group", type=int, default=3, help="max operators per fused set"
    )
    plan.add_argument(
        "--no-retention",
        action="store_true",
        help="disable retained-intermediate planning",
    )
    plan.add_argument(
        "--certify",
        action="store_true",
        help="attach a repro.verify plan certificate; exit 1 if it fails",
    )
    plan.add_argument(
        "--paranoid",
        action="store_true",
        help="certify with the enumerative optimality probe + self-healing",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the service record as JSON"
    )

    compare = commands.add_parser("compare", help="platform comparison")
    compare.add_argument("model")
    _buffer_argument(compare)

    explain = commands.add_parser(
        "explain", help="narrate the principle decisions for a matmul"
    )
    explain.add_argument("m", type=int)
    explain.add_argument("k", type=int)
    explain.add_argument("l", type=int)
    explain.add_argument(
        "--consumer-n",
        type=int,
        default=None,
        help="also explain fusing with a consumer matmul of width N",
    )
    _buffer_argument(explain)

    certify = commands.add_parser(
        "certify",
        help="independently certify the optimizer's answer for one matmul "
        "(or a fused chain with --consumer-n)",
    )
    certify.add_argument("m", type=int)
    certify.add_argument("k", type=int)
    certify.add_argument("l", type=int)
    certify.add_argument(
        "--consumer-n",
        type=int,
        default=None,
        metavar="N",
        help="certify the fused chain with a consumer matmul of width N "
        "instead of the single operator",
    )
    certify.add_argument(
        "--buffer-elems",
        type=int,
        default=None,
        help="buffer size in elements (overrides --buffer-kb)",
    )
    certify.add_argument(
        "--paranoid",
        action="store_true",
        help="cross-check optimality with a budgeted branch-and-bound "
        "probe (self-healing fallback on discrepancy)",
    )
    certify.add_argument(
        "--no-cross",
        action="store_true",
        help="fused chains only: restrict the pattern set to the green "
        "same-NRA arrows (Principle 4's restriction)",
    )
    certify.add_argument(
        "--corrupt-ma",
        type=int,
        default=None,
        metavar="DELTA",
        help="deliberately corrupt the claimed memory-access count by "
        "-DELTA before auditing; exits 0 only if the corruption is "
        "caught (negative-path smoke test)",
    )
    certify.add_argument(
        "--json",
        action="store_true",
        help="emit the certificate as JSON instead of text",
    )
    _buffer_argument(certify)

    batch = commands.add_parser(
        "batch",
        help="evaluate JSON-lines analysis requests (one JSON object per "
        "line) through the parallel, cached batch engine",
    )
    batch.add_argument(
        "requests", help="JSON-lines request file, or '-' for stdin"
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker pool size (default 1: in-process serial)",
    )
    batch.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache bound in entries (default 4096)",
    )
    batch.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="pool flavor for --jobs > 1 (default thread)",
    )
    batch.add_argument(
        "--cache-file",
        default=None,
        help="persistent cache: warmed from this JSON file if it exists, "
        "saved back after the run",
    )
    batch.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead journal: every completed request is fsync'd to "
        "this file before the batch moves on, so a killed run resumes "
        "with --resume instead of starting over",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --journal (skipping completed requests); "
        "without it an existing journal is an error, never clobbered",
    )
    batch.add_argument(
        "--compact-max-records",
        type=int,
        default=None,
        metavar="N",
        help="auto-compact the journal once it holds more than N on-disk "
        "lines with duplicates to reclaim (default: disabled)",
    )
    batch.add_argument(
        "--compact-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="auto-compact the journal once the file exceeds BYTES with "
        "duplicates to reclaim (default: disabled)",
    )
    batch.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stalled-batch watchdog: if no request completes for this "
        "long, heartbeat the journal and respawn a wedged process pool "
        "(default: disabled)",
    )
    batch.add_argument(
        "--output",
        default="-",
        help="JSON-lines results file, or '-' for stdout (default)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="print the metered batch summary (cache/pool/timing) to stderr",
    )
    batch.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any request in the batch errored",
    )
    batch.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="attempts per request for transient failures (default 1: "
        "no retries)",
    )
    batch.add_argument(
        "--retry-delay",
        type=float,
        default=0.0,
        help="base exponential-backoff delay between attempts in seconds "
        "(default 0)",
    )
    batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; overrunning requests become "
        "structured DeadlineExceededError records (default: unlimited)",
    )
    batch.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help="open the per-kind circuit breaker after N consecutive "
        "permanent failures (default 0: disabled)",
    )
    batch.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable process->thread->serial degradation on pool "
        "breakage (remaining requests become pool-error records)",
    )
    batch.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --executor process "
        "(default: platform default)",
    )
    batch.add_argument(
        "--paranoid",
        action="store_true",
        help="run every certification-capable request under paranoid "
        "certification: results are audited and probed against "
        "branch-and-bound, healed on discrepancy",
    )
    batch.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="dev-only fault injection spec (e.g. "
        "'raise:intra*:times=1;delay:sweep*:seconds=0.1'); requires "
        "REPRO_ENABLE_FAULT_INJECTION=1 in the environment",
    )

    serve = commands.add_parser(
        "serve",
        help="run the long-lived HTTP serving daemon over the batch engine "
        "(admission control, rate limiting, live /metrics; SIGTERM drains "
        "in-flight work losslessly)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 for all interfaces)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8177,
        help="TCP port (default 8177; 0 picks an ephemeral port, printed "
        "on stderr at startup)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="engine thread-pool width per analyze call (default 1)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache bound in entries (default 4096)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="analyze calls executing at once (default 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="analyze calls allowed to wait for a slot before the server "
        "sheds load with 503 + Retry-After (default 16)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="PER_SECOND",
        help="per-client admission rate; an empty token bucket answers "
        "429 + Retry-After (default 0: disabled)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=None,
        help="token-bucket burst capacity (default: max(1, rate-limit))",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline applied when the client sends "
        "no X-Repro-Deadline (default: unlimited)",
    )
    serve.add_argument(
        "--max-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ceiling on client-requested deadlines (default: unbounded)",
    )
    serve.add_argument(
        "--paranoid",
        action="store_true",
        help="run every certification-capable request under paranoid "
        "certification (audited + branch-and-bound probed)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead journal: completed requests are fsync'd here "
        "and flushed on drain, so a killed daemon resumes warm",
    )
    serve.add_argument(
        "--compact-max-records",
        type=int,
        default=None,
        metavar="N",
        help="auto-compact the journal (each shard's journal under "
        "--shards) once it holds more than N on-disk lines with "
        "duplicates to reclaim (default: disabled)",
    )
    serve.add_argument(
        "--compact-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="auto-compact once the journal file exceeds BYTES with "
        "duplicates to reclaim (default: disabled)",
    )
    serve.add_argument(
        "--cache-file",
        default=None,
        help="persistent result cache: warmed at boot if it exists, "
        "saved back on graceful shutdown",
    )
    serve.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="dev-only fault injection spec; requires "
        "REPRO_ENABLE_FAULT_INJECTION=1 in the environment",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log per-request access lines to stderr",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run N worker processes behind the front end, each owning a "
        "rendezvous-hashed slice of the keyspace with its own cache and "
        "journal; a killed worker is respawned with its journal replayed "
        "(default 0: classic single-process daemon)",
    )
    serve.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --shards workers "
        "(default: platform default)",
    )
    serve.add_argument(
        "--retry-jitter-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the deterministic per-client Retry-After jitter "
        "on 429/503 responses (default 0)",
    )

    bench = commands.add_parser(
        "bench",
        help="time optimize_intra, optimize_fused, and end-to-end batch "
        "throughput; writes a BENCH_<date>.json trend file",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timed calls per micro-benchmark shape (default 5)",
    )
    bench.add_argument(
        "--batch-requests",
        type=int,
        default=200,
        help="unique requests in the end-to-end throughput run "
        "(default 200)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="engine pool width for the throughput run (default 2)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="result file (default BENCH_<date>.json in the current "
        "directory; '-' skips the file and prints JSON to stdout)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed BENCH_*.json to guard against: exit nonzero if "
        "batch throughput regressed beyond --max-regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="tolerated fractional throughput drop vs --baseline "
        "(default 0.30 = 30%%)",
    )

    call = commands.add_parser(
        "call",
        help="evaluate JSON-lines analysis requests against a running "
        "`repro serve` daemon (client-side one-shot)",
    )
    call.add_argument(
        "requests",
        nargs="?",
        default="-",
        help="JSON-lines request file, or '-' for stdin (default)",
    )
    call.add_argument(
        "--url",
        default="http://127.0.0.1:8177",
        help="server base URL (default http://127.0.0.1:8177)",
    )
    call.add_argument(
        "--output",
        default="-",
        help="JSON-lines results file, or '-' for stdout (default)",
    )
    call.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline forwarded as X-Repro-Deadline",
    )
    call.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        metavar="N",
        help="stream the batch in chunks of N requests (default 0: one "
        "submission)",
    )
    call.add_argument(
        "--retries",
        type=int,
        default=5,
        help="total attempts for 429/503/transient failures (default 5)",
    )
    call.add_argument(
        "--retry-delay",
        type=float,
        default=0.05,
        help="base deterministic backoff between attempts in seconds "
        "(default 0.05)",
    )
    call.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-exchange socket timeout in seconds (default 60)",
    )
    call.add_argument(
        "--health",
        action="store_true",
        help="just GET /healthz, print it, and exit (readiness probe)",
    )
    call.add_argument(
        "--reshard",
        type=int,
        default=None,
        metavar="N",
        help="POST /admin/reshard to live-resize a sharded tier to N "
        "workers, print the handoff summary, and exit",
    )
    call.add_argument(
        "--compact",
        action="store_true",
        help="POST /admin/compact to fold the server's journal(s) down "
        "to their deduped durable completions, print the summary, and "
        "exit",
    )
    call.add_argument(
        "--server-stats",
        action="store_true",
        help="print the server's /stats rollup to stderr after the call",
    )
    call.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any request in the batch errored",
    )

    fsck = commands.add_parser(
        "fsck",
        help="offline integrity check of journal / cache files: verify "
        "every record's CRC, report dedup + torn-tail stats, exit 0 "
        "(clean), 1 (problems found), or 2 (cannot check)",
    )
    fsck.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="journal or cache files to check",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt records to <path>.quarantine, truncate "
        "torn tails, and rewrite a clean journal (their requests are "
        "recomputed on the next --resume, never served corrupted)",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the per-file reports as JSON instead of text",
    )

    selfcheck = commands.add_parser(
        "selfcheck",
        help="run a small fault-injected batch and verify the resilience "
        "layer held (smoke test for CI)",
    )
    selfcheck.add_argument(
        "--stats",
        action="store_true",
        help="print the batch summary to stderr",
    )
    selfcheck.add_argument(
        "--skip-chaos",
        action="store_true",
        help="skip phase 6 (the quick seeded chaos soak)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="boot a real sharded fleet, apply a seeded deterministic "
        "fault timeline under load, and verify the tier's invariants "
        "(byte-identical output, containment, disk-fault survival)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=7,
        help="timeline seed; the same seed always reproduces the same "
        "fault schedule (default 7)",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=3,
        help="shard worker processes in the fleet (default 3)",
    )
    chaos.add_argument(
        "--duration",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="soak length in seconds (default 30)",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="short smoke profile: 2 shards, ~6s, kill + disk fault + "
        "brief stall (no crash loop)",
    )
    chaos.add_argument(
        "--profile",
        default=None,
        choices=list(CHAOS_PROFILES),
        help="named fault profile: full, quick, latency (ipc_delay-heavy), "
        "or overlap (resize during crash loop, kill mid-handoff, disk "
        "fault on successor); overrides --quick",
    )
    chaos.add_argument(
        "--timeline",
        default=None,
        metavar="SPEC",
        help="explicit ';'-joined event specs overriding the seeded "
        "generator, e.g. 'kill@2:shard=1;journal_fault@5:shard=2:"
        "mode=enospc'",
    )
    chaos.add_argument(
        "--print-timeline",
        action="store_true",
        help="print the resolved fault timeline and exit without "
        "booting anything (dry run)",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="print the full chaos report as JSON to stdout",
    )

    commands.add_parser("tables", help="render paper Tables I-III")
    fig9 = commands.add_parser("fig9", help="principles vs search sweep")
    fig9.add_argument(
        "--fast", action="store_true", help="skip the genetic baseline"
    )
    fig9.add_argument(
        "--certify",
        action="store_true",
        help="independently certify every principle point (fails loud)",
    )
    commands.add_parser("fig10", help="7 models x 5 platforms")
    commands.add_parser("fig11", help="LLaMA2 sequence-length sweep")
    commands.add_parser("fig12", help="area breakdown")
    report = commands.add_parser(
        "report", help="run everything, emit a markdown reproduction report"
    )
    report.add_argument(
        "--output", default="-", help="file path, or '-' for stdout"
    )
    report.add_argument(
        "--fast", action="store_true", help="skip the genetic baseline"
    )
    return parser


def _cmd_optimize(args: argparse.Namespace) -> int:
    op = matmul("mm", args.m, args.k, args.l)
    result = optimize_intra(op, args.buffer_kb * 1024)
    print(result.describe())
    for name, entry in result.report.per_tensor.items():
        print(f"  {name}: {entry.accesses} accesses (x{entry.multiplier})")
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    op1 = matmul("mm1", args.m, args.k, args.l)
    op2 = matmul("mm2", args.m, args.l, args.n, a=op1.output)
    decision = decide_fusion(
        [op1, op2], args.buffer_kb * 1024, include_cross=args.cross
    )
    print(decision.describe())
    if decision.fused is not None:
        print("  " + decision.fused.describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    buffer_elems = (
        args.buffer if args.buffer is not None else args.buffer_kb * 1024
    )
    if args.scenario is None:
        if args.model is None:
            print("plan: a MODEL or --scenario is required", file=sys.stderr)
            return 2
        graph = build_layer_graph(model_by_name(args.model))
        plan = optimize_graph(graph, buffer_elems)
        print(plan.describe())
        return 0

    import json

    from .service import dag_plan_request, execute_request

    request = dag_plan_request(
        args.scenario,
        buffer_elems,
        model=args.model or "",
        max_group=args.max_group,
        retention=not args.no_retention,
        baseline=args.baseline is not None,
        budget=args.budget,
        certify=args.certify,
        paranoid=args.paranoid,
    )
    record = execute_request(request)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(
            f"dag-plan[{args.scenario}] @ {buffer_elems} elems: "
            f"principle MA={record['total_memory_access']} "
            f"(chain-independent {record['chain_memory_access']}, "
            f"ideal {record['ideal_memory_access']})"
        )
        if record["retained"]:
            print("  retained: " + ", ".join(record["retained"]))
        for segment in record["segments"]:
            line = (
                f"  {'+'.join(segment['ops'])}: MA={segment['memory_access']}"
            )
            if segment["fused"]:
                line += " (fused)"
            if segment["resident"]:
                line += (
                    f" [resident {'+'.join(segment['resident'])}, "
                    f"{segment['reserved_elems']} elems reserved]"
                )
            print(line)
        baseline = record.get("baseline")
        if baseline is not None:
            print(
                f"  enumerative baseline: MA={baseline['total_memory_access']} "
                f"({baseline['plans_evaluated']}/{baseline['budget']} plans, "
                f"exhausted={baseline['exhausted']})"
            )
        certification = record.get("certification")
        if certification is not None:
            status = "OK" if certification["ok"] else "FAILED"
            healed = " (healed)" if certification["healed"] else ""
            print(f"  certificate: {status}{healed}")

    code = 0
    baseline = record.get("baseline")
    if baseline is not None and not baseline["agrees"]:
        print(
            "plan: principle-guided plan LOSES to the enumerative baseline",
            file=sys.stderr,
        )
        code = 1
    certification = record.get("certification")
    if certification is not None and not certification["ok"]:
        print("plan: certificate failed", file=sys.stderr)
        code = 1
    return code


def _cmd_compare(args: argparse.Namespace) -> int:
    memory = MemorySpec(buffer_bytes=args.buffer_kb * 1024)
    graph = build_layer_graph(model_by_name(args.model))
    perfs = {
        factory(memory).name: evaluate_graph(graph, factory(memory))
        for factory in ALL_PLATFORMS
    }
    baseline = perfs["TPUv4i"]
    rows = [
        [
            name,
            perf.total_memory_access,
            round(perf.total_memory_access / baseline.total_memory_access, 3),
            round(perf.utilization, 3),
            f"{perf.speedup_over(baseline):.2f}x",
        ]
        for name, perf in perfs.items()
    ]
    print(
        format_table(
            ["platform", "MA", "MA (norm.)", "utilization", "speedup"],
            rows,
            title=f"{args.model} @ {args.buffer_kb} KB",
        )
    )
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    """Certify one analysis end to end; exit code mirrors the verdict.

    Without ``--corrupt-ma``: exit 0 iff the certificate holds.  With
    ``--corrupt-ma DELTA`` the claimed count is deliberately understated
    by DELTA and the exit code *inverts*: 0 iff the auditor caught the
    corruption (failed certificate, or a paranoid heal that restored the
    true count and recorded the discrepancy).
    """

    import json

    from .verify import certify_fused, certify_intra, drain_discrepancies

    buffer_elems = (
        args.buffer_elems
        if args.buffer_elems is not None
        else args.buffer_kb * 1024
    )
    drain_discrepancies()  # the run's report should only carry its own
    op = matmul("mm1", args.m, args.k, args.l)
    if args.consumer_n is None:
        baseline = optimize_intra(op, buffer_elems)
        claimed = (
            None
            if args.corrupt_ma is None
            else baseline.memory_access - args.corrupt_ma
        )
        certified = certify_intra(
            op,
            buffer_elems,
            result=baseline,
            claimed_memory_access=claimed,
            paranoid=args.paranoid,
        )
    else:
        from .core import optimize_fused

        consumer = matmul("mm2", args.m, args.l, args.consumer_n, a=op.output)
        ops = [op, consumer]
        baseline = optimize_fused(
            ops, buffer_elems, include_cross=not args.no_cross
        )
        if baseline is None:
            print(
                f"error: no fused dataflow fits {buffer_elems} elements",
                file=sys.stderr,
            )
            return 2
        claimed = (
            None
            if args.corrupt_ma is None
            else baseline.memory_access - args.corrupt_ma
        )
        certified = certify_fused(
            ops,
            buffer_elems,
            result=baseline,
            include_cross=not args.no_cross,
            claimed_memory_access=claimed,
            paranoid=args.paranoid,
        )
    certificate = certified.certificate
    if args.json:
        print(json.dumps(certificate.as_dict(), sort_keys=True, indent=2))
    else:
        print(certificate.describe())
        if certificate.healed:
            result = certified.result
            label = getattr(result, "label", None) or result.pattern.label
            print(
                f"healed: certified result MA={result.memory_access} "
                f"({label})"
            )
    drain_discrepancies()
    if args.corrupt_ma is not None:
        caught = not certificate.ok or (
            certificate.healed and certificate.discrepancy is not None
        )
        if caught:
            print("corruption caught by the auditor", file=sys.stderr)
            return 0
        print(
            "corruption NOT caught: certificate passed a corrupted claim",
            file=sys.stderr,
        )
        return 1
    return 0 if certificate.ok else 1


def _read_batch_payloads(source: str):
    """Stream a JSON-lines request file one line at a time.

    A generator, not a ``read()``: a million-request input costs one
    line of buffering here, not O(file) memory.  Undecodable lines are
    reported to stderr *with their line number* and passed through as
    raw strings so the engine still records a structured per-line error
    at the right position in the output stream.
    """

    import json
    from contextlib import nullcontext

    context = (
        nullcontext(sys.stdin)
        if source == "-"
        else open(source, "r", encoding="utf-8")
    )
    with context as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                print(
                    f"warning: {source} line {lineno}: not valid JSON "
                    f"({exc})",
                    file=sys.stderr,
                )
                yield line


def _arm_fault_injection(spec: Optional[str]) -> Optional[int]:
    """Arm the env-guarded dev fault harness; returns an exit code on error.

    The harness must be unreachable from production invocations unless
    explicitly armed via ``REPRO_ENABLE_FAULT_INJECTION=1``.
    """

    import os

    from .service import (
        FAULTS_ENV,
        FAULTS_GUARD_ENV,
        FaultSpecError,
        parse_fault_spec,
        set_fault_plan,
    )

    if spec is None:
        return None
    if os.environ.get(FAULTS_GUARD_ENV) != "1":
        print(
            f"error: --inject-faults requires {FAULTS_GUARD_ENV}=1 "
            "in the environment (dev/test harness only)",
            file=sys.stderr,
        )
        return 2
    try:
        set_fault_plan(parse_fault_spec(spec))
    except FaultSpecError as exc:
        print(f"error: bad fault spec: {exc}", file=sys.stderr)
        return 2
    # Export for process-pool children (incl. spawn start method).
    os.environ[FAULTS_ENV] = spec
    return None


def _cmd_batch(args: argparse.Namespace) -> int:
    import os

    from .service import (
        RESUMABLE_EXIT_CODE,
        BatchEngine,
        BatchInterrupted,
        BatchJournal,
        EngineConfig,
        JournalError,
        JournalExistsError,
        shutdown_guard,
    )

    failure = _arm_fault_injection(args.inject_faults)
    if failure is not None:
        return failure

    if args.resume and not args.journal:
        print("error: --resume requires --journal PATH", file=sys.stderr)
        return 2
    payloads = _read_batch_payloads(args.requests)
    engine = BatchEngine(
        EngineConfig(
            jobs=args.jobs,
            cache_size=args.cache_size,
            executor=args.executor,
            max_attempts=args.max_attempts,
            retry_base_delay=args.retry_delay,
            deadline_seconds=args.deadline,
            breaker_threshold=args.breaker_threshold,
            fallback=not args.no_fallback,
            start_method=args.start_method,
            stall_timeout_seconds=args.stall_timeout,
            paranoid=args.paranoid,
        )
    )
    if args.cache_file and os.path.exists(args.cache_file):
        try:
            engine.load_cache(args.cache_file)
        except (ValueError, OSError, KeyError, TypeError) as exc:
            # The cache is an optimization: a corrupt or unreadable file
            # must not abort the batch. Start cold and overwrite on save.
            print(
                "warning: ignoring unreadable cache file %s (%s)"
                % (args.cache_file, exc),
                file=sys.stderr,
            )
    journal = None
    if args.journal:
        try:
            journal = BatchJournal(
                args.journal,
                resume=args.resume,
                compact_max_records=args.compact_max_records,
                compact_max_bytes=args.compact_max_bytes,
            )
        except JournalExistsError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (JournalError, ValueError) as exc:
            # Unknown version / wrong format / bad knob: fail loud,
            # never misread.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if journal.recovered_drops:
            print(
                f"journal: recovered {args.journal}, dropped "
                f"{journal.recovered_drops} torn line(s); their requests "
                "will be recomputed",
                file=sys.stderr,
            )
        if journal.corrupt_quarantined:
            print(
                f"journal: quarantined {journal.corrupt_quarantined} "
                f"corrupt record(s) from {args.journal} to "
                f"{journal.quarantine_path}; their requests will be "
                "recomputed, never served corrupted",
                file=sys.stderr,
            )
    try:
        with shutdown_guard() as stop:
            report = engine.run_batch(
                payloads, journal=journal, stop_event=stop
            )
    except BatchInterrupted as exc:
        # Graceful shutdown: everything completed is journaled; persist
        # the warm cache too, then exit distinctly so callers (and CI)
        # can tell "interrupted, resumable" from a failed batch.
        if args.cache_file:
            engine.save_cache(args.cache_file)
        print(f"batch: {exc}", file=sys.stderr)
        return RESUMABLE_EXIT_CODE
    finally:
        if journal is not None:
            journal.close()
    results = report.to_jsonl()
    if args.output == "-":
        if results:
            print(results)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(results + ("\n" if results else ""))
    if args.cache_file:
        engine.save_cache(args.cache_file)
    if args.stats:
        print(report.render_text(), file=sys.stderr)
    if report.errors:
        print(
            f"batch: {report.errors} of {report.requests} request(s) "
            "failed",
            file=sys.stderr,
        )
    return 1 if (args.strict and report.errors) else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving daemon until SIGTERM/SIGINT, then drain losslessly.

    The first signal stops admission (new analyze calls get 503 +
    ``Retry-After``), waits for every accepted request to finish, flushes
    the journal and the persistent cache, and exits 0.  A second signal
    force-quits, matching ``repro batch`` semantics.
    """

    import os

    from .server import ReproServer, ServerConfig
    from .server.protocol import PROTOCOL_VERSION
    from .service import FileLock, FileLockedError, shutdown_guard

    failure = _arm_fault_injection(args.inject_faults)
    if failure is not None:
        return failure
    if args.shards < 0:
        print(
            "error: --shards must be >= 0 (0 = single-process)",
            file=sys.stderr,
        )
        return 2
    sharded = args.shards > 0
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_size=args.cache_size,
            max_concurrency=args.max_concurrency,
            queue_depth=args.queue_depth,
            rate_limit=args.rate_limit,
            burst=args.burst,
            default_deadline=args.deadline,
            max_deadline=args.max_deadline,
            paranoid=args.paranoid,
            journal_path=args.journal,
            compact_max_records=args.compact_max_records,
            compact_max_bytes=args.compact_max_bytes,
            verbose=args.verbose,
            retry_jitter_seed=args.retry_jitter_seed,
        )
    except ValueError as exc:
        print(f"error: cannot start server: {exc}", file=sys.stderr)
        return 2
    # Daemon-lifetime ownership of the persistent cache file: two daemons
    # saving one cache race each other's os.replace. Shard workers derive
    # per-shard paths from it, so one router-level lock covers them all.
    cache_lock = None
    if args.cache_file:
        try:
            cache_lock = FileLock(
                args.cache_file + ".lock", purpose="cache file"
            ).acquire()
        except FileLockedError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        if sharded:
            from .shard import ShardBootError, ShardedServer

            try:
                server = ShardedServer(
                    config,
                    shards=args.shards,
                    cache_file=args.cache_file,
                    start_method=args.start_method,
                )
            except (ShardBootError, ValueError, OSError) as exc:
                print(f"error: cannot start server: {exc}", file=sys.stderr)
                return 2
        else:
            try:
                server = ReproServer(config)
            except (ValueError, OSError) as exc:
                print(f"error: cannot start server: {exc}", file=sys.stderr)
                return 2
            if args.cache_file and os.path.exists(args.cache_file):
                try:
                    loaded = server.app.load_cache(args.cache_file)
                    print(
                        f"repro serve: warmed {loaded} cache entr"
                        f"{'y' if loaded == 1 else 'ies'} from "
                        f"{args.cache_file}",
                        file=sys.stderr,
                    )
                except (ValueError, OSError, KeyError, TypeError) as exc:
                    print(
                        f"warning: ignoring unreadable cache file "
                        f"{args.cache_file} ({exc})",
                        file=sys.stderr,
                    )
        server.start()
        # The "listening" line is the startup contract: scripts (and the
        # CI smoke step) parse the bound address from it, which is how an
        # ephemeral --port 0 becomes discoverable.
        print(
            f"repro serve: listening on {server.url} "
            f"(protocol {PROTOCOL_VERSION}, jobs={args.jobs}, "
            f"max_concurrency={config.max_concurrency}, "
            f"queue_depth={config.queue_depth}"
            + (f", shards={args.shards}" if sharded else "")
            + ")",
            file=sys.stderr,
            flush=True,
        )
        if sharded:
            pids = " ".join(
                str(pid) for pid in server.app.supervisor.pids if pid
            )
            print(f"repro serve: shard pids {pids}", file=sys.stderr, flush=True)
        with shutdown_guard() as stop:
            stop.wait()
        if sharded:
            # Read counters while the fleet is still up; the drain below
            # stops the workers (they save their own per-shard caches).
            stats = server.app.stats_dict()
            drained = server.shutdown(drain=True)
            served = stats["serving"].get("requests_served", 0)
        else:
            drained = server.shutdown(drain=True)
            if args.cache_file:
                saved = server.app.save_cache(args.cache_file)
                print(
                    f"repro serve: saved {saved} cache entries to "
                    f"{args.cache_file}",
                    file=sys.stderr,
                )
            stats = server.app.stats_dict()
            served = stats["serving"].get("requests_served", 0)
        print(
            "repro serve: drained and stopped "
            f"(analyze_calls={stats['serving'].get('analyze_calls', 0)}, "
            f"requests_served={served})",
            file=sys.stderr,
        )
        return 0 if drained else 1
    finally:
        if cache_lock is not None:
            cache_lock.release()


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the micro/throughput benchmarks and persist the trend file."""
    import json
    import time

    from .bench import render_bench_text, run_bench, write_bench

    if args.repeats < 1 or args.batch_requests < 1 or args.jobs < 1:
        print(
            "error: --repeats, --batch-requests, and --jobs must be >= 1",
            file=sys.stderr,
        )
        return 2
    result = run_bench(
        repeats=args.repeats,
        batch_requests=args.batch_requests,
        jobs=args.jobs,
    )
    print(render_bench_text(result), file=sys.stderr)
    guard_rc = 0
    if args.baseline:
        from .bench import check_regression, read_bench

        try:
            baseline = read_bench(args.baseline)
        except (OSError, ValueError) as exc:
            print(
                f"bench: cannot read baseline {args.baseline}: {exc}",
                file=sys.stderr,
            )
            return 2
        problems = check_regression(
            result, baseline, max_regression=args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"bench REGRESSION: {problem}", file=sys.stderr)
            guard_rc = 1
        else:
            base_rps = baseline["batch"]["requests_per_second"]
            cur_rps = result["batch"]["requests_per_second"]
            print(
                f"bench guard ok: {cur_rps:.1f} req/s vs baseline "
                f"{base_rps:.1f} req/s (tolerance "
                f"{args.max_regression:.0%})",
                file=sys.stderr,
            )
    if args.output == "-":
        print(json.dumps(result, sort_keys=True, indent=2))
        return guard_rc
    path = args.output or f"BENCH_{time.strftime('%Y%m%d')}.json"
    write_bench(result, path)
    print(f"bench: wrote {path}", file=sys.stderr)
    return guard_rc


def _cmd_call(args: argparse.Namespace) -> int:
    """One-shot client: ship requests to a live daemon, print results.

    Output is byte-identical to ``repro batch`` on the same request file
    -- the server serves the engine's deterministic JSON-lines stream and
    this command writes it verbatim (re-canonicalized when ``--chunk-size``
    splits the batch).
    """

    import json

    from .server import (
        ReproClient,
        ServerError,
        ServerUnavailableError,
        canonical_record_line,
    )

    try:
        client = ReproClient.from_url(
            args.url,
            timeout=args.timeout,
            max_attempts=max(1, args.retries),
            retry_base_delay=args.retry_delay,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.health:
            print(json.dumps(client.health(), sort_keys=True, indent=2))
            return 0
        if args.reshard is not None:
            summary = client.reshard(args.reshard)
            print(json.dumps(summary, sort_keys=True, indent=2))
            return 0
        if args.compact:
            summary = client.compact()
            print(json.dumps(summary, sort_keys=True, indent=2))
            return 0 if summary.get("ok") else 1
        payloads = _read_batch_payloads(args.requests)
        if args.chunk_size > 0:
            lines = [
                canonical_record_line(record)
                for record in client.stream_batch(
                    payloads, chunk_size=args.chunk_size,
                    deadline=args.deadline,
                )
            ]
        else:
            lines = client.batch_lines(list(payloads), deadline=args.deadline)
        results = "\n".join(lines)
        if args.output == "-":
            if results:
                print(results)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(results + ("\n" if results else ""))
        errors = sum(
            1 for line in lines if not json.loads(line).get("ok")
        )
        if args.server_stats:
            print(
                json.dumps(client.stats(), sort_keys=True, indent=2),
                file=sys.stderr,
            )
        if errors:
            print(
                f"call: {errors} of {len(lines)} request(s) failed",
                file=sys.stderr,
            )
        return 1 if (args.strict and errors) else 0
    except ServerUnavailableError as exc:
        print(f"error: server unreachable: {exc}", file=sys.stderr)
        return 3
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Offline integrity check; exit code is the worst per-file verdict.

    One summary line per file plus one ``line N: ...`` detail line per
    corrupt/torn record (key and reason included when recoverable), so a
    CI grep can name exactly which record a flipped byte destroyed.
    """

    import json

    from .service import FSCK_CLEAN, fsck_file

    reports = [fsck_file(path, repair=args.repair) for path in args.paths]
    if args.json:
        print(json.dumps(reports, sort_keys=True, indent=2))
        return max(report["exit_code"] for report in reports)
    for report in reports:
        status = report["status"]
        if report["kind"] == "cache":
            print(
                f"{report['path']}: cache {status} "
                f"({report['completion_lines']} entr"
                f"{'y' if report['completion_lines'] == 1 else 'ies'}, "
                f"{report['unique_keys']} unique key(s))"
            )
        else:
            print(
                f"{report['path']}: {report['kind']} {status} "
                f"(v{report['version']}, {report['file_bytes']} bytes, "
                f"{report['completion_lines']} completion line(s), "
                f"{report['unique_keys']} unique key(s), "
                f"{report['durable_records']} durable, "
                f"{report['duplicate_lines']} duplicate(s), "
                f"{report['heartbeat_lines']} heartbeat(s))"
            )
        if report["detail"]:
            print(f"  {report['detail']}")
        for problem in report["corrupt"]:
            key = problem.get("key") or "?"
            print(
                f"  line {problem['line']}: CORRUPT key={key} "
                f"({problem['reason']})"
            )
        for problem in report["torn"]:
            key = problem.get("key") or "?"
            print(
                f"  line {problem['line']}: TORN key={key} "
                f"({problem['reason']})"
            )
        if report["repaired"]:
            print(
                f"  repaired: quarantined {report['quarantined']} corrupt "
                f"record(s), dropped {report['recovered_drops']} torn "
                "line(s); journal rewritten clean (lost requests are "
                "recomputed on the next --resume)"
            )
    worst = max(report["exit_code"] for report in reports)
    clean = sum(1 for report in reports if report["exit_code"] == FSCK_CLEAN)
    print(
        f"fsck: {clean}/{len(reports)} file(s) clean",
        file=sys.stderr,
    )
    return worst


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos soak against a real fleet; nonzero on any violation."""
    import json

    from .chaos import (
        ChaosConfig,
        describe_timeline,
        generate_timeline,
        parse_timeline,
        run_chaos,
    )

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    profile = args.profile or ("quick" if args.quick else "full")
    compact = profile == "quick"
    shards = 2 if compact and args.shards == 3 else args.shards
    duration = 6.0 if compact and args.duration == 30.0 else args.duration
    try:
        events = (
            parse_timeline(args.timeline)
            if args.timeline
            else generate_timeline(args.seed, shards, duration, profile)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bad_shard = [e for e in events if e.shard >= shards]
    if bad_shard:
        print(
            f"error: timeline targets shard {bad_shard[0].shard} but the "
            f"fleet has only {shards} shard(s)",
            file=sys.stderr,
        )
        return 2
    if args.print_timeline:
        print(
            f"chaos timeline (seed {args.seed}, {shards} shards, "
            f"{duration:g}s, profile {profile}):"
        )
        for line in describe_timeline(events):
            print(f"  {line}")
        return 0
    report = run_chaos(
        ChaosConfig(
            seed=args.seed,
            shards=shards,
            duration=duration,
            profile=profile,
            events=events,
        )
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    if report.passed:
        print(
            f"chaos ok: seed {report.seed}, {report.shards} shards, "
            f"{report.iterations} iterations / {report.requests_ok} "
            f"requests byte-identical to oracle; {report.respawns} "
            f"respawns, {report.contained} containment(s), "
            f"{report.reroutes} reroutes, {report.timeouts} stall "
            f"escalation(s), {report.reshards} reshard(s) / "
            f"{report.keys_moved} key(s) moved, {report.replica_reads} "
            f"replica read(s), journal degraded survival="
            f"{report.journal_degraded}, {report.corruptions} journal "
            f"corruption(s) / {report.corrupt_quarantined} quarantined, "
            f"{report.compact_kills} mid-compaction kill(s) / "
            f"{report.compactions} compaction(s), post-soak fsck clean="
            f"{report.journals_valid}, conservation="
            f"{report.conservation}",
            file=sys.stderr,
        )
        return 0
    for failure in report.invariant_failures:
        print(f"chaos FAILED: {failure}", file=sys.stderr)
    for note in report.notes:
        print(f"chaos note: {note}", file=sys.stderr)
    return 1


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """Smoke-test the resilience layer with a deterministic faulty batch.

    Phase 1 injects a transient raise (retried to success), a cooperative
    delay (bounded by the deadline), and an in-process worker crash
    (retried), then verifies every request produced a record in input
    order and the resilience counters registered each failure mode.

    Phase 2 proves the durable-execution layer: a journaled batch is
    killed by an injected crash-after-2-completions fault, resumed from
    the journal, and its output checked byte-identical to an
    uninterrupted run with only the missing requests recomputed.

    Phase 3 proves the certification layer: a known-good result passes a
    paranoid certificate, a deliberately corrupted memory-access claim is
    caught by the cost auditor, and the branch-and-bound fallback heals
    the pinned ROADMAP counterexample (green-only fused patterns at
    m=43,k=2,l=19,n=23 @ 173 elements) down to the certified optimum with
    a populated discrepancy report.

    Phase 4 proves the serving loop: a daemon is booted on an ephemeral
    port, one paranoid-certified batch is pushed through
    :class:`~repro.server.client.ReproClient`, the returned lines are
    checked byte-identical to a direct engine run, and the server is
    drained losslessly.

    Phase 5 proves the sharded tier survives shard death: a 3-shard
    :class:`~repro.shard.ShardedServer` (per-shard journals, slowed by an
    injected per-request delay) serves a batch while the shard that owns
    the first request is SIGKILLed mid-flight; the supervisor must
    respawn it (journal replayed by the successor) and the batch must
    still complete byte-identical to a direct single-process run.

    Phase 6 (skippable with ``--skip-chaos``) runs the quick seeded
    chaos profile (:func:`repro.chaos.run_chaos`): a 2-shard fleet
    soaked for ~6s through a worker kill, an armed journal disk fault,
    and a brief SIGSTOP stall, verifying byte-identical output, counter
    conservation, readyz truthfulness, and disk-fault survival.

    Phase 7 (also skippable with ``--skip-chaos``) proves the tier is
    elastic: a 2-shard fleet is live-resized to 3 and back to 2 via
    :meth:`~repro.shard.ShardedApp.reshard` while a churn thread keeps
    requests in flight and one worker is SIGKILLed between the resizes;
    every handoff must balance (imported + duplicates == exported) and a
    final batch must stay byte-identical to a direct engine run.

    Phase 8 proves the durable-state lifecycle: a journaled batch is
    followed by compactions SIGKILLed mid-rewrite (at the mid-write and
    pre-rename steps, in forked children); after each kill the journal
    must reopen with zero quarantined/torn records and a resumed run
    must replay every completion byte-identically to a direct run.
    """

    import tempfile

    from .service import (
        BatchAbortError,
        BatchEngine,
        BatchJournal,
        EngineConfig,
        injected_faults,
        intra_request,
        parse_request,
        request_key,
        sweep_point_request,
    )

    requests = [
        intra_request(64, 32, 48, 4096),
        sweep_point_request(96, 64, 80, 1024),
        intra_request(32, 32, 32, 2048),
        intra_request(64, 32, 48, 1),  # deterministic InfeasibleError
    ]
    flaky_key = request_key(requests[0])
    crash_key = request_key(requests[2])
    spec = (
        f"raise:{flaky_key[:16]}*:times=1:category=transient;"
        "delay:sweep_point:seconds=0.02;"
        f"crash:{crash_key[:16]}*:times=1"
    )
    failures: List[str] = []
    with injected_faults(spec):
        engine = BatchEngine(
            EngineConfig(jobs=2, max_attempts=3, deadline_seconds=30.0)
        )
        report = engine.run_batch(requests)
    if args.stats:
        print(report.render_text(), file=sys.stderr)
    if report.requests != len(requests):
        failures.append(
            f"lost requests: {report.requests}/{len(requests)} records"
        )
    if [entry.index for entry in report.entries] != list(range(len(requests))):
        failures.append("records out of input order")
    oks = [entry.ok for entry in report.entries]
    if oks != [True, True, True, False]:
        failures.append(f"unexpected ok pattern {oks}")
    error = report.entries[3].record.get("error", {})
    if error.get("type") != "InfeasibleError":
        failures.append(f"expected InfeasibleError, got {error.get('type')}")
    if report.resilience.get("retries", 0) < 2:
        failures.append(
            f"expected >=2 retries (flaky + crash), got {report.resilience}"
        )

    # ------------------------------------------------------------------
    # Phase 2: kill-and-resume through the write-ahead journal.
    # ------------------------------------------------------------------
    resume_requests = [
        intra_request(16 * step, 24, 32, 8192) for step in range(1, 6)
    ]
    replayed = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        journal_path = f"{tmpdir}/selfcheck.journal"
        with injected_faults("exit:*:after=2"):
            engine = BatchEngine(EngineConfig(jobs=2))
            journal = BatchJournal(journal_path, resume=True)
            try:
                engine.run_batch(resume_requests, journal=journal)
                failures.append("injected batch abort never fired")
            except BatchAbortError:
                pass
            finally:
                journal.close()
        journal = BatchJournal(journal_path, resume=True)
        if len(journal.completed) != 2:
            failures.append(
                f"journal checkpointed {len(journal.completed)} "
                "completions before the crash; expected 2"
            )
        resumed = BatchEngine(EngineConfig(jobs=2)).run_batch(
            resume_requests, journal=journal
        )
        journal.close()
        clean = BatchEngine(EngineConfig(jobs=2)).run_batch(resume_requests)
        if resumed.to_jsonl() != clean.to_jsonl():
            failures.append(
                "resumed batch output differs from uninterrupted run"
            )
        if resumed.replayed != 2 or resumed.computed != 3:
            failures.append(
                "resume recomputed the wrong split: replayed="
                f"{resumed.replayed} computed={resumed.computed}; "
                "expected 2 replayed + 3 computed"
            )
        replayed = resumed.replayed
        if args.stats:
            print(resumed.render_text(), file=sys.stderr)

    # ------------------------------------------------------------------
    # Phase 3: certification layer (audit, corruption, healing fallback).
    # ------------------------------------------------------------------
    from .core import optimize_fused
    from .verify import certify_fused, certify_intra, drain_discrepancies

    drain_discrepancies()
    good_op = matmul("mm", 64, 32, 48)
    good = certify_intra(good_op, 4096, paranoid=True)
    if not good.certificate.ok or good.certificate.healed:
        failures.append(
            "known-good intra result failed paranoid certification: "
            + "; ".join(good.certificate.failure_summaries())
        )
    corrupted = certify_intra(
        good_op,
        4096,
        claimed_memory_access=good.result.memory_access - 7,
    )
    if corrupted.certificate.ok:
        failures.append("cost auditor passed a corrupted MA claim")
    healed_ops = [matmul("mm1", 43, 2, 19)]
    healed_ops.append(matmul("mm2", 43, 19, 23, a=healed_ops[0].output))
    green_only = optimize_fused(healed_ops, 173, include_cross=False)
    healed = certify_fused(
        healed_ops, 173, result=green_only, paranoid=True
    )
    discrepancies = drain_discrepancies()
    if not (
        healed.certificate.healed
        and healed.certificate.ok
        and healed.certificate.discrepancy is not None
        and healed.result.memory_access
        < green_only.memory_access
    ):
        failures.append(
            "branch-and-bound fallback did not heal the pinned "
            "counterexample: "
            f"green={green_only.memory_access} "
            f"certified={healed.result.memory_access} "
            f"healed={healed.certificate.healed}"
        )
    if len(discrepancies) != 1:
        failures.append(
            f"discrepancy registry recorded {len(discrepancies)} "
            "report(s); expected 1 (the healed fused counterexample)"
        )
    certified_ma = healed.result.memory_access

    # ------------------------------------------------------------------
    # Phase 4: serving loop (daemon boot, client round-trip, drain).
    # ------------------------------------------------------------------
    from .server import ReproClient, ReproServer, ServerConfig

    serve_requests = [
        {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096,
         "paranoid": True},
        {"kind": "sweep_point", "m": 96, "k": 64, "l": 80,
         "buffer_elems": 1024},
    ]
    direct = BatchEngine(EngineConfig(jobs=1, paranoid=False)).run_batch(
        [parse_request(payload) for payload in serve_requests]
    )
    with ReproServer(ServerConfig(port=0, jobs=1)) as server:
        with ReproClient(port=server.port) as client:
            health = client.health()
            served = client.batch_lines(serve_requests)
        drained = server.shutdown(drain=True)
        server_stats = server.app.stats_dict()
    if "\n".join(served) != direct.to_jsonl():
        failures.append(
            "served batch output differs from direct engine run"
        )
    if direct.certified != 1:
        failures.append(
            "served paranoid request did not certify "
            f"(certified={direct.certified}, expected 1)"
        )
    if not drained:
        failures.append("server failed to drain in-flight work")
    if server_stats["serving"].get("requests_served") != len(serve_requests):
        failures.append(
            "server counters disagree: requests_served="
            f"{server_stats['serving'].get('requests_served')}, "
            f"expected {len(serve_requests)}"
        )
    protocol = health.get("protocol")

    # ------------------------------------------------------------------
    # Phase 5: sharded tier (kill one shard mid-batch, lossless respawn).
    # ------------------------------------------------------------------
    import os
    import signal
    import threading
    import time

    from .shard import ShardedServer, rendezvous_shard, routing_key

    shard_requests = [
        {"kind": "intra", "m": 40 + step, "k": 24, "l": 32,
         "buffer_elems": 8192}
        for step in range(12)
    ]
    shard_direct = BatchEngine(EngineConfig(jobs=2)).run_batch(
        [parse_request(payload) for payload in shard_requests]
    )
    shard_count = 3
    victim_index = rendezvous_shard(routing_key(shard_requests[0]), shard_count)
    respawns = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        # The delay paces the batch so the SIGKILL lands mid-flight; the
        # env export lets the shard worker processes inherit it.
        with injected_faults("delay:intra:seconds=0.12", export_env=True):
            sharded = ShardedServer(
                ServerConfig(
                    port=0, jobs=1, journal_path=f"{tmpdir}/shards.journal"
                ),
                shards=shard_count,
                health_interval=0.2,
            ).start()
            try:
                outcome: dict = {}

                def _run_shard_batch() -> None:
                    try:
                        with ReproClient(
                            port=sharded.port, timeout=120.0
                        ) as shard_client:
                            outcome["lines"] = shard_client.batch_lines(
                                shard_requests
                            )
                    except Exception as exc:  # surfaced as a failure below
                        outcome["error"] = repr(exc)

                runner = threading.Thread(target=_run_shard_batch)
                runner.start()
                time.sleep(0.5)  # a few delayed requests deep into the batch
                victim = sharded.app.supervisor.handles[victim_index]
                victim_pid = victim.pid
                os.kill(victim_pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                runner.join(timeout=90.0)
                if runner.is_alive():
                    failures.append(
                        "sharded batch hung after shard kill (still running "
                        "after 90s)"
                    )
                elif "error" in outcome:
                    failures.append(
                        f"sharded batch errored after shard kill: "
                        f"{outcome['error']}"
                    )
                elif "\n".join(outcome["lines"]) != shard_direct.to_jsonl():
                    failures.append(
                        "sharded batch output differs from direct run "
                        "after shard kill"
                    )
                snapshot = sharded.app.supervisor.snapshot()
                respawns = snapshot["respawns"]
                if respawns < 1:
                    failures.append(
                        "killed shard was never respawned "
                        f"(snapshot {snapshot})"
                    )
                if victim.pid == victim_pid:
                    failures.append(
                        "victim shard still reports the killed pid "
                        f"{victim_pid}"
                    )
            finally:
                sharded.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Phase 6: quick seeded chaos soak (kill + disk fault + stall).
    # ------------------------------------------------------------------
    chaos_summary = "chaos skipped (--skip-chaos)"
    if not getattr(args, "skip_chaos", False):
        from .chaos import ChaosConfig, run_chaos

        chaos_report = run_chaos(
            ChaosConfig(
                seed=7,
                shards=2,
                duration=6.0,
                profile="quick",
                log=lambda message: (
                    print(f"repro chaos: {message}", file=sys.stderr)
                    if args.stats
                    else None
                ),
            )
        )
        if not chaos_report.passed:
            for failure in chaos_report.invariant_failures:
                failures.append(f"chaos: {failure}")
        chaos_summary = (
            f"chaos ok ({chaos_report.iterations} iterations "
            f"byte-identical, {chaos_report.respawns} respawn(s), "
            f"journal degraded survival={chaos_report.journal_degraded})"
        )

    # ------------------------------------------------------------------
    # Phase 7: elastic soak (resize up/down under churn + one kill).
    # ------------------------------------------------------------------
    elastic_summary = "elastic skipped (--skip-chaos)"
    if not getattr(args, "skip_chaos", False):
        from .shard import wait_for_pid_change

        elastic_requests = [
            {"kind": "intra", "m": 28 + step, "k": 20, "l": 24,
             "buffer_elems": 4096}
            for step in range(8)
        ]
        elastic_direct = BatchEngine(EngineConfig(jobs=2)).run_batch(
            [parse_request(payload) for payload in elastic_requests]
        )
        elastic_moved = 0
        with tempfile.TemporaryDirectory() as tmpdir:
            elastic = ShardedServer(
                ServerConfig(
                    port=0, jobs=1, journal_path=f"{tmpdir}/elastic.journal"
                ),
                shards=2,
                health_interval=0.2,
            ).start()
            try:
                stop_churn = threading.Event()
                churn_errors: List[str] = []

                def _churn() -> None:
                    step = 0
                    try:
                        with ReproClient(
                            port=elastic.port, timeout=60.0
                        ) as churn_client:
                            while not stop_churn.is_set():
                                step += 1
                                churn_client.batch_lines([
                                    {"kind": "sweep_point",
                                     "m": 32 + step % 16, "k": 24,
                                     "l": 40, "buffer_elems": 2048}
                                ])
                                time.sleep(0.02)
                    except Exception as exc:  # surfaced as a failure below
                        churn_errors.append(repr(exc))

                churner = threading.Thread(target=_churn)
                churner.start()
                handoffs = []
                with ReproClient(
                    port=elastic.port, timeout=120.0
                ) as elastic_client:
                    # Seed the per-shard journals so the resizes have
                    # completions to hand off.
                    elastic_client.batch_lines(elastic_requests)
                    handoffs.append(elastic.app.reshard(3))
                    kill_victim = elastic.app.supervisor.handles[1]
                    kill_pid = kill_victim.pid
                    os.kill(
                        kill_pid,
                        getattr(signal, "SIGKILL", signal.SIGTERM),
                    )
                    if (
                        wait_for_pid_change(
                            elastic.app.supervisor, 1, kill_pid,
                            timeout=30.0,
                        )
                        is None
                    ):
                        failures.append(
                            "elastic: shard-1 never respawned after the "
                            "mid-flux kill"
                        )
                    handoffs.append(elastic.app.reshard(2))
                    final_lines = elastic_client.batch_lines(
                        elastic_requests
                    )
                stop_churn.set()
                churner.join(timeout=60.0)
                if churner.is_alive():
                    failures.append("elastic: churn thread hung")
                for error in churn_errors:
                    failures.append(f"elastic: churn request failed: {error}")
                for summary in handoffs:
                    balance = (
                        summary["imported"] + summary["duplicates"]
                    )
                    if balance != summary["exported"]:
                        failures.append(
                            "elastic: handoff accounting broke "
                            f"({summary['from']}->{summary['to']}: "
                            f"imported {summary['imported']} + duplicates "
                            f"{summary['duplicates']} != exported "
                            f"{summary['exported']})"
                        )
                    elastic_moved += summary["keys_moved"]
                if elastic.app.shards != 2:
                    failures.append(
                        "elastic: fleet ended at "
                        f"{elastic.app.shards} shard(s), expected 2"
                    )
                if "\n".join(final_lines) != elastic_direct.to_jsonl():
                    failures.append(
                        "elastic: post-reshard batch differs from direct run"
                    )
            finally:
                elastic.shutdown(drain=True)
        if not any(failure.startswith("elastic:") for failure in failures):
            elastic_summary = (
                f"elastic ok (2->3->2 shards under churn, {elastic_moved} "
                "key(s) moved, survived mid-flux kill, byte-identical)"
            )
        else:
            elastic_summary = "elastic FAILED"

    # ------------------------------------------------------------------
    # Phase 8: durable-state lifecycle (compaction killed mid-rewrite).
    # ------------------------------------------------------------------
    durability_summary = "durability skipped (no fork on this platform)"
    if hasattr(os, "fork"):
        dur_requests = [
            intra_request(24 + step, 16, 24, 4096) for step in range(6)
        ]
        dur_direct = BatchEngine(EngineConfig(jobs=2)).run_batch(
            dur_requests
        )
        kill_steps = ("mid_write", "pre_rename")
        with tempfile.TemporaryDirectory() as tmpdir:
            dur_path = f"{tmpdir}/durability.journal"
            journal = BatchJournal(dur_path, resume=True)
            BatchEngine(EngineConfig(jobs=2)).run_batch(
                dur_requests, journal=journal
            )
            journal.close()
            for kill_step in kill_steps:
                pid = os.fork()
                if pid == 0:
                    # Child: arm the kill and compact.  The SIGKILL
                    # fires inside compact(); os._exit is unreachable
                    # unless the arming failed.
                    try:
                        child = BatchJournal(
                            dur_path,
                            resume=True,
                            fsync=False,
                            log=lambda message: None,
                        )
                        child.inject_compact_kill(kill_step)
                        child.compact()
                    finally:
                        os._exit(3)
                _, status = os.waitpid(pid, 0)
                if not (
                    os.WIFSIGNALED(status)
                    and os.WTERMSIG(status) == signal.SIGKILL
                ):
                    failures.append(
                        f"durability: compaction child survived the armed "
                        f"{kill_step} SIGKILL (status {status})"
                    )
                    continue
                survivor = BatchJournal(dur_path, resume=True)
                quarantined = survivor.corrupt_quarantined
                dropped = survivor.recovered_drops
                resumed = BatchEngine(EngineConfig(jobs=2)).run_batch(
                    dur_requests, journal=survivor
                )
                survivor.close()
                if quarantined or dropped:
                    failures.append(
                        f"durability: journal not clean after {kill_step} "
                        f"kill (quarantined={quarantined}, torn={dropped})"
                    )
                if resumed.replayed != len(dur_requests):
                    failures.append(
                        f"durability: {kill_step} kill lost completions "
                        f"(replayed {resumed.replayed}/{len(dur_requests)})"
                    )
                if resumed.to_jsonl() != dur_direct.to_jsonl():
                    failures.append(
                        f"durability: resumed output differs from direct "
                        f"run after {kill_step} kill"
                    )
        if not any(
            failure.startswith("durability:") for failure in failures
        ):
            durability_summary = (
                "durability ok (compaction SIGKILLed at "
                f"{'/'.join(kill_steps)}, journal stayed valid, "
                "byte-identical resume)"
            )
        else:
            durability_summary = "durability FAILED"

    if failures:
        for failure in failures:
            print(f"selfcheck FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        "selfcheck ok: "
        f"{report.requests} requests, {report.errors} expected error, "
        f"resilience={report.resilience}; kill-resume ok "
        f"({replayed} replayed from the journal, byte-identical output); "
        "certification ok (corrupted claim caught, counterexample healed "
        f"{green_only.memory_access}->{certified_ma}); "
        f"serving ok (protocol {protocol}, byte-identical over HTTP, "
        "lossless drain); "
        f"sharding ok (shard killed mid-batch, {respawns} respawn, "
        "byte-identical completion); "
        f"{chaos_summary}; "
        f"{elastic_summary}; "
        f"{durability_summary}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "fuse":
        return _cmd_fuse(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "certify":
        return _cmd_certify(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "call":
        return _cmd_call(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "selfcheck":
        return _cmd_selfcheck(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "explain":
        from .core import explain_fusion, explain_intra

        op = matmul("mm", args.m, args.k, args.l)
        print(explain_intra(op, args.buffer_kb * 1024))
        if args.consumer_n is not None:
            consumer = matmul(
                "mm2", args.m, args.l, args.consumer_n, a=op.output
            )
            print()
            print(explain_fusion([op, consumer], args.buffer_kb * 1024))
        return 0
    if args.command == "tables":
        print(table1())
        print()
        print(table2())
        print()
        print(table3())
        return 0
    if args.command == "fig9":
        points = run_fig9(include_genetic=not args.fast, certify=args.certify)
        print(render_fig9(points))
        if args.certify:
            print(f"certified: {len(points)}/{len(points)} points")
        return 0 if all(p.principle_at_most_search for p in points) else 1
    if args.command == "fig10":
        print(render_fig10(run_fig10()))
        return 0
    if args.command == "fig11":
        print(render_fig11(run_fig11()))
        return 0
    if args.command == "fig12":
        print(render_fig12(run_fig12()))
        return 0
    if args.command == "report":
        from .experiments.report import ReportOptions, generate_report

        report = generate_report(
            ReportOptions(include_genetic=not args.fast)
        )
        if args.output == "-":
            print(report)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
