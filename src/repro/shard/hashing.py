"""Rendezvous (highest-random-weight) hashing for shard routing.

Every analysis request already has a canonical content-addressed SHA-256
key (:func:`repro.service.requests.request_key`); the router must map
that key onto one of N shard workers such that

* the mapping is **deterministic** -- the same request always lands on
  the same shard, so each shard's private LRU cache and write-ahead
  journal keep earning across calls and across respawns;
* **resizing moves minimal keys** -- growing N shards to N+1 reassigns
  only ~1/(N+1) of the keyspace, instead of the ~100% reshuffle a naive
  ``hash(key) % N`` causes.

Rendezvous/HRW hashing gives both with no ring state to maintain: each
(key, shard) pair gets a score from a cryptographic hash, and the key
lives on the highest-scoring shard.  Removing a shard only re-homes the
keys whose top choice died (they fall to their second choice); adding a
shard only claims the keys it now wins.  Scores are SHA-256 based, so
placement is stable across processes, Python versions, and
``PYTHONHASHSEED`` (``hash()`` is deliberately avoided).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Separator between shard label and key inside the scored digest input;
#: NUL cannot appear in either, so concatenation is unambiguous.
_SEP = b"\x00"


def shard_label(shard_index: int) -> str:
    """The stable identity string scored for a shard slot.

    Labels are derived from the slot *index*, not the worker process:
    a respawned worker inherits its predecessor's label, journal, and
    keyspace slice.
    """

    return f"shard-{shard_index}"


def rendezvous_score(key: str, label: str) -> int:
    """The HRW weight of ``key`` on the shard named ``label``.

    The first 8 bytes of ``SHA-256(label || NUL || key)`` as a big-endian
    integer: uniform, deterministic, and independent per (key, shard)
    pair, which is what makes the argmax stable under resize.
    """

    digest = hashlib.sha256(
        label.encode("utf-8") + _SEP + key.encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_shard(key: str, shard_count: int) -> int:
    """The shard index that owns ``key`` among ``shard_count`` shards."""
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if shard_count == 1:
        return 0
    best_index = 0
    best_score = -1
    for index in range(shard_count):
        score = rendezvous_score(key, shard_label(index))
        # Ties broken toward the lower index; with a 64-bit hash they are
        # astronomically rare, but determinism must not hinge on that.
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


def rendezvous_ranking(key: str, shard_count: int) -> List[int]:
    """All shard indexes ordered from best to worst for ``key``.

    ``ranking[0]`` is :func:`rendezvous_shard`; ``ranking[1]`` is where
    the key re-homes if its owner is removed -- useful for tests proving
    minimal movement and for future replication of hot keys.
    """

    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    scored = [
        (rendezvous_score(key, shard_label(index)), -index)
        for index in range(shard_count)
    ]
    return [-neg for _, neg in sorted(scored, reverse=True)]


def rendezvous_fallback(
    key: str, shard_count: int, excluded: Iterable[int] = ()
) -> Optional[int]:
    """The best-ranked live shard for ``key``, skipping ``excluded``.

    This is the next-highest-score fallback the router uses to reroute
    a quarantined (``failed``) slot's keys: with nothing excluded it is
    exactly :func:`rendezvous_shard`; excluding the owner yields
    ``ranking[1]``, and so on down the ranking.  Returns ``None`` when
    every shard is excluded -- the caller decides what "no survivors"
    means (the router answers 503).
    """

    blocked = set(excluded)
    for index in rendezvous_ranking(key, shard_count):
        if index not in blocked:
            return index
    return None


def assignment_counts(keys: Sequence[str], shard_count: int) -> List[int]:
    """How many of ``keys`` each shard owns (balance diagnostics)."""
    counts = [0] * shard_count
    for key in keys:
        counts[rendezvous_shard(key, shard_count)] += 1
    return counts


def replica_slots(key: str, shard_count: int, replicas: int) -> List[int]:
    """The top-R rendezvous slots for ``key`` (read-any replication set).

    ``replica_slots(key, n, 1)`` is ``[rendezvous_shard(key, n)]``; the
    remaining entries are exactly the slots the key would re-home to if
    its better choices died, so replicating a hot key here means a
    respawning owner's traffic lands on workers that would inherit the
    key anyway.  ``replicas`` is clamped to ``shard_count``.
    """

    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    return rendezvous_ranking(key, shard_count)[: min(replicas, shard_count)]


def ownership_delta(
    keys: Iterable[str], old_count: int, new_count: int
) -> Dict[str, Tuple[int, int]]:
    """Which of ``keys`` change owners when resizing old_count→new_count.

    Returns ``{key: (old_owner, new_owner)}`` for exactly the keys whose
    rendezvous argmax differs between the two topologies.  This is the
    *minimal-movement delta*: the handoff performed by a live reshard
    must move these keys and no others, and ``keys_moved`` accounting is
    tested against this predicate exactly.
    """

    if old_count < 1 or new_count < 1:
        raise ValueError("shard counts must be at least 1")
    delta: Dict[str, Tuple[int, int]] = {}
    for key in keys:
        old_owner = rendezvous_shard(key, old_count)
        new_owner = rendezvous_shard(key, new_count)
        if old_owner != new_owner:
            delta[key] = (old_owner, new_owner)
    return delta
