"""Sharded multi-process serving tier: scale-out + kill-one-shard resilience.

Puts N independent worker processes behind the existing HTTP front end.
Each worker owns a rendezvous-hashed slice of the request keyspace with
its *own* LRU result cache and write-ahead journal, so a request always
lands where its answer is already cached or journaled; the router
(:mod:`~repro.shard.router`) reassembles per-shard result streams into
output **byte-identical** to single-process ``repro batch`` for any
shard count.  The supervisor (:mod:`~repro.shard.supervisor`) health
checks workers and respawns a dead one into its slot -- the successor
re-locks and replays the victim's journal, so a SIGKILL mid-batch costs
latency, never data.  ``/stats`` and ``/metrics`` aggregate across the
fleet (counters summed, latency reservoirs merged deterministically);
``/readyz`` reports ``degraded`` (and enumerates the afflicted slots)
while a slot respawns or sits quarantined.  A crash-looping slot is
*contained* by :class:`~repro.shard.supervisor.RespawnPolicy` -- after
too many rapid deaths it is marked ``failed`` and its keys reroute to
the next-highest rendezvous-scored survivors until recovery.

Quick start::

    from repro.server import ServerConfig
    from repro.shard import ShardedServer

    server = ShardedServer(ServerConfig(port=0), shards=3).start()
    ...
    server.shutdown(drain=True)
"""

from .hashing import (
    assignment_counts,
    ownership_delta,
    rendezvous_fallback,
    rendezvous_ranking,
    rendezvous_score,
    rendezvous_shard,
    replica_slots,
    shard_label,
)
from .ipc import (
    SHARD_IPC_VERSION,
    ShardConnectionError,
    ShardIPCError,
    ShardProtocolError,
    ShardTimeoutError,
)
from .router import (
    RESHARD_RETRY_AFTER,
    SHARD_RETRY_AFTER,
    HandoffPendingError,
    HotKeyTracker,
    ReshardInProgressError,
    ShardedApp,
    ShardedServer,
    routing_key,
    shard_cache_file,
    shard_server_config,
)
from .supervisor import (
    RespawnPolicy,
    ShardBootError,
    ShardHandle,
    ShardOpError,
    ShardSupervisor,
    wait_for_pid_change,
)

__all__ = [
    "HandoffPendingError",
    "HotKeyTracker",
    "RESHARD_RETRY_AFTER",
    "RespawnPolicy",
    "ReshardInProgressError",
    "SHARD_IPC_VERSION",
    "SHARD_RETRY_AFTER",
    "ShardBootError",
    "ShardConnectionError",
    "ShardHandle",
    "ShardIPCError",
    "ShardOpError",
    "ShardProtocolError",
    "ShardSupervisor",
    "ShardTimeoutError",
    "ShardedApp",
    "ShardedServer",
    "assignment_counts",
    "ownership_delta",
    "rendezvous_fallback",
    "rendezvous_ranking",
    "rendezvous_score",
    "rendezvous_shard",
    "replica_slots",
    "routing_key",
    "shard_cache_file",
    "shard_label",
    "shard_server_config",
    "wait_for_pid_change",
]
