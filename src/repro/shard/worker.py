"""The shard worker process: one private :class:`ServerApp` per shard.

A worker owns exactly one slice of the keyspace: its own LRU result
cache, its own write-ahead journal (``<base>.shard-<i>``, advisory
flock'd), and its own engine pool -- nothing is shared with sibling
shards, so a SIGKILL to one worker cannot corrupt another's state.  The
router drives the worker over a duplex pipe with the framed-JSON ops of
:mod:`repro.shard.ipc`:

``analyze``   run a payload sub-batch through the app, return the
              deterministic result records plus report counters
``stats``     the app's full ``/stats`` rollup + the latency reservoir's
              transferable state (for cross-shard merging)
``ping``      liveness probe for the supervisor's health monitor
``handoff_export``  flush the journal and return every durable
              completion that belongs to a *different* slot under a
              ``to_shards``-sized topology, grouped by its new owner
              (phase one of a live reshard)
``handoff_import``  replay handed-off completion records into this
              worker's journal before it starts seeing their traffic
              (phase two of a live reshard; idempotent on duplicates)
``compact``   rewrite this shard's journal down to its deduped durable
              completions (crash-safe: SIGKILL at any point leaves a
              fully valid journal for the successor to replay)
``drain``     flush the journal, persist the per-shard cache, ack, exit

The loop is deliberately **serial**: one request at a time, in arrival
order.  Parallelism comes from the engine pool *inside* an analyze call
(``jobs`` wide) and from running N workers side by side -- never from
interleaving ops on one pipe, which is what keeps a drain trivially safe
and the reply stream impossible to desynchronize.

Death semantics: handler errors are caught and returned as structured
``error_reply`` frames (the worker never dies on a bad request); an
``EOFError`` on the pipe means the router is gone, so the worker flushes
and exits.  Only an actual kill takes the worker down -- and the kernel
then releases its journal flock, which is exactly what lets the respawned
successor re-lock and replay it.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Any, Dict, Optional

from ..server.app import ServerApp, ServerConfig
from ..server.protocol import protocol_info
from ..service.faults import FAULTS_GUARD_ENV
from .hashing import rendezvous_shard, shard_label
from .ipc import (
    SHARD_IPC_VERSION,
    ShardConnectionError,
    error_reply,
    recv_message,
    send_message,
)


def _log(shard_index: int, message: str) -> None:
    print(
        f"repro shard[{shard_label(shard_index)}]: {message}",
        file=sys.stderr,
        flush=True,
    )


def _analyze_reply(app: ServerApp, message: Dict[str, Any]) -> Dict[str, Any]:
    payloads = message.get("payloads")
    if not isinstance(payloads, list) or not payloads:
        raise ValueError("analyze op requires a non-empty payload list")
    deadline = message.get("deadline")
    if deadline is not None:
        deadline = float(deadline)
    report = app.run_payloads(payloads, deadline)
    return {
        "ok": True,
        "records": report.result_records(),
        "requests": report.requests,
        "errors": report.errors,
        "cached": report.cached_answers,
        "computed": report.computed,
        "replayed": report.replayed,
        "certified": report.certified,
        "discrepancies": len(report.discrepancies()),
    }


def _chaos_reply(app: ServerApp, message: Dict[str, Any]) -> Dict[str, Any]:
    """Arm an in-worker fault for the chaos harness (guarded, explicit).

    Refuses outright unless ``REPRO_ENABLE_FAULT_INJECTION=1`` was in the
    worker's environment at boot -- production fleets cannot be chaos'd
    by a stray request.  Supports arming journal write faults
    (``{"journal": {"mode": "enospc"|"eio", "after": N}}``) and a
    compaction kill switch (``{"compact_kill": {"step": <step>}}``) that
    SIGKILLs this worker at the named compaction step of the *next*
    ``compact`` op -- the crash-safety invariant says the successor
    still replays a fully valid journal.
    """

    if os.environ.get(FAULTS_GUARD_ENV) != "1":
        raise PermissionError(
            f"chaos op refused: set {FAULTS_GUARD_ENV}=1 to enable "
            "fault injection"
        )
    armed: Dict[str, Any] = {}
    journal = message.get("journal")
    if journal is not None:
        if not isinstance(journal, dict):
            raise ValueError("chaos journal spec must be a mapping")
        mode = journal.get("mode")
        after = int(journal.get("after", 0))
        if app.arm_journal_fault(mode, after=after):
            armed["journal"] = {"mode": mode, "after": after}
        else:
            raise ValueError(
                "no journal configured on this shard; cannot arm a "
                "journal fault"
            )
    compact_kill = message.get("compact_kill")
    if compact_kill is not None:
        if not isinstance(compact_kill, dict):
            raise ValueError("chaos compact_kill spec must be a mapping")
        step = compact_kill.get("step")
        if app.arm_compact_kill(step):
            armed["compact_kill"] = {"step": step}
        else:
            raise ValueError(
                "no journal configured on this shard; cannot arm a "
                "compaction kill"
            )
    return {"ok": True, "armed": armed, "pid": os.getpid()}


def _compact_reply(app: ServerApp, message: Dict[str, Any]) -> Dict[str, Any]:
    """Rewrite the shard journal down to its deduped durable set.

    Returns the compaction summary (or ``compacted: false`` with a
    reason when the shard has no journal or its journal is degraded);
    if a ``compact_kill`` chaos step is armed the worker dies *inside*
    this call and the router sees a :class:`ShardConnectionError`
    instead of a reply -- exactly the respawn-and-retry path.
    """

    journal = app._journal
    if journal is None:
        return {"ok": True, "compacted": False, "reason": "no journal"}
    summary = app.compact_journal()
    if summary is None:
        return {
            "ok": True,
            "compacted": False,
            "reason": "journal degraded",
            "pid": os.getpid(),
        }
    return {
        "ok": True,
        "compacted": True,
        "compact": summary,
        "pid": os.getpid(),
    }


def _handoff_export_reply(
    app: ServerApp, shard_index: int, message: Dict[str, Any]
) -> Dict[str, Any]:
    """Phase one of a reshard: surrender records this slot will not own.

    Under the target ``to_shards`` topology, every journaled completion
    whose rendezvous argmax is no longer this slot is exported, grouped
    by its new owner.  A *retiring* slot (``shard_index >= to_shards``)
    owns nothing under the new topology, so it naturally exports its
    entire journal.  The journal file is flushed but never truncated --
    the router deletes it only after the successors have fsync'd the
    imports.
    """

    to_shards = int(message.get("to_shards") or 0)
    if to_shards < 1:
        raise ValueError("handoff_export requires to_shards >= 1")
    groups: Dict[str, list] = {}
    exported = 0
    kept = 0
    journal = app._journal
    if journal is not None:
        entries = journal.export_handoff(
            lambda key: rendezvous_shard(key, to_shards) != shard_index
        )
        kept = len(journal) - len(entries)
        for entry in entries:
            owner = rendezvous_shard(entry["key"], to_shards)
            groups.setdefault(str(owner), []).append(entry)
            exported += 1
    return {
        "ok": True,
        "exported": exported,
        "kept": kept,
        "groups": groups,
        "pid": os.getpid(),
    }


def _handoff_import_reply(
    app: ServerApp, message: Dict[str, Any]
) -> Dict[str, Any]:
    """Phase two of a reshard: replay handed-off records before traffic.

    The worker loop is serial, so by the time the router's next analyze
    op for a moved key reaches this worker the import below has fully
    landed -- the successor answers from its journal replay map exactly
    as if it had computed the record itself.
    """

    entries = message.get("entries")
    if not isinstance(entries, list):
        raise ValueError("handoff_import requires an entry list")
    journal = app._journal
    if journal is None:
        if entries:
            raise ValueError(
                "handoff_import with no journal configured; the exporter "
                "and importer must share the tier's journal setting"
            )
        return {"ok": True, "imported": 0, "duplicates": 0, "degraded": False}
    imported, duplicates = journal.ingest_handoff(entries)
    # An import appends every handed-off record verbatim, so a shard that
    # just absorbed a retiring sibling's keyspace is the likeliest to be
    # carrying dead weight -- let the thresholds decide right away.
    compact = journal.maybe_compact()
    return {
        "ok": True,
        "imported": imported,
        "duplicates": duplicates,
        "degraded": journal.degraded,
        "compacted": compact is not None,
        "pid": os.getpid(),
    }


def _stats_reply(app: ServerApp, shard_index: int) -> Dict[str, Any]:
    return {
        "ok": True,
        "shard": shard_index,
        "label": shard_label(shard_index),
        "pid": os.getpid(),
        "stats": app.stats_dict(),
        "latency_state": app.latency.state_dict(),
    }


def shard_worker_main(
    conn: Any,
    router_conn: Any,
    shard_index: int,
    config: ServerConfig,
    cache_file: Optional[str] = None,
) -> None:
    """Entry point of a shard worker process.

    Parameters
    ----------
    conn:
        The worker's end of the duplex pipe.
    router_conn:
        The router's end, passed in only so the *child* can close its
        inherited copy: under the ``fork`` start method every child
        inherits both pipe ends, and a worker still holding the router's
        write end would never see EOF when the router dies.
    shard_index:
        This worker's slot in the rendezvous ring (stable across
        respawns; the journal and cache paths derive from it).
    config:
        The per-shard :class:`ServerConfig` -- ``journal_path`` already
        points at this shard's private journal.
    cache_file:
        Optional per-shard result-cache persistence path, loaded at boot
        (best effort) and saved on drain.
    """

    if router_conn is not None:
        try:
            router_conn.close()
        except OSError:
            pass
    # The router coordinates shutdown via the `drain` op; a Ctrl-C or
    # process-group TERM aimed at the front end must not snipe workers
    # mid-drain.  SIGKILL (the failure being engineered for) is, by
    # design, unblockable.
    with_signals = hasattr(signal, "SIGTERM")
    if with_signals:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)

    try:
        app = ServerApp(config)
    except BaseException as exc:  # boot failure must be loud, not a hang
        send_message(
            conn,
            {
                "op": "hello",
                "ok": False,
                "shard": shard_index,
                "pid": os.getpid(),
                "ipc_version": SHARD_IPC_VERSION,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            },
        )
        conn.close()
        return

    if cache_file and os.path.exists(cache_file):
        try:
            loaded = app.load_cache(cache_file)
            if loaded:
                _log(shard_index, f"warmed {loaded} cache entries")
        except Exception as exc:
            _log(shard_index, f"cache warm failed (continuing cold): {exc}")

    send_message(
        conn,
        {
            "op": "hello",
            "ok": True,
            "shard": shard_index,
            "label": shard_label(shard_index),
            "pid": os.getpid(),
            "ipc_version": SHARD_IPC_VERSION,
            "protocol": protocol_info(),
            "journal_replayed": (
                len(app._journal) if app._journal is not None else 0
            ),
        },
    )

    def persist() -> None:
        if cache_file:
            try:
                app.save_cache(cache_file)
            except Exception as exc:
                _log(shard_index, f"cache save failed: {exc}")
        app.close()  # flushes + closes the journal (idempotent)

    try:
        while True:
            try:
                message = recv_message(conn)
            except ShardConnectionError:
                # Router gone (crash or kill): nothing left to serve.
                _log(shard_index, "router connection lost; shutting down")
                persist()
                return
            op = message.get("op")
            seq = message.get("seq")
            try:
                if op == "analyze":
                    reply = _analyze_reply(app, message)
                elif op == "stats":
                    reply = _stats_reply(app, shard_index)
                elif op == "ping":
                    reply = {"ok": True, "pong": True, "pid": os.getpid()}
                elif op == "chaos":
                    reply = _chaos_reply(app, message)
                elif op == "handoff_export":
                    reply = _handoff_export_reply(app, shard_index, message)
                elif op == "handoff_import":
                    reply = _handoff_import_reply(app, message)
                elif op == "compact":
                    reply = _compact_reply(app, message)
                elif op == "drain":
                    persist()
                    send_message(conn, {"seq": seq, "ok": True, "drained": True})
                    return
                else:
                    raise ValueError(f"unknown shard op {op!r}")
            except BaseException as exc:
                # A failed request must never kill the worker: the router
                # gets a structured frame and decides (bad payloads are a
                # client problem, not a shard-death).
                reply = error_reply(seq, exc)
            else:
                reply["seq"] = seq
            send_message(conn, reply)
    finally:
        try:
            conn.close()
        except OSError:
            pass
