"""Shard process supervision: boot, health, respawn-on-death.

:class:`ShardSupervisor` owns N :class:`ShardHandle`\\ s, one per
rendezvous slot.  A handle wraps the worker process plus its pipe and
serializes all IPC on a per-shard lock (the worker loop is serial, so
one outstanding op per shard is the invariant, not a limitation).

Failure handling is built around one idea: **the slot outlives the
process**.  When a worker dies -- detected either by a dispatch thread
hitting :class:`~repro.shard.ipc.ShardConnectionError` mid-call or by the
health monitor's liveness/ping sweep -- the handle respawns a fresh
process into the same slot.  The successor re-locks the dead worker's
journal (the kernel released the flock at death, even for SIGKILL),
replays its completions, and resumes serving the same keyspace slice.
A *generation counter* makes respawn race-free: every caller states
which generation it observed dying, and only the first such claim
respawns -- latecomers see the bumped generation and simply retry their
call against the successor.

The health monitor is deliberately polite: it only pings a shard whose
lock it can take without blocking.  A busy shard (lock held by a
dispatch thread) is *working*, not dead -- and if it died mid-call, the
dispatch thread holding the lock gets the broken pipe first and handles
it.  This keeps slow analyze calls from being misdiagnosed as hangs.

Respawning is **contained**, not unconditional
(:class:`RespawnPolicy`): a first death respawns immediately, rapid
repeat deaths back off exponentially (the spawn is deferred to the
monitor sweep), and once a slot dies more than ``max_rapid_deaths``
times inside ``death_window`` seconds it is quarantined as ``failed``
-- the router reroutes its keys to survivors via the rendezvous
ranking while the monitor periodically attempts recovery and re-admits
the slot once a successor boots cleanly.  A *stalled* worker (alive
but silent past the supervisor's ``op_timeout``, e.g. SIGSTOPped) is
escalated down the same path: the dispatch thread's timeout kills and
respawns it instead of hanging forever.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..server.app import ServerConfig
from .hashing import shard_label
from .ipc import (
    SHARD_IPC_VERSION,
    ShardConnectionError,
    ShardIPCError,
    ShardProtocolError,
    ShardTimeoutError,
    recv_message,
    send_message,
)
from .worker import shard_worker_main

#: Shard lifecycle states surfaced by /readyz and /stats.
SHARD_STATES = ("starting", "ready", "respawning", "failed", "stopped")


class ShardBootError(RuntimeError):
    """A shard worker failed to boot (bad config, locked journal...)."""


@dataclass(frozen=True)
class RespawnPolicy:
    """Crash-loop containment knobs for one shard slot.

    ``backoff_base`` doubles per rapid death up to ``backoff_max``
    between respawn attempts; more than ``max_rapid_deaths`` deaths
    within ``death_window`` seconds quarantines the slot as ``failed``
    (keys reroute to survivors) until a recovery attempt, retried every
    ``failed_retry_interval`` seconds, boots a successor cleanly.
    """

    backoff_base: float = 0.5
    backoff_max: float = 30.0
    max_rapid_deaths: int = 5
    death_window: float = 30.0
    failed_retry_interval: float = 10.0

    def __post_init__(self) -> None:
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.max_rapid_deaths < 1:
            raise ValueError("max_rapid_deaths must be at least 1")
        if self.death_window <= 0:
            raise ValueError("death_window must be positive")
        if self.failed_retry_interval <= 0:
            raise ValueError("failed_retry_interval must be positive")


def _default_log(message: str) -> None:
    import sys

    print(f"repro shard: {message}", file=sys.stderr, flush=True)


class ShardHandle:
    """One rendezvous slot: the live worker process + its pipe.

    All IPC goes through :meth:`call`, which holds the per-shard lock for
    the full request/reply round trip -- the pipe carries exactly one
    op at a time, so ``seq`` echoes are a desync alarm, not a routing
    mechanism.
    """

    def __init__(
        self,
        index: int,
        config: ServerConfig,
        cache_file: Optional[str],
        context: multiprocessing.context.BaseContext,
        boot_timeout: float = 60.0,
        log: Callable[[str], None] = _default_log,
        policy: Optional[RespawnPolicy] = None,
    ):
        self.index = index
        self.label = shard_label(index)
        self.config = config
        self.cache_file = cache_file
        self.boot_timeout = boot_timeout
        self.policy = policy or RespawnPolicy()
        #: Bumped on every successful (re)spawn; dispatchers quote the
        #: generation they saw die so only one of them respawns it.
        self.generation = 0
        self.respawns = 0
        self.state = "starting"
        self.pid: Optional[int] = None
        self.started_replay = 0
        #: Monotonic timestamps of deaths inside the containment window.
        self.deaths: List[float] = []
        #: Times the crash-loop containment quarantined this slot.
        self.contained = 0
        #: Ops escalated for stalling past the supervisor's op timeout.
        self.timeouts = 0
        self.next_respawn_at = 0.0
        self.failed_retry_at = 0.0
        #: Chaos-harness hook: extra latency injected before each op's
        #: send, simulating a slow/congested pipe.  Always 0 in prod.
        self.ipc_delay = 0.0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Any = None
        self._context = context
        self._log = log
        self._lock = threading.RLock()
        self._seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker and wait for its hello frame."""
        with self._lock:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=shard_worker_main,
                args=(
                    child_conn,
                    parent_conn,
                    self.index,
                    self.config,
                    self.cache_file,
                ),
                name=f"repro-{self.label}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.process = process
            self.conn = parent_conn
            try:
                hello = recv_message(parent_conn, timeout=self.boot_timeout)
            except ShardIPCError as exc:
                self._reap()
                self.state = "failed"
                raise ShardBootError(
                    f"{self.label} sent no hello within "
                    f"{self.boot_timeout:.0f}s: {exc}"
                ) from exc
            if not hello.get("ok"):
                error = hello.get("error") or {}
                self._reap()
                self.state = "failed"
                raise ShardBootError(
                    f"{self.label} failed to boot: "
                    f"{error.get('type', 'Error')}: "
                    f"{error.get('message', 'unknown error')}"
                )
            version = hello.get("ipc_version")
            if version != SHARD_IPC_VERSION:
                self._reap()
                self.state = "failed"
                raise ShardBootError(
                    f"{self.label} speaks IPC v{version!r}; this router "
                    f"requires v{SHARD_IPC_VERSION} (mixed builds?)"
                )
            self.pid = hello.get("pid")
            self.started_replay = int(hello.get("journal_replayed") or 0)
            self.state = "ready"
            self._log(
                f"{self.label} ready (pid {self.pid}, "
                f"generation {self.generation}, "
                f"journal replay {self.started_replay})"
            )

    def respawn(self, seen_generation: int) -> bool:
        """Bury a dead (or stalled) worker; maybe boot a successor.

        ``seen_generation`` is the generation the caller observed
        failing.  If another thread already claimed that death
        (generation moved on, or the corpse is already buried), this is
        a no-op and the caller just retries against the slot's current
        state.

        Containment (:class:`RespawnPolicy`) decides what the claim
        does: a first death respawns inline; rapid repeats defer the
        spawn behind an exponential backoff (the health monitor boots
        it when due); too many rapid deaths quarantine the slot as
        ``failed``.  Returns ``True`` only when *this* call booted a
        live successor.
        """

        with self._lock:
            if self.generation != seen_generation:
                return False
            if self.state == "failed":
                return False
            if self.process is None and self.conn is None:
                return False  # death already claimed; spawn is deferred
            self.respawns += 1
            self._reap()
            self.generation += 1
            now = time.monotonic()
            self.deaths = [
                t for t in self.deaths
                if now - t <= self.policy.death_window
            ]
            self.deaths.append(now)
            if len(self.deaths) > self.policy.max_rapid_deaths:
                self._contain(now, seen_generation)
                return False
            delay = self._backoff_delay(len(self.deaths))
            self.state = "respawning"
            if delay > 0.0:
                self.next_respawn_at = now + delay
                self._log(
                    f"{self.label} died (generation {seen_generation}, "
                    f"death {len(self.deaths)}/"
                    f"{self.policy.max_rapid_deaths} in window); "
                    f"respawn backed off {delay:.2f}s"
                )
                return False
            self._log(
                f"{self.label} died (generation {seen_generation}); "
                "respawning"
            )
            try:
                self.start()
            except ShardBootError as exc:
                self.state = "respawning"
                self.next_respawn_at = now + max(
                    self.policy.backoff_base, 0.1
                )
                self._log(
                    f"{self.label} successor failed to boot ({exc}); "
                    "deferred to the health monitor"
                )
                return False
            return True

    def _contain(self, now: float, seen_generation: int) -> None:
        """Quarantine a crash-looping slot (lock held)."""
        self.contained += 1
        self.state = "failed"
        self.failed_retry_at = now + self.policy.failed_retry_interval
        self._log(
            f"{self.label} died {len(self.deaths)} times within "
            f"{self.policy.death_window:.0f}s (generation "
            f"{seen_generation}); crash loop CONTAINED -- slot failed, "
            "keys reroute to survivors, recovery attempt in "
            f"{self.policy.failed_retry_interval:.1f}s"
        )

    def _backoff_delay(self, recent_deaths: int) -> float:
        """Exponential backoff before the Nth rapid respawn (0 = now)."""
        if recent_deaths <= 1:
            return 0.0
        return min(
            self.policy.backoff_max,
            self.policy.backoff_base * (2.0 ** (recent_deaths - 2)),
        )

    def try_deferred_start(self) -> bool:
        """Boot a backoff-deferred successor when due (monitor hook)."""
        with self._lock:
            if self.state != "respawning" or self.process is not None:
                return False
            now = time.monotonic()
            if now < self.next_respawn_at:
                return False
            try:
                self.start()
            except ShardBootError as exc:
                now = time.monotonic()
                self.deaths = [
                    t for t in self.deaths
                    if now - t <= self.policy.death_window
                ]
                self.deaths.append(now)
                if len(self.deaths) > self.policy.max_rapid_deaths:
                    self._contain(now, self.generation)
                else:
                    self.state = "respawning"
                    self.next_respawn_at = now + self._backoff_delay(
                        max(2, len(self.deaths))
                    )
                    self._log(
                        f"{self.label} deferred respawn failed ({exc}); "
                        "backing off again"
                    )
                return False
            return True

    def attempt_recovery(self) -> bool:
        """Re-admit a quarantined (``failed``) slot once its timer lapses.

        A clean successor boot clears the death history and returns the
        slot to ``ready`` -- the router's rendezvous ranking then sends
        its keys home again.  A failed boot re-arms the retry timer.
        """

        with self._lock:
            if self.state != "failed":
                return False
            if time.monotonic() < self.failed_retry_at:
                return False
            self._log(f"{self.label} attempting recovery of failed slot")
            try:
                self.start()
            except ShardBootError as exc:
                self.state = "failed"
                self.failed_retry_at = (
                    time.monotonic() + self.policy.failed_retry_interval
                )
                self._log(
                    f"{self.label} recovery failed ({exc}); next attempt "
                    f"in {self.policy.failed_retry_interval:.1f}s"
                )
                return False
            self.deaths = []
            self.next_respawn_at = 0.0
            self._log(f"{self.label} recovered; slot re-admitted")
            return True

    def _reap(self) -> None:
        """Close the pipe and bury the old process (lock held)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        process = self.process
        self.process = None
        self.pid = None
        if process is None:
            return
        process.join(timeout=0.5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive() and hasattr(process, "kill"):
            process.kill()
            process.join(timeout=2.0)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain (flush journal, save cache) and stop the worker."""
        with self._lock:
            if self.conn is not None and drain:
                try:
                    self.call("drain", timeout=timeout)
                except ShardIPCError:
                    pass  # already dead; nothing left to flush
            self._reap()
            self.state = "stopped"

    # ------------------------------------------------------------------
    # IPC
    # ------------------------------------------------------------------
    def call(
        self, op: str, timeout: Optional[float] = None, **fields: Any
    ) -> Dict[str, Any]:
        """One request/reply round trip; raises the IPC taxonomy."""
        with self._lock:
            if self.conn is None:
                raise ShardConnectionError(f"{self.label} is not running")
            if self.ipc_delay > 0.0:
                time.sleep(self.ipc_delay)  # chaos: simulated slow pipe
            self._seq += 1
            seq = self._seq
            send_message(self.conn, {"op": op, "seq": seq, **fields})
            reply = recv_message(self.conn, timeout=timeout)
            if reply.get("seq") != seq:
                # A desynchronized stream cannot be trusted for any
                # future reply either; treat it as a dead shard.
                raise ShardProtocolError(
                    f"{self.label} answered seq {reply.get('seq')!r} "
                    f"to request seq {seq}"
                )
            if not reply.get("ok"):
                error = reply.get("error") or {}
                raise ShardOpError(
                    op,
                    error.get("type", "Error"),
                    error.get("message", "unknown error"),
                )
            return reply

    def try_ping(self, timeout: float = 5.0) -> Optional[bool]:
        """Non-blocking liveness probe for the health monitor.

        Returns ``True`` (alive), ``False`` (dead/unresponsive), or
        ``None`` when the shard is busy serving -- busy is not dead, and
        the dispatch thread holding the lock will surface a real death
        itself.
        """

        if not self._lock.acquire(blocking=False):
            return None
        try:
            if self.conn is None or self.state != "ready":
                return None
            try:
                self.call("ping", timeout=timeout)
                return True
            except ShardIPCError:
                return False
        finally:
            self._lock.release()

    def snapshot(self) -> Dict[str, Any]:
        """State summary for /readyz, /stats, and the kill-shard tests."""
        return {
            "shard": self.index,
            "label": self.label,
            "state": self.state,
            "pid": self.pid,
            "generation": self.generation,
            "respawns": self.respawns,
            "rapid_deaths": len(self.deaths),
            "contained": self.contained,
            "timeouts": self.timeouts,
            "journal_replayed_at_boot": self.started_replay,
        }


class ShardOpError(ShardIPCError):
    """The worker answered with a structured failure frame.

    Unlike a connection error this is *not* a shard death: the worker is
    alive and made a deliberate statement about this op.  The router
    maps it to a 500 for the offending call rather than a respawn.
    """

    def __init__(self, op: str, error_type: str, message: str):
        super().__init__(f"shard op {op!r} failed: {error_type}: {message}")
        self.op = op
        self.error_type = error_type
        self.error_message = message


class ShardSupervisor:
    """N shard handles + the health-monitor thread."""

    def __init__(
        self,
        shard_count: int,
        config_for_shard: Callable[[int], ServerConfig],
        cache_file_for_shard: Callable[[int], Optional[str]],
        start_method: Optional[str] = None,
        health_interval: float = 0.5,
        boot_timeout: float = 60.0,
        dispatch_attempts: int = 3,
        op_timeout: Optional[float] = None,
        respawn_policy: Optional[RespawnPolicy] = None,
        log: Callable[[str], None] = _default_log,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if dispatch_attempts < 1:
            raise ValueError("dispatch_attempts must be at least 1")
        if op_timeout is not None and op_timeout <= 0:
            raise ValueError("op_timeout must be positive (or None)")
        self.shard_count = shard_count
        self.dispatch_attempts = dispatch_attempts
        self.health_interval = health_interval
        #: Default per-op IPC deadline; a shard that is alive but silent
        #: past this (SIGSTOPped, livelocked) is escalated -- killed and
        #: respawned -- instead of hanging the dispatch thread forever.
        self.op_timeout = op_timeout
        self._log = log
        # The factories and spawn context are kept for the handles'
        # entire lifetime, not just boot: live resharding mints new
        # handles through the exact same path the constructor used.
        self._config_for_shard = config_for_shard
        self._cache_file_for_shard = cache_file_for_shard
        self._policy = respawn_policy or RespawnPolicy()
        self._boot_timeout = boot_timeout
        self._context = multiprocessing.get_context(start_method)
        #: Serializes topology changes (grow/retire); dispatch and the
        #: monitor never take it -- they read ``self.handles`` once per
        #: operation, and the list reference is swapped atomically.
        self._topology_lock = threading.RLock()
        self.handles: List[ShardHandle] = [
            self._make_handle(index) for index in range(shard_count)
        ]
        self._monitor_stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def respawn_policy(self) -> RespawnPolicy:
        return self._policy

    def _make_handle(self, index: int) -> ShardHandle:
        return ShardHandle(
            index,
            self._config_for_shard(index),
            self._cache_file_for_shard(index),
            self._context,
            boot_timeout=self._boot_timeout,
            log=self._log,
            policy=self._policy,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        for handle in self.handles:
            handle.start()
        if self.health_interval > 0:
            self._monitor_thread = threading.Thread(
                target=self._monitor,
                name="repro-shard-monitor",
                daemon=True,
            )
            self._monitor_thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        for handle in list(self.handles):
            handle.stop(drain=drain, timeout=timeout)

    # ------------------------------------------------------------------
    # Elastic topology (live resharding)
    # ------------------------------------------------------------------
    def grow_to(self, new_count: int) -> List[ShardHandle]:
        """Boot slots ``shard_count..new_count-1``; all-or-nothing.

        New workers are fully booted (hello received, journal replayed)
        *before* they are published into ``self.handles``, so the health
        monitor and dispatchers never see a half-started slot.  If any
        new slot fails to boot, the ones already started are stopped and
        :class:`ShardBootError` propagates -- the fleet is left exactly
        as it was.  Returns the new handles.
        """

        with self._topology_lock:
            if new_count <= self.shard_count:
                raise ValueError(
                    f"grow_to({new_count}) with {self.shard_count} shards"
                )
            fresh: List[ShardHandle] = []
            try:
                for index in range(self.shard_count, new_count):
                    handle = self._make_handle(index)
                    handle.start()
                    fresh.append(handle)
            except ShardBootError:
                for handle in fresh:
                    handle.stop(drain=False)
                raise
            self.handles = self.handles + fresh
            self.shard_count = new_count
            return fresh

    def retire_to(
        self, new_count: int, drain: bool = True, timeout: float = 30.0
    ) -> List[ShardHandle]:
        """Remove slots ``new_count..shard_count-1`` and stop them.

        The surviving list is published *before* the retirees are
        stopped: from the moment ``self.handles`` shrinks, no dispatcher
        or monitor sweep can route to a retiring slot, and the stop then
        waits out (per-handle lock) any call already in flight.  Returns
        the retired handles so the caller can dispose of their journal
        and cache files once their records are safely handed off.
        """

        with self._topology_lock:
            if not 1 <= new_count < self.shard_count:
                raise ValueError(
                    f"retire_to({new_count}) with {self.shard_count} shards"
                )
            survivors = self.handles[:new_count]
            retired = self.handles[new_count:]
            self.handles = survivors
            self.shard_count = new_count
            for handle in retired:
                handle.stop(drain=drain, timeout=timeout)
            return retired

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Dispatch with the transient-retry taxonomy
    # ------------------------------------------------------------------
    def call_with_retry(
        self,
        shard_index: int,
        op: str,
        timeout: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Call a shard; on death, respawn its slot and retry.

        Shard death is *transient* by construction -- the successor
        replays the journal, so a resent sub-batch completes losslessly
        (journaled completions replay byte-identically, the rest simply
        recompute).  :class:`ShardOpError` (worker alive, op rejected)
        is permanent for this call and is never retried.
        """

        try:
            handle = self.handles[shard_index]
        except IndexError:
            raise ShardConnectionError(
                f"shard {shard_index} is not in the fleet "
                f"(count {self.shard_count})"
            ) from None
        if timeout is None:
            timeout = self.op_timeout
        last: Optional[ShardIPCError] = None
        for _ in range(self.dispatch_attempts):
            seen = handle.generation
            try:
                return handle.call(op, timeout=timeout, **fields)
            except ShardOpError:
                raise
            except ShardTimeoutError as exc:
                # Alive but silent: after a timeout the reply stream is
                # unusable (the answer may still arrive later), so the
                # stall escalates exactly like a death -- the respawn
                # path SIGKILLs the stuck process and boots a successor.
                handle.timeouts += 1
                last = exc
                self._log(
                    f"{handle.label} {op} stalled ({exc}); escalating: "
                    "killing the stuck worker and respawning"
                )
                handle.respawn(seen)
            except ShardIPCError as exc:
                last = exc
                self._log(
                    f"{handle.label} {op} failed ({exc}); "
                    "respawning and retrying"
                )
                handle.respawn(seen)
        raise last if last is not None else ShardConnectionError(
            f"{handle.label} unavailable"
        )

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        while not self._monitor_stop.wait(self.health_interval):
            # Snapshot: a concurrent reshard swaps the handles list; a
            # retired handle swept here is harmlessly "stopped".
            for handle in list(self.handles):
                if self._monitor_stop.is_set():
                    return
                try:
                    self._sweep_handle(handle)
                except BaseException as exc:
                    self._log(
                        f"{handle.label} monitor sweep failed: {exc}; "
                        "will retry on next sweep"
                    )

    def _sweep_handle(self, handle: ShardHandle) -> None:
        """One monitor pass over one slot: heal, boot deferred, recover."""
        state = handle.state
        if state == "ready":
            process = handle.process
            dead = process is not None and not process.is_alive()
            if not dead:
                verdict = handle.try_ping(timeout=10.0)
                dead = verdict is False
            if dead:
                handle.respawn(handle.generation)
        elif state == "respawning":
            handle.try_deferred_start()
        elif state == "failed":
            handle.attempt_recovery()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        handles = list(self.handles)
        states = [handle.snapshot() for handle in handles]
        return {
            "count": len(handles),
            "ready": sum(1 for s in states if s["state"] == "ready"),
            "failed": sum(1 for s in states if s["state"] == "failed"),
            "respawns": sum(s["respawns"] for s in states),
            "contained": sum(s["contained"] for s in states),
            "timeouts": sum(s["timeouts"] for s in states),
            "shards": states,
        }

    @property
    def pids(self) -> List[Optional[int]]:
        return [handle.pid for handle in list(self.handles)]

    @property
    def all_ready(self) -> bool:
        return all(
            handle.state == "ready" for handle in list(self.handles)
        )


def wait_for_pid_change(
    supervisor: ShardSupervisor,
    shard_index: int,
    old_pid: Optional[int],
    timeout: float = 30.0,
) -> Optional[int]:
    """Block until a shard's slot is serving under a new pid (tests/CI)."""
    deadline = time.monotonic() + timeout
    handle = supervisor.handles[shard_index]
    while time.monotonic() < deadline:
        pid = handle.pid
        if pid is not None and pid != old_pid and handle.state == "ready":
            return pid
        time.sleep(0.05)
    return None


# Re-export for os.kill-based tests that only import this module.
SIGKILL = getattr(os, "SIGKILL", 9)
