"""The shard router: HTTP front end over N worker processes.

:class:`ShardedApp` speaks the exact same duck type as
:class:`~repro.server.app.ServerApp` (``handle`` / ``max_body_bytes`` /
``log``), so the stdlib HTTP transport
(:class:`~repro.server.http.ReproHTTPServer`) is reused unchanged -- the
sharded tier is a different *brain* behind the same wire.

Request path:

1.  ``POST /v1/analyze`` bodies are decoded with the same parser as the
    single-process app (identical accepted shapes).
2.  Every payload is routed by rendezvous hashing of its canonical
    content key (:func:`~repro.service.requests.request_key`); payloads
    that do not even parse are routed by a hash of their raw text --
    their error records are deterministic, so any stable home works.
3.  Per-shard sub-batches are dispatched concurrently, each remembering
    the original global index of every payload.
4.  Each shard's deterministic result records come back, their
    ``index`` fields are rewritten to the global positions, and the
    stream is re-serialized with sorted keys + compact separators --
    **byte-identical** to ``repro batch`` on the same input, for any
    shard count.

Failure path: a dead shard surfaces as a connection error inside step 3;
the supervisor respawns the slot (journal replayed by the successor) and
the whole sub-batch is re-sent.  Replayed completions come back
byte-identical from the journal and the rest recompute, so a SIGKILL
mid-batch costs latency, never data.  When a slot is *quarantined*
(crash-loop containment marked it ``failed``) or stays unavailable
through the retry budget, its slice is **rerouted** to the next-highest
rendezvous-scored survivor (:func:`~repro.shard.hashing
.rendezvous_fallback`) -- results are deterministic on any shard, so
rerouting moves latency and cache locality, never bytes.

Aggregation: ``/stats`` and ``/metrics`` merge every live shard's
rollups -- exact counters add, latency reservoirs merge with the
deterministic decimation of
:meth:`~repro.service.metrics.LatencyReservoir.merge` (in shard-id
order, so aggregates are reproducible) -- and ``/readyz`` degrades to
``"degraded"`` while any slot is mid-respawn.
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..server.admission import (
    AdmissionController,
    AdmissionError,
    ServerDrainingError,
    jittered_retry_after,
)
from ..server.app import (
    DRAIN_RETRY_AFTER,
    BadRequestError,
    ServerConfig,
    parse_analyze_payloads,
    render_metrics_text,
    resolve_deadline,
)
from ..server.http import HttpResponse, ReproHTTPServer, first_query_value
from ..server.protocol import protocol_info
from ..service.metrics import CounterRegistry, LatencyReservoir, Stopwatch
from ..service.requests import RequestError, parse_request, request_key
from .hashing import rendezvous_fallback, shard_label
from .ipc import ShardConnectionError, ShardIPCError
from .supervisor import (
    RespawnPolicy,
    ShardBootError,
    ShardOpError,
    ShardSupervisor,
)

#: Retry-After handed out when a shard stays unavailable through retries.
SHARD_RETRY_AFTER = 2.0

Payload = Union[Dict[str, Any], str]


def routing_key(payload: Payload) -> str:
    """The stable routing identity of one payload.

    Valid requests route by their canonical content key, so a shard's
    private cache and journal keep earning across calls and respawns.
    Invalid payloads (parse failures) route by a hash of their raw text:
    their error records are computed deterministically on any shard, so
    all that matters is that the same garbage always lands in the same
    place.
    """

    if isinstance(payload, Mapping):
        try:
            return request_key(parse_request(dict(payload)))
        except (RequestError, TypeError, ValueError):
            canonical = json.dumps(
                payload, sort_keys=True, separators=(",", ":"), default=str
            )
    else:
        canonical = str(payload)
    return hashlib.sha256(canonical.encode("utf-8", "replace")).hexdigest()


def shard_server_config(base: ServerConfig, shard_index: int) -> ServerConfig:
    """The per-shard worker config derived from the router's config.

    Each shard gets a private journal path (``<base>.shard-<i>``); the
    admission knobs stay on the router (workers are driven serially over
    the pipe, so worker-side admission would never trigger).
    """

    journal = (
        f"{base.journal_path}.{shard_label(shard_index)}"
        if base.journal_path
        else None
    )
    return replace(base, journal_path=journal, verbose=False)


def shard_cache_file(
    cache_file: Optional[str], shard_index: int
) -> Optional[str]:
    """Per-shard result-cache persistence path (``<base>.shard-<i>``)."""
    if not cache_file:
        return None
    return f"{cache_file}.{shard_label(shard_index)}"


def _merge_counter_dicts(
    into: Dict[str, Any], extra: Mapping[str, Any]
) -> None:
    """Sum numeric values key-wise (non-numeric values are kept as-is)."""
    for name, value in extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        base = into.get(name, 0)
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            continue
        into[name] = base + value


class ShardedApp:
    """Routes + rendezvous dispatch + cross-shard aggregation."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        shards: int = 2,
        cache_file: Optional[str] = None,
        start_method: Optional[str] = None,
        health_interval: float = 0.5,
        dispatch_attempts: int = 3,
        boot_timeout: float = 60.0,
        op_timeout: Optional[float] = 300.0,
        respawn_policy: Optional[RespawnPolicy] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.config = config or ServerConfig()
        self.shards = shards
        self.cache_file = cache_file
        self.supervisor = ShardSupervisor(
            shards,
            lambda index: shard_server_config(self.config, index),
            lambda index: shard_cache_file(cache_file, index),
            start_method=start_method,
            health_interval=health_interval,
            boot_timeout=boot_timeout,
            dispatch_attempts=dispatch_attempts,
            op_timeout=op_timeout,
            respawn_policy=respawn_policy,
            log=self.log,
        )
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            rate_limit=self.config.rate_limit,
            burst=self.config.burst,
        )
        #: Router-level counters (HTTP + dispatch); shard-side serving
        #: counters live in the workers and are merged at read time.
        self.serving = CounterRegistry()
        self.uptime = Stopwatch()
        self.max_body_bytes = self.config.max_body_bytes
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ServerApp so ReproHTTPServer/drain code reuses)
    # ------------------------------------------------------------------
    def start(self) -> "ShardedApp":
        """Boot every shard worker (loud failure if any cannot boot)."""
        if not self._started:
            self.supervisor.start()
            self._started = True
        return self

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    def begin_drain(self) -> None:
        with self._state_lock:
            self._draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        with self._idle:
            if self._inflight == 0:
                return True
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close(self) -> None:
        """Drain-stop every shard (journals flushed, caches saved)."""
        self.supervisor.stop(drain=True)

    def log(self, message: str, access: bool = False) -> None:
        if access and not self.config.verbose:
            return
        import sys

        print(f"repro serve: {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        self.serving.increment("http_requests")
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/readyz" and method == "GET":
            return self._readyz()
        if path == "/metrics" and method == "GET":
            return self._metrics(query)
        if path == "/stats" and method == "GET":
            return HttpResponse.json(self.stats_dict())
        if path == "/v1/analyze":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /v1/analyze"
                )
            return self._analyze(query, headers, body, client)
        self.serving.increment("http_not_found")
        return HttpResponse.error(
            404,
            "NotFound",
            f"no route {method} {path}; see /healthz /readyz /metrics "
            "/stats /v1/analyze",
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _healthz(self) -> HttpResponse:
        payload = dict(protocol_info())
        shards = self.supervisor.snapshot()
        payload.update(
            {
                "ok": True,
                "draining": self.draining,
                "uptime_seconds": round(self.uptime.elapsed(), 3),
                "shards": shards,
            }
        )
        return HttpResponse.json(payload)

    def _readyz(self) -> HttpResponse:
        """Per-shard readiness: ready / degraded / draining.

        The tier keeps serving while a shard respawns (its keyspace
        slice just rides the retry path) or is quarantined (its keys
        reroute to survivors), so such a tier is ``degraded``, not down
        -- load balancers can keep it in rotation and dashboards still
        see the event.  ``degraded_slots`` names each unhealthy slot
        (index, state, generation, respawn count) so an operator can
        tell "slot 2 is crash-looping" from a bare "degraded" string.
        """

        if self.draining:
            return HttpResponse.error(
                503,
                "ServerDrainingError",
                "server is draining for shutdown",
                retry_after=DRAIN_RETRY_AFTER,
            )
        shards = self.supervisor.snapshot()
        degraded_slots = [
            {
                "shard": detail["shard"],
                "state": detail["state"],
                "generation": detail["generation"],
                "respawns": detail["respawns"],
            }
            for detail in shards["shards"]
            if detail["state"] != "ready"
        ]
        return HttpResponse.json(
            {
                "ready": True,
                "status": "degraded" if degraded_slots else "ok",
                "degraded_slots": degraded_slots,
                "shards": shards,
            }
        )

    def stats_dict(self) -> Dict[str, Any]:
        """Cross-shard /stats: counters summed, reservoirs merged."""
        serving: Dict[str, Any] = dict(self.serving.as_dict())
        cache: Dict[str, Any] = {}
        intra_cache: Dict[str, Any] = {}
        engine_counters: Dict[str, Any] = {}
        merged_latency = LatencyReservoir()
        shard_details: List[Dict[str, Any]] = []
        journals_degraded = 0
        # Shard-id order: LatencyReservoir.merge is order-sensitive by
        # design, and a fixed order keeps aggregate percentiles
        # reproducible across scrapes of identical state.
        for handle in self.supervisor.handles:
            detail = handle.snapshot()
            try:
                reply = self.supervisor.call_with_retry(
                    handle.index, "stats", timeout=30.0
                )
            except (ShardIPCError, ShardBootError) as exc:
                detail["error"] = str(exc)
                shard_details.append(detail)
                continue
            stats = reply.get("stats") or {}
            detail["stats"] = stats
            shard_details.append(detail)
            if (stats.get("journal") or {}).get("degraded"):
                journals_degraded += 1
            _merge_counter_dicts(serving, stats.get("serving") or {})
            _merge_counter_dicts(cache, stats.get("cache") or {})
            _merge_counter_dicts(intra_cache, stats.get("intra_cache") or {})
            _merge_counter_dicts(
                engine_counters, stats.get("engine_counters") or {}
            )
            state = reply.get("latency_state")
            if state:
                merged_latency.merge(state)
        for scope in (cache, intra_cache):
            hits = scope.get("hits", 0)
            misses = scope.get("misses", 0)
            scope["hit_rate"] = (
                round(hits / (hits + misses), 6) if hits + misses else 0.0
            )
        shards = self.supervisor.snapshot()
        shards["shards"] = shard_details
        shards["journals_degraded"] = journals_degraded
        return {
            "protocol": protocol_info(),
            "uptime_seconds": round(self.uptime.elapsed(), 3),
            "config": {
                "jobs": self.config.jobs,
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
                "rate_limit": self.config.rate_limit,
                "paranoid": self.config.paranoid,
                "journal": bool(self.config.journal_path),
                "default_deadline": self.config.default_deadline,
                "shards": self.shards,
            },
            "serving": dict(sorted(serving.items())),
            "admission": self.admission.snapshot(),
            "latency": merged_latency.summary(),
            "cache": cache,
            "intra_cache": intra_cache,
            "engine_counters": dict(sorted(engine_counters.items())),
            "certification": {
                "certified": serving.get("certified", 0),
                "discrepancies": serving.get("discrepancies", 0),
            },
            "journal": None,  # per-shard journals live under "shards"
            "shards": shards,
        }

    def _metrics(self, query: Dict[str, List[str]]) -> HttpResponse:
        stats = self.stats_dict()
        if first_query_value(query, "format") == "json":
            return HttpResponse.json(stats)
        return HttpResponse.text(render_metrics_text(stats))

    # ------------------------------------------------------------------
    # The analyze endpoint
    # ------------------------------------------------------------------
    def _analyze(
        self,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        self.serving.increment("analyze_calls")
        with self._state_lock:
            if self._draining:
                self.serving.increment("rejected_draining")
                drain = ServerDrainingError(
                    "server is draining for shutdown; retry against "
                    "another instance",
                    retry_after=DRAIN_RETRY_AFTER,
                )
                return self._admission_response(drain, client)
            self._inflight += 1
        try:
            try:
                payloads, single = parse_analyze_payloads(
                    body, headers.get("content-type", "")
                )
                deadline = resolve_deadline(
                    query,
                    headers,
                    self.config.default_deadline,
                    self.config.max_deadline,
                )
            except BadRequestError as exc:
                self.serving.increment("bad_requests")
                return HttpResponse.error(400, "BadRequest", str(exc))
            if len(payloads) > self.config.max_batch_requests:
                self.serving.increment("bad_requests")
                return HttpResponse.error(
                    400,
                    "BatchTooLarge",
                    f"{len(payloads)} requests exceed the per-call limit "
                    f"of {self.config.max_batch_requests}; split the batch",
                )
            try:
                with self.admission.admit(client):
                    records, counts = self._dispatch(payloads, deadline)
            except AdmissionError as exc:
                return self._admission_response(exc, client)
            except ShardOpError as exc:
                self.serving.increment("shard_op_errors")
                return HttpResponse.error(500, "ShardOpError", str(exc))
            except (ShardIPCError, ShardBootError) as exc:
                # Retries, a respawn attempt, and rerouting are already
                # behind us; whatever is wrong needs longer than this
                # request has.
                self.serving.increment("shard_unavailable")
                return HttpResponse.error(
                    503,
                    "ShardUnavailableError",
                    f"a shard stayed unavailable through respawn: {exc}",
                    retry_after=jittered_retry_after(
                        SHARD_RETRY_AFTER,
                        client,
                        self.config.retry_jitter_seed,
                    ),
                )
            return self._records_response(records, counts, single)
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _route(self, key: str, excluded: Iterable[int] = ()) -> int:
        """The shard that should serve ``key`` right now.

        Quarantined (``failed``) slots are always excluded; callers add
        shards that just failed mid-dispatch.  Raises
        :class:`ShardConnectionError` when no serviceable shard remains.
        """

        blocked = set(excluded)
        for index, handle in enumerate(self.supervisor.handles):
            if handle.state == "failed":
                blocked.add(index)
        index = rendezvous_fallback(key, self.shards, blocked)
        if index is None:
            raise ShardConnectionError(
                f"no serviceable shard: all {self.shards} slots are "
                "failed or unreachable"
            )
        return index

    def _dispatch(
        self,
        payloads: List[Payload],
        deadline: Optional[float],
    ) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
        """Route, fan out, reroute, reassemble -- the heart of the tier.

        Returns the result records *in global input order* plus the
        summed report counters.  A slice whose shard stays unavailable
        through respawn + retry is rerouted to the next rendezvous
        choice; only when every slot is exhausted does the shard failure
        taxonomy propagate to the caller.
        """

        records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        counts = {
            "requests": 0,
            "errors": 0,
            "cached": 0,
            "computed": 0,
            "replayed": 0,
            "certified": 0,
            "discrepancies": 0,
        }
        counts_lock = threading.Lock()

        def run_shard(shard: int, items: List[Tuple[int, Payload]]) -> None:
            reply = self.supervisor.call_with_retry(
                shard,
                "analyze",
                payloads=[payload for _, payload in items],
                deadline=deadline,
            )
            shard_records = reply.get("records")
            if (
                not isinstance(shard_records, list)
                or len(shard_records) != len(items)
            ):
                raise ShardOpError(
                    "analyze",
                    "ShardProtocolError",
                    f"{shard_label(shard)} returned "
                    f"{len(shard_records or [])} records "
                    f"for {len(items)} payloads",
                )
            for (position, _), record in zip(items, shard_records):
                record["index"] = position
                records[position] = record
            with counts_lock:
                for name in counts:
                    counts[name] += int(reply.get(name) or 0)

        pending: List[Tuple[int, Payload]] = list(enumerate(payloads))
        excluded: set = set()
        last_error: Optional[Exception] = None
        while pending:
            if len(excluded) >= self.shards:
                raise last_error or ShardConnectionError(
                    "no serviceable shard remains"
                )
            groups: Dict[int, List[Tuple[int, Payload]]] = {}
            for position, payload in pending:
                shard = self._route(routing_key(payload), excluded)
                groups.setdefault(shard, []).append((position, payload))
            pending = []

            def attempt(shard: int, items: List[Tuple[int, Payload]]) -> None:
                nonlocal last_error
                try:
                    run_shard(shard, items)
                except (ShardIPCError, ShardBootError) as exc:
                    # This shard is out for the round: exclude it and
                    # requeue its slice for the next-ranked survivor.
                    # ShardOpError deliberately propagates -- the worker
                    # answered; re-asking elsewhere would not help.
                    with counts_lock:
                        last_error = exc
                        excluded.add(shard)
                        pending.extend(items)

            ordered = sorted(groups.items())
            if len(ordered) == 1:
                attempt(*ordered[0])
            else:
                with ThreadPoolExecutor(
                    max_workers=len(ordered),
                    thread_name_prefix="repro-shard-dispatch",
                ) as pool:
                    futures = [
                        pool.submit(attempt, shard, items)
                        for shard, items in ordered
                    ]
                    # Surface the first ShardOpError; remaining futures
                    # finish (their shards are independent) before the
                    # pool exits.
                    for future in futures:
                        future.result()
            if pending:
                self.serving.increment("shard_reroutes", len(pending))
                self.log(
                    f"rerouting {len(pending)} payload(s) away from "
                    f"unavailable shard(s) {sorted(excluded)}"
                )
        assert all(record is not None for record in records)
        return records, counts  # type: ignore[return-value]

    def _records_response(
        self,
        records: List[Dict[str, Any]],
        counts: Dict[str, int],
        single: bool,
    ) -> HttpResponse:
        self.serving.increment("requests_routed", counts["requests"])
        headers = {
            "X-Repro-Requests": str(counts["requests"]),
            "X-Repro-Errors": str(counts["errors"]),
            "X-Repro-Cached": str(counts["cached"]),
            "X-Repro-Shards": str(self.shards),
        }
        if single:
            body = json.dumps(
                records[0], sort_keys=True, separators=(",", ":")
            )
            return HttpResponse(
                status=200,
                body=(body + "\n").encode("utf-8"),
                content_type="application/json",
                headers=headers,
            )
        # Reassembled stream, re-serialized exactly like BatchReport
        # .to_jsonl(): byte-identical to `repro batch` and to any other
        # shard count.
        lines = "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        )
        return HttpResponse.ndjson(lines, headers=headers)

    def _admission_response(
        self, exc: AdmissionError, client: str
    ) -> HttpResponse:
        self.serving.increment(f"http_{exc.status}")
        return HttpResponse.error(
            exc.status,
            exc.error_type,
            str(exc),
            retry_after=jittered_retry_after(
                exc.retry_after, client, self.config.retry_jitter_seed
            ),
        )


class ShardedServer:
    """The sharded daemon: HTTP listener + router + shard fleet.

    Mirrors :class:`~repro.server.app.ReproServer` (same start /
    serve_forever / shutdown-with-drain / context-manager surface) so
    the CLI and tests treat single-process and sharded tiers uniformly.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        shards: int = 2,
        cache_file: Optional[str] = None,
        start_method: Optional[str] = None,
        health_interval: float = 0.5,
        dispatch_attempts: int = 3,
        boot_timeout: float = 60.0,
        op_timeout: Optional[float] = 300.0,
        respawn_policy: Optional[RespawnPolicy] = None,
    ):
        self.config = config or ServerConfig()
        self.app = ShardedApp(
            self.config,
            shards=shards,
            cache_file=cache_file,
            start_method=start_method,
            health_interval=health_interval,
            dispatch_attempts=dispatch_attempts,
            boot_timeout=boot_timeout,
            op_timeout=op_timeout,
            respawn_policy=respawn_policy,
        )
        # Boot the fleet before the listener: a tier that cannot serve
        # its keyspace must fail loudly instead of accepting requests.
        self.app.start()
        self.httpd = ReproHTTPServer(
            (self.config.host, self.config.port), self.app
        )
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self._drained = True

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ShardedServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-sharded",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        if self._stopped:
            return self._drained
        self._stopped = True
        drained = True
        if drain:
            self.app.begin_drain()
            drained = self.app.wait_idle(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()
        self._drained = drained
        return drained

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)
