"""The shard router: HTTP front end over N worker processes.

:class:`ShardedApp` speaks the exact same duck type as
:class:`~repro.server.app.ServerApp` (``handle`` / ``max_body_bytes`` /
``log``), so the stdlib HTTP transport
(:class:`~repro.server.http.ReproHTTPServer`) is reused unchanged -- the
sharded tier is a different *brain* behind the same wire.

Request path:

1.  ``POST /v1/analyze`` bodies are decoded with the same parser as the
    single-process app (identical accepted shapes).
2.  Every payload is routed by rendezvous hashing of its canonical
    content key (:func:`~repro.service.requests.request_key`); payloads
    that do not even parse are routed by a hash of their raw text --
    their error records are deterministic, so any stable home works.
3.  Per-shard sub-batches are dispatched concurrently, each remembering
    the original global index of every payload.
4.  Each shard's deterministic result records come back, their
    ``index`` fields are rewritten to the global positions, and the
    stream is re-serialized with sorted keys + compact separators --
    **byte-identical** to ``repro batch`` on the same input, for any
    shard count.

Failure path: a dead shard surfaces as a connection error inside step 3;
the supervisor respawns the slot (journal replayed by the successor) and
the whole sub-batch is re-sent.  Replayed completions come back
byte-identical from the journal and the rest recompute, so a SIGKILL
mid-batch costs latency, never data.  When a slot is *quarantined*
(crash-loop containment marked it ``failed``) or stays unavailable
through the retry budget, its slice is **rerouted** to the next-highest
rendezvous-scored survivor (:func:`~repro.shard.hashing
.rendezvous_fallback`) -- results are deterministic on any shard, so
rerouting moves latency and cache locality, never bytes.

Aggregation: ``/stats`` and ``/metrics`` merge every live shard's
rollups -- exact counters add, latency reservoirs merge with the
deterministic decimation of
:meth:`~repro.service.metrics.LatencyReservoir.merge` (in shard-id
order, so aggregates are reproducible) -- and ``/readyz`` degrades to
``"degraded"`` while any slot is mid-respawn.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..server.admission import (
    AdmissionController,
    AdmissionError,
    ServerDrainingError,
    jittered_retry_after,
)
from ..server.app import (
    DRAIN_RETRY_AFTER,
    BadRequestError,
    ServerConfig,
    parse_analyze_payloads,
    render_metrics_text,
    resolve_deadline,
)
from ..server.http import HttpResponse, ReproHTTPServer, first_query_value
from ..server.protocol import protocol_info
from ..service.journal import read_journal_completions, record_crc
from ..service.metrics import CounterRegistry, LatencyReservoir, Stopwatch
from ..service.requests import RequestError, parse_request, request_key
from .hashing import (
    rendezvous_fallback,
    rendezvous_ranking,
    rendezvous_shard,
    shard_label,
)
from .ipc import ShardConnectionError, ShardIPCError
from .supervisor import (
    RespawnPolicy,
    ShardBootError,
    ShardOpError,
    ShardSupervisor,
)

#: Retry-After handed out when a shard stays unavailable through retries.
SHARD_RETRY_AFTER = 2.0

#: Retry-After base for requests parked behind (or refused by) a live
#: reshard handoff; jittered per client like every other hint.
RESHARD_RETRY_AFTER = 1.0

Payload = Union[Dict[str, Any], str]


class ReshardInProgressError(AdmissionError):
    """A reshard is already running; resizes are strictly serial (409)."""

    status = 409
    error_type = "ReshardInProgressError"


class HandoffPendingError(AdmissionError):
    """A request could not be parked behind a handoff window (503).

    Raised when the bounded pending queue would overflow, or when a
    parked request outwaits ``reshard_max_wait`` -- either way the
    client gets a deterministic jittered Retry-After, never a 500 and
    never an unbounded queue.
    """

    status = 503
    error_type = "HandoffPendingError"


def routing_key(payload: Payload) -> str:
    """The stable routing identity of one payload.

    Valid requests route by their canonical content key, so a shard's
    private cache and journal keep earning across calls and respawns.
    Invalid payloads (parse failures) route by a hash of their raw text:
    their error records are computed deterministically on any shard, so
    all that matters is that the same garbage always lands in the same
    place.
    """

    if isinstance(payload, Mapping):
        try:
            return request_key(parse_request(dict(payload)))
        except (RequestError, TypeError, ValueError):
            canonical = json.dumps(
                payload, sort_keys=True, separators=(",", ":"), default=str
            )
    else:
        canonical = str(payload)
    return hashlib.sha256(canonical.encode("utf-8", "replace")).hexdigest()


def shard_server_config(base: ServerConfig, shard_index: int) -> ServerConfig:
    """The per-shard worker config derived from the router's config.

    Each shard gets a private journal path (``<base>.shard-<i>``); the
    admission knobs stay on the router (workers are driven serially over
    the pipe, so worker-side admission would never trigger).
    """

    journal = (
        f"{base.journal_path}.{shard_label(shard_index)}"
        if base.journal_path
        else None
    )
    return replace(base, journal_path=journal, verbose=False)


def shard_cache_file(
    cache_file: Optional[str], shard_index: int
) -> Optional[str]:
    """Per-shard result-cache persistence path (``<base>.shard-<i>``)."""
    if not cache_file:
        return None
    return f"{cache_file}.{shard_label(shard_index)}"


def _merge_counter_dicts(
    into: Dict[str, Any], extra: Mapping[str, Any]
) -> None:
    """Sum numeric values key-wise (non-numeric values are kept as-is)."""
    for name, value in extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        base = into.get(name, 0)
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            continue
        into[name] = base + value


class _ReshardState:
    """In-flight reshard bookkeeping shared by every dispatcher.

    While a reshard is active the router keeps serving under the *old*
    topology; only payloads whose key changes owners are parked (in a
    bounded pending queue) until the handoff commits.  ``done`` flips
    exactly once -- at commit or rollback -- releasing every parked
    dispatcher to re-route under whatever topology won.
    """

    def __init__(
        self,
        old_count: int,
        new_count: int,
        pending_limit: int,
        max_wait: float,
    ):
        self.old_count = old_count
        self.new_count = new_count
        self.pending_limit = pending_limit
        self.max_wait = max_wait
        self.done = threading.Event()
        #: Slots that exist now but not under the target topology; they
        #: are blocked from *all* routing (including fallback) the
        #: moment the reshard starts, so nothing new lands in a journal
        #: that is about to be handed off and unlinked.
        self.retiring = frozenset(range(new_count, old_count))
        self._lock = threading.Lock()
        self.parked = 0
        self.parked_peak = 0

    def moving(self, key: str) -> bool:
        """Whether ``key`` changes owners between the two topologies."""
        return rendezvous_shard(key, self.old_count) != rendezvous_shard(
            key, self.new_count
        )

    def park(self, count: int) -> bool:
        """Reserve queue room for ``count`` payloads; False = overflow."""
        with self._lock:
            if self.parked + count > self.pending_limit:
                return False
            self.parked += count
            self.parked_peak = max(self.parked_peak, self.parked)
            return True

    def unpark(self, count: int) -> None:
        with self._lock:
            self.parked -= count


class HotKeyTracker:
    """Decaying per-key request rates driving read-any replication.

    ``observe`` bumps an exponentially decaying counter (half-life
    ``halflife`` seconds) for a key; a key is *hot* while its decayed
    rate is at or above ``threshold``.  Hot keys fan out round-robin
    across their top-R rendezvous slots (read-any: results are
    deterministic, so any replica's answer is the owner's answer,
    byte for byte), while journaling/write discipline stays with
    whichever slot serves the request -- cold keys keep strict
    single-owner routing.  The map is LRU-bounded to ``max_keys`` so an
    adversarial key stream cannot grow router memory without bound.
    """

    def __init__(
        self,
        threshold: float,
        replicas: int = 2,
        halflife: float = 10.0,
        max_keys: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        if max_keys < 1:
            raise ValueError("max_keys must be at least 1")
        self.threshold = float(threshold)
        self.replicas = int(replicas)
        self.halflife = float(halflife)
        self.max_keys = int(max_keys)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> [decayed_rate, last_seen, rotation_counter]
        self._entries: "OrderedDict[str, List[Any]]" = OrderedDict()

    def _decayed(self, rate: float, last: float, now: float) -> float:
        return rate * (0.5 ** ((now - last) / self.halflife))

    def observe(self, key: str) -> float:
        """Record one request for ``key``; returns its decayed rate."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = [0.0, now, 0]
                self._entries[key] = entry
                if len(self._entries) > self.max_keys:
                    self._entries.popitem(last=False)
            entry[0] = self._decayed(entry[0], entry[1], now) + 1.0
            entry[1] = now
            self._entries.move_to_end(key)
            return entry[0]

    def is_hot(self, key: str) -> bool:
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            return self._decayed(entry[0], entry[1], now) >= self.threshold

    def next_turn(self, key: str) -> int:
        """The key's read-any rotation counter (round-robin replicas)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return 0
            entry[2] += 1
            return entry[2]

    def hot_count(self) -> int:
        now = self._clock()
        with self._lock:
            return sum(
                1
                for rate, last, _ in self._entries.values()
                if self._decayed(rate, last, now) >= self.threshold
            )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "tracked": len(self._entries),
            "hot": self.hot_count(),
            "threshold": self.threshold,
            "replicas": self.replicas,
            "halflife_seconds": self.halflife,
        }


class ShardedApp:
    """Routes + rendezvous dispatch + cross-shard aggregation."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        shards: int = 2,
        cache_file: Optional[str] = None,
        start_method: Optional[str] = None,
        health_interval: float = 0.5,
        dispatch_attempts: int = 3,
        boot_timeout: float = 60.0,
        op_timeout: Optional[float] = 300.0,
        respawn_policy: Optional[RespawnPolicy] = None,
        hot_key_threshold: float = 32.0,
        hot_key_replicas: int = 2,
        hot_key_halflife: float = 10.0,
        reshard_pending_limit: int = 256,
        reshard_max_wait: float = 15.0,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if reshard_pending_limit < 0:
            raise ValueError("reshard_pending_limit must be non-negative")
        if reshard_max_wait <= 0:
            raise ValueError("reshard_max_wait must be positive")
        self.config = config or ServerConfig()
        self.shards = shards
        self.cache_file = cache_file
        self.supervisor = ShardSupervisor(
            shards,
            lambda index: shard_server_config(self.config, index),
            lambda index: shard_cache_file(cache_file, index),
            start_method=start_method,
            health_interval=health_interval,
            boot_timeout=boot_timeout,
            dispatch_attempts=dispatch_attempts,
            op_timeout=op_timeout,
            respawn_policy=respawn_policy,
            log=self.log,
        )
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            rate_limit=self.config.rate_limit,
            burst=self.config.burst,
        )
        #: Router-level counters (HTTP + dispatch); shard-side serving
        #: counters live in the workers and are merged at read time.
        self.serving = CounterRegistry()
        self.uptime = Stopwatch()
        self.max_body_bytes = self.config.max_body_bytes
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._draining = False
        self._started = False
        #: Hot-key read-any replication (``hot_key_threshold <= 0``
        #: disables tracking entirely -- strict single-owner routing).
        self.hot_keys: Optional[HotKeyTracker] = (
            HotKeyTracker(
                hot_key_threshold, hot_key_replicas, hot_key_halflife
            )
            if hot_key_threshold > 0
            else None
        )
        self.reshard_pending_limit = reshard_pending_limit
        self.reshard_max_wait = reshard_max_wait
        #: Serializes reshards; taken non-blocking so a concurrent
        #: resize answers 409 instead of queueing behind the first.
        self._reshard_lock = threading.Lock()
        self._resharding: Optional[_ReshardState] = None
        self._last_reshard: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ServerApp so ReproHTTPServer/drain code reuses)
    # ------------------------------------------------------------------
    def start(self) -> "ShardedApp":
        """Boot every shard worker (loud failure if any cannot boot)."""
        if not self._started:
            self.supervisor.start()
            self._started = True
        return self

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    def begin_drain(self) -> None:
        with self._state_lock:
            self._draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        with self._idle:
            if self._inflight == 0:
                return True
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close(self) -> None:
        """Drain-stop every shard (journals flushed, caches saved)."""
        self.supervisor.stop(drain=True)

    def log(self, message: str, access: bool = False) -> None:
        if access and not self.config.verbose:
            return
        import sys

        print(f"repro serve: {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        self.serving.increment("http_requests")
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/readyz" and method == "GET":
            return self._readyz()
        if path == "/metrics" and method == "GET":
            return self._metrics(query)
        if path == "/stats" and method == "GET":
            return HttpResponse.json(self.stats_dict())
        if path == "/v1/analyze":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /v1/analyze"
                )
            return self._analyze(query, headers, body, client)
        if path == "/admin/reshard":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /admin/reshard"
                )
            return self._admin_reshard(body, client)
        if path == "/admin/compact":
            if method != "POST":
                return HttpResponse.error(
                    405, "MethodNotAllowed", "use POST /admin/compact"
                )
            return self._admin_compact(client)
        self.serving.increment("http_not_found")
        return HttpResponse.error(
            404,
            "NotFound",
            f"no route {method} {path}; see /healthz /readyz /metrics "
            "/stats /v1/analyze /admin/reshard /admin/compact",
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _healthz(self) -> HttpResponse:
        payload = dict(protocol_info())
        shards = self.supervisor.snapshot()
        payload.update(
            {
                "ok": True,
                "draining": self.draining,
                "uptime_seconds": round(self.uptime.elapsed(), 3),
                "shards": shards,
            }
        )
        return HttpResponse.json(payload)

    def _readyz(self) -> HttpResponse:
        """Per-shard readiness: ready / resharding / degraded / draining.

        The tier keeps serving while a shard respawns (its keyspace
        slice just rides the retry path) or is quarantined (its keys
        reroute to survivors), so such a tier is ``degraded``, not down
        -- load balancers can keep it in rotation and dashboards still
        see the event.  ``degraded_slots`` names each unhealthy slot
        (index, state, generation, respawn count) so an operator can
        tell "slot 2 is crash-looping" from a bare "degraded" string.
        A live reshard is its own distinct state: ``"resharding"`` with
        the source/target topology and the parked-key count, because
        slots booting/retiring mid-handoff are expected churn, not a
        health event.
        """

        if self.draining:
            return HttpResponse.error(
                503,
                "ServerDrainingError",
                "server is draining for shutdown",
                retry_after=DRAIN_RETRY_AFTER,
            )
        shards = self.supervisor.snapshot()
        degraded_slots = [
            {
                "shard": detail["shard"],
                "state": detail["state"],
                "generation": detail["generation"],
                "respawns": detail["respawns"],
            }
            for detail in shards["shards"]
            if detail["state"] != "ready"
        ]
        state = self._resharding
        resharding: Dict[str, Any] = {
            "active": state is not None,
            "pending": state.parked if state is not None else 0,
        }
        if state is not None:
            resharding["from"] = state.old_count
            resharding["to"] = state.new_count
            status = "resharding"
        else:
            status = "degraded" if degraded_slots else "ok"
        return HttpResponse.json(
            {
                "ready": True,
                "status": status,
                "degraded_slots": degraded_slots,
                "resharding": resharding,
                "shards": shards,
            }
        )

    def stats_dict(self) -> Dict[str, Any]:
        """Cross-shard /stats: counters summed, reservoirs merged."""
        serving: Dict[str, Any] = dict(self.serving.as_dict())
        cache: Dict[str, Any] = {}
        intra_cache: Dict[str, Any] = {}
        engine_counters: Dict[str, Any] = {}
        merged_latency = LatencyReservoir()
        shard_details: List[Dict[str, Any]] = []
        journals_degraded = 0
        journal_rollup: Dict[str, Union[int, float]] = {
            "journal_records": 0,
            "journal_bytes": 0,
            "journal_compactions": 0,
            "journal_corrupt_quarantined": 0,
            "journal_replay_seconds": 0.0,
        }
        # Shard-id order: LatencyReservoir.merge is order-sensitive by
        # design, and a fixed order keeps aggregate percentiles
        # reproducible across scrapes of identical state.  Snapshot the
        # list: a concurrent reshard swaps it mid-scrape.
        for handle in list(self.supervisor.handles):
            detail = handle.snapshot()
            try:
                reply = self.supervisor.call_with_retry(
                    handle.index, "stats", timeout=30.0
                )
            except (ShardIPCError, ShardBootError) as exc:
                detail["error"] = str(exc)
                shard_details.append(detail)
                continue
            stats = reply.get("stats") or {}
            detail["stats"] = stats
            shard_details.append(detail)
            jstats = stats.get("journal") or {}
            if jstats.get("degraded"):
                journals_degraded += 1
            journal_rollup["journal_records"] += int(
                jstats.get("completed") or 0
            )
            journal_rollup["journal_bytes"] += int(
                jstats.get("file_bytes") or 0
            )
            journal_rollup["journal_compactions"] += int(
                jstats.get("compactions") or 0
            )
            journal_rollup["journal_corrupt_quarantined"] += int(
                jstats.get("corrupt_quarantined") or 0
            )
            journal_rollup["journal_replay_seconds"] += float(
                jstats.get("replay_seconds") or 0.0
            )
            _merge_counter_dicts(serving, stats.get("serving") or {})
            _merge_counter_dicts(cache, stats.get("cache") or {})
            _merge_counter_dicts(intra_cache, stats.get("intra_cache") or {})
            _merge_counter_dicts(
                engine_counters, stats.get("engine_counters") or {}
            )
            state = reply.get("latency_state")
            if state:
                merged_latency.merge(state)
        for scope in (cache, intra_cache):
            hits = scope.get("hits", 0)
            misses = scope.get("misses", 0)
            scope["hit_rate"] = (
                round(hits / (hits + misses), 6) if hits + misses else 0.0
            )
        shards = self.supervisor.snapshot()
        shards["shards"] = shard_details
        shards["journals_degraded"] = journals_degraded
        journal_rollup["journal_replay_seconds"] = round(
            float(journal_rollup["journal_replay_seconds"]), 6
        )
        shards.update(journal_rollup)
        state = self._resharding
        resharding = {
            "active": state is not None,
            "pending": state.parked if state is not None else 0,
            "reshards_completed": int(serving.get("reshards_completed", 0)),
            "keys_moved": int(serving.get("keys_moved", 0)),
            "last": self._last_reshard,
        }
        if self.hot_keys is not None:
            hot_keys = self.hot_keys.snapshot()
        else:
            hot_keys = {
                "tracked": 0,
                "hot": 0,
                "threshold": 0.0,
                "replicas": 0,
                "halflife_seconds": 0.0,
            }
        hot_keys["replica_reads"] = int(serving.get("replica_reads", 0))
        return {
            "protocol": protocol_info(),
            "uptime_seconds": round(self.uptime.elapsed(), 3),
            "config": {
                "jobs": self.config.jobs,
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
                "rate_limit": self.config.rate_limit,
                "paranoid": self.config.paranoid,
                "journal": bool(self.config.journal_path),
                "default_deadline": self.config.default_deadline,
                "shards": self.shards,
            },
            "serving": dict(sorted(serving.items())),
            "admission": self.admission.snapshot(),
            "latency": merged_latency.summary(),
            "cache": cache,
            "intra_cache": intra_cache,
            "engine_counters": dict(sorted(engine_counters.items())),
            "certification": {
                "certified": serving.get("certified", 0),
                "discrepancies": serving.get("discrepancies", 0),
            },
            "journal": None,  # per-shard journals live under "shards"
            "shards": shards,
            "resharding": resharding,
            "hot_keys": hot_keys,
        }

    def _metrics(self, query: Dict[str, List[str]]) -> HttpResponse:
        stats = self.stats_dict()
        if first_query_value(query, "format") == "json":
            return HttpResponse.json(stats)
        return HttpResponse.text(render_metrics_text(stats))

    # ------------------------------------------------------------------
    # The analyze endpoint
    # ------------------------------------------------------------------
    def _analyze(
        self,
        query: Dict[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> HttpResponse:
        self.serving.increment("analyze_calls")
        with self._state_lock:
            if self._draining:
                self.serving.increment("rejected_draining")
                drain = ServerDrainingError(
                    "server is draining for shutdown; retry against "
                    "another instance",
                    retry_after=DRAIN_RETRY_AFTER,
                )
                return self._admission_response(drain, client)
            self._inflight += 1
        try:
            try:
                payloads, single = parse_analyze_payloads(
                    body, headers.get("content-type", "")
                )
                deadline = resolve_deadline(
                    query,
                    headers,
                    self.config.default_deadline,
                    self.config.max_deadline,
                )
            except BadRequestError as exc:
                self.serving.increment("bad_requests")
                return HttpResponse.error(400, "BadRequest", str(exc))
            if len(payloads) > self.config.max_batch_requests:
                self.serving.increment("bad_requests")
                return HttpResponse.error(
                    400,
                    "BatchTooLarge",
                    f"{len(payloads)} requests exceed the per-call limit "
                    f"of {self.config.max_batch_requests}; split the batch",
                )
            try:
                with self.admission.admit(client):
                    records, counts = self._dispatch(payloads, deadline)
            except AdmissionError as exc:
                return self._admission_response(exc, client)
            except ShardOpError as exc:
                self.serving.increment("shard_op_errors")
                return HttpResponse.error(500, "ShardOpError", str(exc))
            except (ShardIPCError, ShardBootError) as exc:
                # Retries, a respawn attempt, and rerouting are already
                # behind us; whatever is wrong needs longer than this
                # request has.
                self.serving.increment("shard_unavailable")
                return HttpResponse.error(
                    503,
                    "ShardUnavailableError",
                    f"a shard stayed unavailable through respawn: {exc}",
                    retry_after=jittered_retry_after(
                        SHARD_RETRY_AFTER,
                        client,
                        self.config.retry_jitter_seed,
                    ),
                )
            return self._records_response(records, counts, single)
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _route(
        self,
        key: str,
        excluded: Iterable[int] = (),
        state: Optional[_ReshardState] = None,
    ) -> int:
        """The shard that should serve ``key`` right now.

        Quarantined (``failed``) slots are always excluded; callers add
        shards that just failed mid-dispatch, and an active reshard
        (``state``) blocks its retiring slots so nothing new lands in a
        journal about to be handed off.  Hot keys take the read-any
        replica path first.  Raises :class:`ShardConnectionError` when
        no serviceable shard remains.
        """

        blocked = set(excluded)
        if state is not None:
            blocked.update(state.retiring)
        handles = list(self.supervisor.handles)
        for index, handle in enumerate(handles[: self.shards]):
            if handle.state == "failed":
                blocked.add(index)
        if self.hot_keys is not None and self.hot_keys.is_hot(key):
            choice = self._route_replica(key, blocked, handles)
            if choice is not None:
                return choice
        index = rendezvous_fallback(key, self.shards, blocked)
        if index is None:
            raise ShardConnectionError(
                f"no serviceable shard: all {self.shards} slots are "
                "failed or unreachable"
            )
        return index

    def _route_replica(
        self,
        key: str,
        blocked: Iterable[int],
        handles: List[Any],
    ) -> Optional[int]:
        """Read-any routing for a hot key across its top-R slots.

        Only ``ready`` replicas participate -- the whole point is that a
        replica answers while the owner is mid-respawn, without riding
        the retry path.  Serving off the non-owner counts as a
        ``replica_reads``; results are deterministic, so the bytes are
        the owner's bytes.  Returns ``None`` when no replica is
        serviceable (normal fallback routing decides then).
        """

        assert self.hot_keys is not None
        blocked = set(blocked)
        ranking = rendezvous_ranking(key, self.shards)[
            : self.hot_keys.replicas
        ]
        live = [
            index
            for index in ranking
            if index not in blocked
            and index < len(handles)
            and handles[index].state == "ready"
        ]
        if not live:
            return None
        choice = live[self.hot_keys.next_turn(key) % len(live)]
        if choice != ranking[0]:
            self.serving.increment("replica_reads")
        return choice

    def _dispatch(
        self,
        payloads: List[Payload],
        deadline: Optional[float],
    ) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
        """Route, fan out, reroute, reassemble -- the heart of the tier.

        Returns the result records *in global input order* plus the
        summed report counters.  A slice whose shard stays unavailable
        through respawn + retry is rerouted to the next rendezvous
        choice; only when every slot is exhausted does the shard failure
        taxonomy propagate to the caller.  During a live reshard,
        payloads whose key is mid-handoff are parked (bounded, with a
        deterministic Retry-After on overflow/timeout) and re-routed
        under the winning topology once the handoff commits -- the
        response is byte-identical either way.
        """

        keys = [routing_key(payload) for payload in payloads]
        if self.hot_keys is not None:
            for key in keys:
                self.hot_keys.observe(key)
        records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        counts = {
            "requests": 0,
            "errors": 0,
            "cached": 0,
            "computed": 0,
            "replayed": 0,
            "certified": 0,
            "discrepancies": 0,
        }
        counts_lock = threading.Lock()

        def run_shard(shard: int, items: List[Tuple[int, Payload]]) -> None:
            reply = self.supervisor.call_with_retry(
                shard,
                "analyze",
                payloads=[payload for _, payload in items],
                deadline=deadline,
            )
            shard_records = reply.get("records")
            if (
                not isinstance(shard_records, list)
                or len(shard_records) != len(items)
            ):
                raise ShardOpError(
                    "analyze",
                    "ShardProtocolError",
                    f"{shard_label(shard)} returned "
                    f"{len(shard_records or [])} records "
                    f"for {len(items)} payloads",
                )
            for (position, _), record in zip(items, shard_records):
                record["index"] = position
                records[position] = record
            with counts_lock:
                for name in counts:
                    counts[name] += int(reply.get(name) or 0)

        pending: List[Tuple[int, Payload]] = list(enumerate(payloads))
        excluded: set = set()
        last_error: Optional[Exception] = None
        while pending:
            if len(excluded) >= self.shards:
                raise last_error or ShardConnectionError(
                    "no serviceable shard remains"
                )
            # One topology decision per round: an already-finished
            # reshard reads as None, an active one parks moving keys.
            state = self._resharding
            if state is not None and state.done.is_set():
                state = None
            groups: Dict[int, List[Tuple[int, Payload]]] = {}
            parked: List[Tuple[int, Payload]] = []
            for position, payload in pending:
                key = keys[position]
                if state is not None and state.moving(key):
                    parked.append((position, payload))
                    continue
                shard = self._route(key, excluded, state)
                groups.setdefault(shard, []).append((position, payload))
            pending = []

            def attempt(shard: int, items: List[Tuple[int, Payload]]) -> None:
                nonlocal last_error
                try:
                    run_shard(shard, items)
                except (ShardIPCError, ShardBootError) as exc:
                    # This shard is out for the round: exclude it and
                    # requeue its slice for the next-ranked survivor.
                    # ShardOpError deliberately propagates -- the worker
                    # answered; re-asking elsewhere would not help.
                    with counts_lock:
                        last_error = exc
                        excluded.add(shard)
                        pending.extend(items)

            # Every payload may be parked behind the handoff window, in
            # which case there is nothing to dispatch this round.
            ordered = sorted(groups.items())
            if len(ordered) == 1:
                attempt(*ordered[0])
            elif ordered:
                with ThreadPoolExecutor(
                    max_workers=len(ordered),
                    thread_name_prefix="repro-shard-dispatch",
                ) as pool:
                    futures = [
                        pool.submit(attempt, shard, items)
                        for shard, items in ordered
                    ]
                    # Surface the first ShardOpError; remaining futures
                    # finish (their shards are independent) before the
                    # pool exits.
                    for future in futures:
                        future.result()
            if pending:
                self.serving.increment("shard_reroutes", len(pending))
                self.log(
                    f"rerouting {len(pending)} payload(s) away from "
                    f"unavailable shard(s) {sorted(excluded)}"
                )
            if parked:
                self._await_handoff(state, len(parked))
                pending.extend(parked)
        assert all(record is not None for record in records)
        return records, counts  # type: ignore[return-value]

    def _await_handoff(self, state: _ReshardState, count: int) -> None:
        """Park ``count`` payloads behind an active handoff window.

        Bounded and never a 500: an overflowing queue or an outwaited
        handoff raises :class:`HandoffPendingError`, which renders as a
        503 with the per-client jittered Retry-After.  On a normal
        wakeup the caller simply re-routes the payloads under the
        committed topology.
        """

        self.serving.increment("handoff_parked", count)
        if not state.park(count):
            self.serving.increment("handoff_overflows")
            raise HandoffPendingError(
                f"{count} request(s) would overflow the reshard pending "
                f"queue (limit {state.pending_limit}); retry after the "
                "handoff completes",
                retry_after=RESHARD_RETRY_AFTER,
            )
        try:
            if not state.done.wait(state.max_wait):
                self.serving.increment("handoff_wait_timeouts")
                raise HandoffPendingError(
                    f"reshard handoff still in progress after "
                    f"{state.max_wait:.1f}s parked; retry shortly",
                    retry_after=RESHARD_RETRY_AFTER,
                )
        finally:
            state.unpark(count)

    @property
    def handoff_pending(self) -> int:
        """Requests currently parked behind a reshard handoff (gauge)."""
        state = self._resharding
        return state.parked if state is not None else 0

    def _records_response(
        self,
        records: List[Dict[str, Any]],
        counts: Dict[str, int],
        single: bool,
    ) -> HttpResponse:
        self.serving.increment("requests_routed", counts["requests"])
        headers = {
            "X-Repro-Requests": str(counts["requests"]),
            "X-Repro-Errors": str(counts["errors"]),
            "X-Repro-Cached": str(counts["cached"]),
            "X-Repro-Shards": str(self.shards),
        }
        if single:
            body = json.dumps(
                records[0], sort_keys=True, separators=(",", ":")
            )
            return HttpResponse(
                status=200,
                body=(body + "\n").encode("utf-8"),
                content_type="application/json",
                headers=headers,
            )
        # Reassembled stream, re-serialized exactly like BatchReport
        # .to_jsonl(): byte-identical to `repro batch` and to any other
        # shard count.
        lines = "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        )
        return HttpResponse.ndjson(lines, headers=headers)

    def _admission_response(
        self, exc: AdmissionError, client: str
    ) -> HttpResponse:
        self.serving.increment(f"http_{exc.status}")
        return HttpResponse.error(
            exc.status,
            exc.error_type,
            str(exc),
            retry_after=jittered_retry_after(
                exc.retry_after, client, self.config.retry_jitter_seed
            ),
        )

    # ------------------------------------------------------------------
    # Live resharding
    # ------------------------------------------------------------------
    def _admin_reshard(self, body: bytes, client: str) -> HttpResponse:
        """``POST /admin/reshard {"shards": N}`` -- live fleet resize."""
        self.serving.increment("reshard_calls")
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            target = payload["shards"]
            if isinstance(target, bool) or not isinstance(target, int):
                raise TypeError("shards must be an integer")
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            self.serving.increment("bad_requests")
            return HttpResponse.error(
                400,
                "BadRequest",
                f'body must be JSON {{"shards": N}} with integer N: {exc}',
            )
        if target < 1:
            self.serving.increment("bad_requests")
            return HttpResponse.error(
                400, "BadRequest", "shards must be at least 1"
            )
        try:
            summary = self.reshard(target)
        except (ReshardInProgressError, ServerDrainingError) as exc:
            return self._admission_response(exc, client)
        except ShardBootError as exc:
            self.serving.increment("reshard_failures")
            return HttpResponse.error(
                503,
                "ShardBootError",
                f"reshard rolled back: {exc}",
                retry_after=jittered_retry_after(
                    SHARD_RETRY_AFTER, client, self.config.retry_jitter_seed
                ),
            )
        return HttpResponse.json(summary)

    def _admin_compact(self, client: str) -> HttpResponse:
        """``POST /admin/compact`` -- compact every shard's journal."""
        self.serving.increment("compact_calls")
        if not self.config.journal_path:
            return HttpResponse.error(
                409,
                "NoJournal",
                "this tier runs without journals; nothing to compact",
            )
        summary = self.compact_all()
        return HttpResponse.json(summary)

    def compact_all(self) -> Dict[str, Any]:
        """Fan the journal ``compact`` op out to every live shard.

        Per-shard, not transactional: each worker rewrites its own
        journal independently (crash-safe on its own), so one shard
        failing -- or dying mid-compaction under an armed chaos kill and
        coming back via ``call_with_retry``'s respawn path -- never
        blocks the others.  The reply carries a per-shard breakdown so
        operators can see exactly which slots reclaimed what.
        """

        shard_results: List[Dict[str, Any]] = []
        compacted = 0
        errors = 0
        reclaimed = 0
        for handle in list(self.supervisor.handles)[: self.shards]:
            entry: Dict[str, Any] = {"shard": handle.index}
            try:
                reply = self.supervisor.call_with_retry(
                    handle.index, "compact", timeout=120.0
                )
            except (ShardIPCError, ShardBootError, ShardOpError) as exc:
                entry["error"] = str(exc)
                errors += 1
            else:
                entry["compacted"] = bool(reply.get("compacted"))
                if reply.get("compacted"):
                    compacted += 1
                    entry["compact"] = reply.get("compact")
                    reclaimed += int(
                        (reply.get("compact") or {}).get("reclaimed_bytes")
                        or 0
                    )
                else:
                    entry["reason"] = reply.get("reason")
            shard_results.append(entry)
        self.serving.increment("compactions", compacted)
        return {
            "ok": errors == 0,
            "compacted": compacted,
            "errors": errors,
            "reclaimed_bytes": reclaimed,
            "shards": shard_results,
        }

    def reshard(
        self,
        new_count: int,
        phase_hook: Optional[Callable[[str, int], None]] = None,
    ) -> Dict[str, Any]:
        """Live-resize the fleet to ``new_count`` shards, two-phase.

        Phase one (**export**): every old slot surrenders the journaled
        completions it will not own under the target topology, grouped
        by their new owner.  A SIGKILLed exporter is respawned (its
        successor replays the journal) and re-asked via
        ``call_with_retry``; a slot that stays unreachable even then
        (e.g. quarantined mid-crash-loop) has its journal rescued
        straight off disk -- the kernel freed the dead worker's flock.
        Phase two (**import**): each receiving slot fsyncs the
        handed-off records into its own journal *before* the topology
        commits, so a moved key's next request replays byte-identically
        from its new owner.

        Throughout the window, dispatchers keep serving non-moving keys
        under the old topology (with retiring slots blocked from all
        routing) and park moving keys in the bounded pending queue --
        the tier never answers 500 for a parked key, only a jittered
        503 past the queue's bounds.  Growth boots the new slots before
        any handoff and rolls back on boot failure; shrink retires
        slots only after their records are safely imported, then
        unlinks their journal/cache files.  ``phase_hook(phase, shard)``
        is a test seam invoked at each step ("grow", "export",
        "import", "retire") -- chaos tests use it to kill the old owner
        mid-handoff or arm a disk fault on the successor mid-replay.
        """

        if new_count < 1:
            raise ValueError("shards must be at least 1")
        if not self._reshard_lock.acquire(blocking=False):
            raise ReshardInProgressError(
                "a reshard is already in progress; resizes are serial",
                retry_after=RESHARD_RETRY_AFTER,
            )
        try:
            if self.draining:
                raise ServerDrainingError(
                    "server is draining for shutdown",
                    retry_after=DRAIN_RETRY_AFTER,
                )
            old_count = self.shards
            if new_count == old_count:
                return {
                    "ok": True,
                    "from": old_count,
                    "to": new_count,
                    "noop": True,
                    "keys_moved": 0,
                    "exported": 0,
                    "imported": 0,
                    "duplicates": 0,
                    "rescued_slots": [],
                    "degraded_importers": [],
                    "parked_peak": 0,
                    "elapsed_seconds": 0.0,
                }
            self.log(f"resharding {old_count} -> {new_count} shard(s)")
            watch = Stopwatch()
            state = _ReshardState(
                old_count,
                new_count,
                self.reshard_pending_limit,
                self.reshard_max_wait,
            )
            self._resharding = state
            grew = False
            try:
                if new_count > old_count:
                    if phase_hook:
                        phase_hook("grow", new_count)
                    self.supervisor.grow_to(new_count)
                    grew = True
                groups: Dict[int, List[Dict[str, Any]]] = {}
                moved: set = set()
                exported = 0
                rescued_slots: List[Dict[str, Any]] = []
                # Every old slot exports: retiring slots surrender their
                # whole journal, survivors surrender strays they served
                # via fallback plus (on growth) keys claimed by new
                # slots.
                for index in range(old_count):
                    if phase_hook:
                        phase_hook("export", index)
                    try:
                        reply = self.supervisor.call_with_retry(
                            index,
                            "handoff_export",
                            to_shards=new_count,
                            timeout=120.0,
                        )
                        entries = [
                            entry
                            for per_owner in (reply.get("groups") or {}).values()
                            for entry in per_owner
                        ]
                    except ShardOpError:
                        raise
                    except (ShardIPCError, ShardBootError) as exc:
                        entries = self._rescue_slot_journal(
                            index, new_count, exc, rescued_slots
                        )
                    for entry in entries:
                        key = entry.get("key")
                        if not isinstance(key, str):
                            continue
                        groups.setdefault(
                            rendezvous_shard(key, new_count), []
                        ).append(entry)
                        if state.moving(key):
                            moved.add(key)
                        exported += 1
                imported = 0
                duplicates = 0
                degraded_importers: List[int] = []
                for owner in sorted(groups):
                    if phase_hook:
                        phase_hook("import", owner)
                    reply = self._import_with_recovery(
                        owner, groups[owner]
                    )
                    imported += int(reply.get("imported") or 0)
                    duplicates += int(reply.get("duplicates") or 0)
                    if reply.get("degraded"):
                        degraded_importers.append(owner)
                if new_count < old_count:
                    if phase_hook:
                        phase_hook("retire", new_count)
                    retired = self.supervisor.retire_to(
                        new_count, drain=False
                    )
                    for handle in retired:
                        self._unlink_slot_files(handle.index)
                self.shards = new_count
            except BaseException:
                if grew and self.supervisor.shard_count > old_count:
                    # Roll the fleet back to exactly what it was; the
                    # imports already fsync'd are harmless duplicates on
                    # the next attempt.
                    try:
                        for handle in self.supervisor.retire_to(
                            old_count, drain=False
                        ):
                            self._unlink_slot_files(handle.index)
                    except Exception as exc:
                        self.log(f"reshard rollback cleanup failed: {exc}")
                self.serving.increment("reshard_failures")
                raise
            finally:
                self._resharding = None
                state.done.set()
            summary = {
                "ok": True,
                "from": old_count,
                "to": new_count,
                "noop": False,
                "keys_moved": len(moved),
                "exported": exported,
                "imported": imported,
                "duplicates": duplicates,
                "rescued_slots": rescued_slots,
                "degraded_importers": degraded_importers,
                "parked_peak": state.parked_peak,
                "elapsed_seconds": round(watch.elapsed(), 3),
            }
            self.serving.increment("reshards_completed")
            self.serving.increment("keys_moved", len(moved))
            self._last_reshard = summary
            self.log(
                f"reshard {old_count} -> {new_count} complete: "
                f"{len(moved)} key(s) moved, {exported} exported, "
                f"{imported} imported, {duplicates} duplicate(s), "
                f"{summary['elapsed_seconds']}s"
            )
            return summary
        finally:
            self._reshard_lock.release()

    def _import_with_recovery(
        self, owner: int, entries: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Phase-two import, riding out a quarantined target slot.

        A SIGKILLed importer is already handled inside
        ``call_with_retry`` (respawn + retry); a *quarantined* one
        (crash-loop containment marked it ``failed``) raises fast, but
        the monitor re-admits it after ``failed_retry_interval`` -- so
        the handoff waits that window out and re-asks, rather than
        rolling back a whole reshard for a slot that is seconds from
        recovery.  Moved keys stay safely parked (bounded) meanwhile.
        """

        policy = self.supervisor.respawn_policy
        deadline = time.monotonic() + max(
            30.0, policy.failed_retry_interval * 3
        )
        while True:
            try:
                return self.supervisor.call_with_retry(
                    owner,
                    "handoff_import",
                    entries=entries,
                    timeout=120.0,
                )
            except ShardOpError:
                raise
            except (ShardIPCError, ShardBootError) as exc:
                if time.monotonic() >= deadline:
                    raise
                self.log(
                    f"handoff import target {shard_label(owner)} "
                    f"unavailable ({exc}); waiting for its recovery"
                )
                time.sleep(0.5)

    def _rescue_slot_journal(
        self,
        index: int,
        new_count: int,
        exc: Exception,
        rescued_slots: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Lift an unreachable exporter's journal straight off disk.

        Reached only after ``call_with_retry`` burned its respawn budget
        -- the slot has no live worker, so its flock is free.  A
        *retiring* slot is stopped outright first (it was leaving
        anyway); a surviving slot is left to the monitor's recovery
        path, and its file is read as-is.
        """

        config = shard_server_config(self.config, index)
        if not config.journal_path:
            rescued_slots.append(
                {"shard": index, "rescued": 0, "error": str(exc)}
            )
            return []
        handles = list(self.supervisor.handles)
        if index >= new_count and index < len(handles):
            handles[index].stop(drain=False)
        completions = read_journal_completions(config.journal_path)
        entries = [
            {"key": key, "record": record, "crc": record_crc(key, record)}
            for key, record in completions.items()
            if rendezvous_shard(key, new_count) != index
        ]
        self.log(
            f"{shard_label(index)} unreachable during handoff ({exc}); "
            f"rescued {len(entries)} journal record(s) off disk"
        )
        rescued_slots.append({"shard": index, "rescued": len(entries)})
        return entries

    def _unlink_slot_files(self, index: int) -> None:
        """Remove a retired slot's journal + cache files (post-import)."""
        config = shard_server_config(self.config, index)
        for path in (
            config.journal_path,
            shard_cache_file(self.cache_file, index),
        ):
            if path and os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError as unlink_exc:
                    self.log(
                        f"could not remove retired {path!r}: {unlink_exc}"
                    )


class ShardedServer:
    """The sharded daemon: HTTP listener + router + shard fleet.

    Mirrors :class:`~repro.server.app.ReproServer` (same start /
    serve_forever / shutdown-with-drain / context-manager surface) so
    the CLI and tests treat single-process and sharded tiers uniformly.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        shards: int = 2,
        cache_file: Optional[str] = None,
        start_method: Optional[str] = None,
        health_interval: float = 0.5,
        dispatch_attempts: int = 3,
        boot_timeout: float = 60.0,
        op_timeout: Optional[float] = 300.0,
        respawn_policy: Optional[RespawnPolicy] = None,
        hot_key_threshold: float = 32.0,
        hot_key_replicas: int = 2,
        hot_key_halflife: float = 10.0,
        reshard_pending_limit: int = 256,
        reshard_max_wait: float = 15.0,
    ):
        self.config = config or ServerConfig()
        self.app = ShardedApp(
            self.config,
            shards=shards,
            cache_file=cache_file,
            start_method=start_method,
            health_interval=health_interval,
            dispatch_attempts=dispatch_attempts,
            boot_timeout=boot_timeout,
            op_timeout=op_timeout,
            respawn_policy=respawn_policy,
            hot_key_threshold=hot_key_threshold,
            hot_key_replicas=hot_key_replicas,
            hot_key_halflife=hot_key_halflife,
            reshard_pending_limit=reshard_pending_limit,
            reshard_max_wait=reshard_max_wait,
        )
        # Boot the fleet before the listener: a tier that cannot serve
        # its keyspace must fail loudly instead of accepting requests.
        self.app.start()
        self.httpd = ReproHTTPServer(
            (self.config.host, self.config.port), self.app
        )
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self._drained = True

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ShardedServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-sharded",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        if self._stopped:
            return self._drained
        self._stopped = True
        drained = True
        if drain:
            self.app.begin_drain()
            drained = self.app.wait_idle(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()
        self._drained = drained
        return drained

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)
