"""Router <-> shard-worker IPC: framed JSON messages over a duplex pipe.

The transport is a :class:`multiprocessing.connection.Connection` pair
(created by ``multiprocessing.Pipe(duplex=True)``), which gives
length-prefixed byte framing, inheritance across ``fork`` *and* pickling
across ``spawn``, and -- crucially -- prompt ``EOFError``/``OSError`` on
peer death, which is how the router detects a SIGKILLed shard.

On top of the byte frames this module speaks **pure JSON** (never
pickle): every frame is one JSON object with an ``op`` and a monotonic
``seq``.  JSON keeps the wire format language-agnostic, diffable in
tests, and immune to pickle's arbitrary-code-on-load hazard; the
``seq`` echo lets the router detect a desynchronized reply stream after
a partial failure instead of silently mismatching responses.

All transport-level failures surface as :class:`ShardConnectionError`
(peer dead / pipe broken) or :class:`ShardTimeoutError` (peer alive but
unresponsive past a deadline) so the supervisor's respawn logic has
exactly two conditions to handle.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Framing protocol version, checked in the worker's hello frame.  Bump
#: on any message-shape change; a mismatch fails shard boot loudly
#: instead of desynchronizing the reply stream.
#: v2: reshard handoff ops (``handoff_export`` / ``handoff_import``).
#: v3: journal ``compact`` op + ``compact_kill`` chaos injection.
SHARD_IPC_VERSION = 3


class ShardIPCError(RuntimeError):
    """Base class for shard IPC failures."""


class ShardConnectionError(ShardIPCError):
    """The peer is gone: broken pipe, EOF, or closed connection.

    The router treats this as "the shard died" -- the transient,
    respawn-and-retry branch of the failure taxonomy.
    """


class ShardTimeoutError(ShardIPCError):
    """The peer did not answer within the allowed window."""


class ShardProtocolError(ShardIPCError):
    """The peer answered with a frame this build cannot understand."""


def send_message(conn: Any, message: Dict[str, Any]) -> None:
    """Send one JSON frame; raises :class:`ShardConnectionError` on death."""
    data = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    try:
        conn.send_bytes(data)
    except (BrokenPipeError, EOFError, OSError, ValueError) as exc:
        raise ShardConnectionError(f"peer gone during send: {exc!r}") from exc


def recv_message(
    conn: Any, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Receive one JSON frame.

    ``timeout=None`` blocks until a frame arrives or the peer dies;
    a finite timeout raises :class:`ShardTimeoutError` when it lapses
    with the peer still alive (the connection stays usable).
    """

    try:
        if timeout is not None and not conn.poll(timeout):
            raise ShardTimeoutError(
                f"no frame within {timeout:.3f}s (peer alive but silent)"
            )
        data = conn.recv_bytes()
    except ShardTimeoutError:
        raise
    except (BrokenPipeError, EOFError, OSError, ValueError) as exc:
        raise ShardConnectionError(f"peer gone during recv: {exc!r}") from exc
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ShardProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ShardProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def error_reply(seq: Any, exc: BaseException) -> Dict[str, Any]:
    """A structured failure frame a worker sends instead of dying."""
    return {
        "seq": seq,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
