"""repro: principle-based dataflow optimization for tensor accelerators.

A from-scratch Python reproduction of "Principle-based Dataflow
Optimization for Communication Lower Bound in Operator-Fused Tensor
Accelerator" (DAC 2025): the four optimization principles, the
communication lower bounds they imply, the FuseCU architecture (functional
simulators for the XS PE, systolic arrays and the fusion mappings),
searching-based DSE baselines, the paper's transformer workloads, and
harnesses regenerating every table and figure of the evaluation.

Quick start::

    from repro.ir import matmul
    from repro.core import optimize_intra

    op = matmul("bert_proj", 1024, 768, 768)
    result = optimize_intra(op, buffer_elems=512 * 1024)
    print(result.describe())

Subpackages
-----------
``repro.ir``          tensors, operators, operator graphs
``repro.dataflow``    tiling / scheduling / mapping + cost models
``repro.core``        Principles 1-4, fusion planning, lower bounds
``repro.search``      exhaustive + genetic DSE baselines (DAT stand-in)
``repro.arch``        XS PE, systolic/FuseCU simulators, platform models
``repro.workloads``   the seven Table II transformer models
``repro.experiments`` per-table/figure reproduction harnesses
``repro.service``     batch analysis engine (parallel + cached + metered)
"""

from . import arch, core, dataflow, experiments, ir, search, service, workloads

__version__ = "1.0.0"

__all__ = [
    "arch",
    "core",
    "dataflow",
    "experiments",
    "ir",
    "search",
    "service",
    "workloads",
    "__version__",
]
