"""repro: principle-based dataflow optimization for tensor accelerators.

A from-scratch Python reproduction of "Principle-based Dataflow
Optimization for Communication Lower Bound in Operator-Fused Tensor
Accelerator" (DAC 2025): the four optimization principles, the
communication lower bounds they imply, the FuseCU architecture (functional
simulators for the XS PE, systolic arrays and the fusion mappings),
searching-based DSE baselines, the paper's transformer workloads, and
harnesses regenerating every table and figure of the evaluation.

Quick start::

    from repro.ir import matmul
    from repro.core import optimize_intra

    op = matmul("bert_proj", 1024, 768, 768)
    result = optimize_intra(op, buffer_elems=512 * 1024)
    print(result.describe())

Subpackages
-----------
``repro.ir``          tensors, operators, operator graphs
``repro.dataflow``    tiling / scheduling / mapping + cost models
``repro.core``        Principles 1-4, fusion planning, lower bounds
``repro.search``      exhaustive + genetic DSE baselines (DAT stand-in)
``repro.arch``        XS PE, systolic/FuseCU simulators, platform models
``repro.workloads``   the seven Table II transformer models
``repro.experiments`` per-table/figure reproduction harnesses
``repro.service``     batch analysis engine (parallel + cached + metered)
``repro.server``      HTTP serving daemon + client over the batch engine
"""

# Version is defined before the subpackage imports so that subpackages
# (e.g. repro.server.protocol) can read it during package initialization.
__version__ = "1.1.0"

from . import (  # noqa: E402
    arch,
    core,
    dataflow,
    experiments,
    ir,
    search,
    server,
    service,
    workloads,
)

__all__ = [
    "arch",
    "core",
    "dataflow",
    "experiments",
    "ir",
    "search",
    "server",
    "service",
    "workloads",
    "__version__",
]
