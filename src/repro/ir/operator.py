"""Tensor operators expressed as perfectly nested loop programs.

Every tensor operator in this library is modeled the way the paper models
them (Sec. III): as a perfect loop nest over named *loop dimensions*, where
each tensor operand is indexed by a subset of those dimensions.  Matrix
multiplication ``A[M,K] x B[K,L] = C[M,L]`` is the canonical example::

    for m in range(M):
      for l in range(L):
        for k in range(K):
          C[m, l] += A[m, k] * B[k, l]

The analytical memory-access model in :mod:`repro.dataflow.cost` only needs:

* the loop dimension names and extents (``dims``),
* which dimensions index each tensor (``indexing``),
* which dimensions are reductions (``reduction_dims``) -- these determine
  whether an output tensor accumulates partial sums.

Operators also carry an optional ``count`` multiplier: the number of
identical instances executed back-to-back (e.g. per-head attention matrix
multiplications repeated ``batch * heads`` times).  A repeated operator has
``count``-times the memory traffic and MACs of a single instance; this is
exact when no operand is reused across instances, which holds for all the
repeated operators in the paper's transformer workloads (activation x
activation products).  Weight-sharing operators (projections) fold the batch
into the M dimension instead, which is also exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple

from .tensor import Tensor


class InvalidWorkloadError(ValueError):
    """Raised for structurally invalid workloads.

    Covers zero/negative/NaN loop extents, non-integer sizes, and
    non-positive buffer budgets -- anything that makes the *request*
    unanswerable regardless of how often it is retried.  The service
    layer maps this to its permanent-error category
    (:mod:`repro.service.errors`), so malformed batch requests fail
    loud, exactly once, and are journaled as permanent.
    """


class OperatorError(InvalidWorkloadError):
    """Raised for malformed operator definitions."""


def validate_buffer_elems(buffer_elems: object) -> int:
    """Validate a buffer budget at the ir/core boundary.

    Accepts positive integers (and integral floats, which are common when
    budgets arrive from JSON); rejects booleans, NaN/inf, fractional sizes,
    and non-positive values with :class:`InvalidWorkloadError`.
    """

    if isinstance(buffer_elems, bool):
        raise InvalidWorkloadError(
            f"buffer size must be an integer, got {buffer_elems!r}"
        )
    if isinstance(buffer_elems, float):
        if not math.isfinite(buffer_elems) or buffer_elems != int(buffer_elems):
            raise InvalidWorkloadError(
                f"buffer size must be an integer, got {buffer_elems!r}"
            )
        buffer_elems = int(buffer_elems)
    if not isinstance(buffer_elems, int):
        raise InvalidWorkloadError(
            f"buffer size must be an integer, got {type(buffer_elems).__name__}"
        )
    if buffer_elems <= 0:
        raise InvalidWorkloadError("buffer size must be positive")
    return buffer_elems


@dataclass(frozen=True)
class TensorOperator:
    """A generic tensor operator as a perfect loop nest.

    Parameters
    ----------
    name:
        Unique name within a graph.
    dims:
        Mapping of loop-dimension name to extent, e.g. ``{"M": 1024,
        "K": 768, "L": 768}``.  Iteration order of this mapping is the
        canonical (but not prescriptive) loop order.
    inputs:
        Input tensors.
    output:
        The single output tensor.
    indexing:
        For every tensor (by name), the ordered tuple of loop dimensions
        indexing it.  The projected extents must match the tensor's shape.
    reduction_dims:
        Loop dimensions that are reduced over (do not index the output).
    count:
        Number of identical instances of this operator (>= 1).
    flops_per_point:
        Arithmetic operations per innermost loop iteration (2 for a
        multiply-accumulate).
    """

    name: str
    dims: Mapping[str, int]
    inputs: Tuple[Tensor, ...]
    output: Tensor
    indexing: Mapping[str, Tuple[str, ...]]
    reduction_dims: FrozenSet[str] = frozenset()
    count: int = 1
    flops_per_point: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", dict(self.dims))
        object.__setattr__(self, "indexing", dict(self.indexing))
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if not self.name:
            raise OperatorError("operator name must be non-empty")
        if not self.dims:
            raise OperatorError(f"operator {self.name!r} needs at least one loop dim")
        for dim, extent in self.dims.items():
            if isinstance(extent, bool) or not isinstance(extent, int) or extent <= 0:
                raise OperatorError(
                    f"operator {self.name!r} dim {dim!r} has invalid extent {extent!r}"
                )
        if self.count < 1:
            raise OperatorError(f"operator {self.name!r} count must be >= 1")
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise OperatorError(f"operator {self.name!r} has duplicate tensor names")
        for tensor in self.tensors:
            if tensor.name not in self.indexing:
                raise OperatorError(
                    f"operator {self.name!r} missing indexing for tensor {tensor.name!r}"
                )
            index_dims = self.indexing[tensor.name]
            if len(index_dims) != tensor.rank:
                raise OperatorError(
                    f"operator {self.name!r}: tensor {tensor.name!r} has rank "
                    f"{tensor.rank} but indexing {index_dims}"
                )
            for axis, dim in enumerate(index_dims):
                if dim not in self.dims:
                    raise OperatorError(
                        f"operator {self.name!r}: unknown dim {dim!r} indexing "
                        f"{tensor.name!r}"
                    )
                if tensor.shape[axis] != self.dims[dim]:
                    raise OperatorError(
                        f"operator {self.name!r}: tensor {tensor.name!r} axis {axis} "
                        f"extent {tensor.shape[axis]} != dim {dim!r} extent "
                        f"{self.dims[dim]}"
                    )
        bad_reductions = set(self.reduction_dims) - set(self.dims)
        if bad_reductions:
            raise OperatorError(
                f"operator {self.name!r}: unknown reduction dims {sorted(bad_reductions)}"
            )
        out_dims = set(self.indexing[self.output.name])
        overlap = out_dims & set(self.reduction_dims)
        if overlap:
            raise OperatorError(
                f"operator {self.name!r}: reduction dims {sorted(overlap)} must not "
                "index the output"
            )

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    @property
    def tensors(self) -> Tuple[Tensor, ...]:
        """All operand tensors (inputs followed by the output)."""
        return self.inputs + (self.output,)

    def tensor(self, name: str) -> Tensor:
        """Look up an operand tensor by name."""
        for tensor in self.tensors:
            if tensor.name == name:
                return tensor
        raise KeyError(f"operator {self.name!r} has no tensor {name!r}")

    def dims_of(self, tensor_name: str) -> Tuple[str, ...]:
        """Loop dimensions indexing the named tensor."""
        return self.indexing[tensor_name]

    def tensors_with_dim(self, dim: str) -> Tuple[Tensor, ...]:
        """All operand tensors indexed by loop dimension ``dim``."""
        return tuple(
            tensor for tensor in self.tensors if dim in self.indexing[tensor.name]
        )

    @property
    def dim_names(self) -> Tuple[str, ...]:
        return tuple(self.dims)

    @property
    def iteration_space(self) -> int:
        """Number of points in the full loop nest (one instance)."""
        return math.prod(self.dims.values())

    @property
    def macs(self) -> int:
        """Multiply-accumulate count, including the ``count`` multiplier."""
        return self.iteration_space * self.count

    @property
    def flops(self) -> int:
        return self.macs * self.flops_per_point

    @property
    def smallest_dim(self) -> str:
        """Name of the smallest loop dimension (ties broken by order)."""
        return min(self.dims, key=lambda dim: (self.dims[dim], self.dim_names.index(dim)))

    @property
    def smallest_tensor(self) -> Tensor:
        """The smallest operand tensor (ties broken by operand order)."""
        return min(self.tensors, key=lambda tensor: tensor.size)

    def ideal_memory_access(self) -> int:
        """Lower bound with infinite buffer: every tensor touched exactly once."""
        return self.count * sum(tensor.size for tensor in self.tensors)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(f"{d}={e}" for d, e in self.dims.items())
        suffix = f" x{self.count}" if self.count > 1 else ""
        return f"{type(self).__name__}({self.name}: {dims}){suffix}"


# ----------------------------------------------------------------------
# Concrete operator constructors
# ----------------------------------------------------------------------
def matmul(
    name: str,
    m: int,
    k: int,
    l: int,
    a: Optional[Tensor] = None,
    b: Optional[Tensor] = None,
    c: Optional[Tensor] = None,
    count: int = 1,
    dtype_bytes: int = 1,
) -> TensorOperator:
    """Build a matrix-multiplication operator ``A[M,K] x B[K,L] = C[M,L]``.

    Existing :class:`Tensor` objects may be passed for any operand so that a
    producer's output can be re-used as a consumer's input when building
    fusion chains; otherwise fresh tensors named ``{name}.A`` etc. are
    created.
    """

    a = a if a is not None else Tensor(f"{name}.A", (m, k), dtype_bytes)
    b = b if b is not None else Tensor(f"{name}.B", (k, l), dtype_bytes)
    c = c if c is not None else Tensor(f"{name}.C", (m, l), dtype_bytes)
    if a.shape != (m, k):
        raise OperatorError(f"matmul {name!r}: A shape {a.shape} != ({m}, {k})")
    if b.shape != (k, l):
        raise OperatorError(f"matmul {name!r}: B shape {b.shape} != ({k}, {l})")
    if c.shape != (m, l):
        raise OperatorError(f"matmul {name!r}: C shape {c.shape} != ({m}, {l})")
    return TensorOperator(
        name=name,
        dims={"M": m, "K": k, "L": l},
        inputs=(a, b),
        output=c,
        indexing={a.name: ("M", "K"), b.name: ("K", "L"), c.name: ("M", "L")},
        reduction_dims=frozenset({"K"}),
        count=count,
    )


def elementwise(
    name: str,
    source: Tensor,
    output: Optional[Tensor] = None,
    count: int = 1,
    flops_per_point: int = 1,
) -> TensorOperator:
    """Build a pointwise unary operator over ``source`` (e.g. activation).

    The loop dims are named ``E0, E1, ...`` matching the tensor's axes.
    """

    output = output if output is not None else Tensor(
        f"{name}.out", source.shape, source.dtype_bytes
    )
    if output.shape != source.shape:
        raise OperatorError(
            f"elementwise {name!r}: output shape {output.shape} != {source.shape}"
        )
    dims = {f"E{i}": extent for i, extent in enumerate(source.shape)}
    axes = tuple(dims)
    return TensorOperator(
        name=name,
        dims=dims,
        inputs=(source,),
        output=output,
        indexing={source.name: axes, output.name: axes},
        reduction_dims=frozenset(),
        count=count,
        flops_per_point=flops_per_point,
    )


def rowwise_softmax(
    name: str,
    source: Tensor,
    output: Optional[Tensor] = None,
    count: int = 1,
) -> TensorOperator:
    """Build a row-wise softmax over a rank-2 tensor.

    Softmax normalizes each row independently; its loop nest is the same
    elementwise sweep over ``(rows, cols)`` with a few extra flops per point
    (exp, subtract-max, divide).  The paper's FuseCU keeps a dedicated
    softmax unit next to the array; for the memory-traffic model the relevant
    fact is that softmax reads and writes its tensor exactly once and fuses
    freely into an attention chain.
    """

    if source.rank != 2:
        raise OperatorError(f"softmax {name!r} expects a rank-2 tensor")
    operator = elementwise(name, source, output, count=count, flops_per_point=5)
    return operator


def batched_matmul(
    name: str,
    batch: int,
    m: int,
    k: int,
    l: int,
    dtype_bytes: int = 1,
) -> TensorOperator:
    """Build a batch of independent matmuls as a ``count`` multiplier.

    This models per-head attention products: no operand is shared across
    batch instances, so traffic and MACs scale linearly and the per-instance
    dataflow analysis is unchanged.
    """

    return matmul(name, m, k, l, count=batch, dtype_bytes=dtype_bytes)
