"""Convolution operators, im2col-lowered to the MM analysis.

The paper's principles are stated for operators whose tensors are indexed
by subsets of the loop dimensions; a sliding-window convolution's input is
indexed by *sums* of dimensions (``h = p*stride + r``), which that model
cannot express directly.  The standard analytical treatment -- and what
spatial accelerators with im2col front-ends physically do -- is to lower
the convolution to a matrix multiplication over the im2col matrix:

    O[N*P*Q, K] = Im2col[N*P*Q, C*R*S] x W[C*R*S, K]

The im2col matrix is ``R*S / (stride_h*stride_w)`` times larger than the
raw input (window overlap duplicates elements); accelerators that expand
it on the fly from a line buffer avoid re-reading DRAM for the duplicates.
Both accountings are provided:

* :func:`conv2d_as_matmul` -- the im2col MM, with the duplicated input
  (worst case / explicit-im2col hardware);
* :attr:`Conv2DShape.input_traffic_correction` -- the factor to divide the
  A-tensor traffic by for on-the-fly expansion (best case).

Batch ``N`` folds into the M dimension (the filter is shared across the
batch), exactly like the transformer projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .operator import OperatorError, TensorOperator, matmul
from .tensor import Tensor


@dataclass(frozen=True)
class Conv2DShape:
    """Geometry of a 2-D convolution layer."""

    batch: int
    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for name in (
            "batch",
            "in_channels",
            "height",
            "width",
            "out_channels",
            "kernel_h",
            "kernel_w",
            "stride",
        ):
            if getattr(self, name) <= 0:
                raise OperatorError(f"conv2d {name} must be positive")
        if self.padding < 0:
            raise OperatorError("conv2d padding must be non-negative")
        if self.out_height <= 0 or self.out_width <= 0:
            raise OperatorError(
                f"conv2d output collapses: {self.out_height}x{self.out_width}"
            )

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.padding - self.kernel_h) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.width + 2 * self.padding - self.kernel_w) // self.stride + 1

    # ------------------------------------------------------------------
    # im2col MM dimensions
    # ------------------------------------------------------------------
    @property
    def gemm_m(self) -> int:
        """Output spatial points (batch folded in)."""
        return self.batch * self.out_height * self.out_width

    @property
    def gemm_k(self) -> int:
        """Reduction: input channels x kernel window."""
        return self.in_channels * self.kernel_h * self.kernel_w

    @property
    def gemm_l(self) -> int:
        """Output channels."""
        return self.out_channels

    @property
    def macs(self) -> int:
        return self.gemm_m * self.gemm_k * self.gemm_l

    @property
    def raw_input_size(self) -> int:
        """Elements of the un-duplicated input activation."""
        return self.batch * self.in_channels * self.height * self.width

    @property
    def im2col_size(self) -> int:
        """Elements of the expanded im2col matrix."""
        return self.gemm_m * self.gemm_k

    @property
    def input_traffic_correction(self) -> float:
        """Divide the im2col A-traffic by this for on-the-fly expansion.

        Equals the duplication factor ``im2col_size / raw_input_size``
        (ignoring padding rows, a second-order effect).
        """

        return self.im2col_size / self.raw_input_size


def conv2d_as_matmul(
    name: str,
    shape: Conv2DShape,
    count: int = 1,
    dtype_bytes: int = 1,
) -> TensorOperator:
    """Lower a convolution to its im2col matrix multiplication."""
    return matmul(
        name,
        shape.gemm_m,
        shape.gemm_k,
        shape.gemm_l,
        count=count,
        dtype_bytes=dtype_bytes,
    )


def conv2d(
    name: str,
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    count: int = 1,
) -> Tuple[TensorOperator, Conv2DShape]:
    """Convenience wrapper: build shape + lowered operator together."""
    shape = Conv2DShape(
        batch=batch,
        in_channels=in_channels,
        height=height,
        width=width,
        out_channels=out_channels,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        padding=padding,
    )
    return conv2d_as_matmul(name, shape, count=count), shape
