"""Einsum-notation front end for building tensor operators.

Sugar over :class:`~repro.ir.operator.TensorOperator`: a contraction spec
like ``"mk,kl->ml"`` plus dimension sizes yields the operator the
principle engines consume.  Only the subset matching the analytical model
is supported -- each subscript letter is one loop dimension, every operand
is indexed by a plain subset of them (no diagonals/repeats within one
operand, no broadcasting, no ellipsis).

Examples
--------
>>> op = einsum_operator("mm", "mk,kl->ml", {"m": 64, "k": 32, "l": 48})
>>> op.reduction_dims == frozenset({"k"})
True
>>> bmm = einsum_operator("bmm", "bmk,kl->bml", {"b": 4, "m": 8, "k": 6, "l": 5})
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from .operator import OperatorError, TensorOperator
from .tensor import Tensor


def _parse(spec: str) -> Tuple[List[str], str]:
    if "->" not in spec:
        raise OperatorError(f"einsum spec {spec!r} needs an explicit '->'")
    lhs, output = spec.split("->")
    inputs = [term.strip() for term in lhs.split(",")]
    output = output.strip()
    if not inputs or any(not term for term in inputs) or not output:
        raise OperatorError(f"malformed einsum spec {spec!r}")
    for term in inputs + [output]:
        if not term.isalpha():
            raise OperatorError(
                f"einsum term {term!r} must be letters only (no ellipsis)"
            )
        if len(set(term)) != len(term):
            raise OperatorError(
                f"einsum term {term!r} repeats a subscript (diagonals are "
                "not in the analytical model)"
            )
    return inputs, output


def einsum_operator(
    name: str,
    spec: str,
    sizes: Mapping[str, int],
    count: int = 1,
    dtype_bytes: int = 1,
) -> TensorOperator:
    """Build a :class:`TensorOperator` from einsum notation.

    Parameters
    ----------
    name:
        Operator name; operand tensors are named ``{name}.in0``, ... and
        ``{name}.out``.
    spec:
        Contraction such as ``"mk,kl->ml"``.
    sizes:
        Extent of every subscript appearing in the spec.
    """

    input_terms, output_term = _parse(spec)
    letters: List[str] = []
    for term in input_terms + [output_term]:
        for letter in term:
            if letter not in letters:
                letters.append(letter)
    missing = [letter for letter in letters if letter not in sizes]
    if missing:
        raise OperatorError(f"einsum spec {spec!r} missing sizes for {missing}")
    unknown_output = set(output_term) - {
        letter for term in input_terms for letter in term
    }
    if unknown_output:
        raise OperatorError(
            f"output subscripts {sorted(unknown_output)} never appear in inputs"
        )
    dims: Dict[str, int] = {letter: int(sizes[letter]) for letter in letters}
    inputs = tuple(
        Tensor(
            f"{name}.in{i}",
            tuple(dims[letter] for letter in term),
            dtype_bytes,
        )
        for i, term in enumerate(input_terms)
    )
    output = Tensor(
        f"{name}.out", tuple(dims[letter] for letter in output_term), dtype_bytes
    )
    indexing = {
        tensor.name: tuple(term)
        for tensor, term in zip(inputs, input_terms)
    }
    indexing[output.name] = tuple(output_term)
    reduction = frozenset(set(letters) - set(output_term))
    return TensorOperator(
        name=name,
        dims=dims,
        inputs=inputs,
        output=output,
        indexing=indexing,
        reduction_dims=reduction,
        count=count,
    )
