"""Operator graphs: DAGs of tensor operators connected by shared tensors.

A graph owns a set of operators; an edge exists from producer ``p`` to
consumer ``q`` whenever ``p.output`` is one of ``q.inputs`` (the *same*
:class:`~repro.ir.tensor.Tensor` object / name).  Tensors produced by one
operator and consumed by another are *intermediate* tensors; these are the
fusion candidates, because a fused dataflow can keep them on-chip and elide
their memory traffic entirely (paper Fig. 1).

The graph also identifies *chains*: maximal linear producer/consumer runs
whose intermediate tensors have exactly one consumer.  Operator fusion in
the paper (and in this library's :mod:`repro.core.graph_optimizer`) is
applied along such chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .operator import TensorOperator
from .tensor import Tensor


class GraphError(ValueError):
    """Raised for malformed operator graphs."""


@dataclass
class OperatorGraph:
    """A DAG of tensor operators.

    Operators are added with :meth:`add`; edges are inferred from tensor
    names shared between one operator's output and another's inputs.
    """

    name: str = "graph"
    _operators: Dict[str, TensorOperator] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, operator: TensorOperator) -> TensorOperator:
        """Add an operator; returns it for chaining."""
        if operator.name in self._operators:
            raise GraphError(f"duplicate operator name {operator.name!r}")
        producer = self._producer_of(operator.output.name)
        if producer is not None:
            raise GraphError(
                f"tensor {operator.output.name!r} already produced by "
                f"{producer.name!r}"
            )
        self._operators[operator.name] = operator
        return operator

    def extend(self, operators: Iterable[TensorOperator]) -> None:
        for operator in operators:
            self.add(operator)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def operators(self) -> Tuple[TensorOperator, ...]:
        return tuple(self._operators.values())

    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self) -> Iterator[TensorOperator]:
        return iter(self._operators.values())

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def operator(self, name: str) -> TensorOperator:
        try:
            return self._operators[name]
        except KeyError:
            raise GraphError(f"no operator named {name!r}") from None

    def _producer_of(self, tensor_name: str) -> Optional[TensorOperator]:
        for operator in self._operators.values():
            if operator.output.name == tensor_name:
                return operator
        return None

    def producer(self, tensor_name: str) -> Optional[TensorOperator]:
        """The operator producing the named tensor, or ``None`` if external."""
        return self._producer_of(tensor_name)

    def consumers(self, tensor_name: str) -> Tuple[TensorOperator, ...]:
        """All operators consuming the named tensor."""
        return tuple(
            operator
            for operator in self._operators.values()
            if any(tensor.name == tensor_name for tensor in operator.inputs)
        )

    def successors(self, operator: TensorOperator) -> Tuple[TensorOperator, ...]:
        return self.consumers(operator.output.name)

    def predecessors(self, operator: TensorOperator) -> Tuple[TensorOperator, ...]:
        result = []
        for tensor in operator.inputs:
            producer = self._producer_of(tensor.name)
            if producer is not None:
                result.append(producer)
        return tuple(result)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def intermediate_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors produced by one operator and consumed by another."""
        result = []
        for operator in self._operators.values():
            if self.consumers(operator.output.name):
                result.append(operator.output)
        return tuple(result)

    def external_tensors(self) -> Tuple[Tensor, ...]:
        """Graph inputs (never produced) and outputs (never consumed)."""
        produced = {op.output.name for op in self._operators.values()}
        seen: Dict[str, Tensor] = {}
        for operator in self._operators.values():
            for tensor in operator.inputs:
                if tensor.name not in produced:
                    seen.setdefault(tensor.name, tensor)
            if not self.consumers(operator.output.name):
                seen.setdefault(operator.output.name, operator.output)
        return tuple(seen.values())

    def topological_order(self) -> Tuple[TensorOperator, ...]:
        """Operators in dependency order; raises on cycles."""
        in_degree = {op.name: len(self.predecessors(op)) for op in self}
        ready = [op for op in self if in_degree[op.name] == 0]
        ordered: List[TensorOperator] = []
        while ready:
            operator = ready.pop(0)
            ordered.append(operator)
            for successor in self.successors(operator):
                in_degree[successor.name] -= 1
                if in_degree[successor.name] == 0:
                    ready.append(successor)
        if len(ordered) != len(self._operators):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return tuple(ordered)

    def chains(self) -> Tuple[Tuple[TensorOperator, ...], ...]:
        """Maximal linear chains along single-consumer intermediate tensors.

        A chain is a sequence ``op_1 -> op_2 -> ... -> op_n`` where each
        ``op_i.output`` is consumed only by ``op_{i+1}`` and operators with
        repeated instances (``count``) match their neighbor's count (fusing
        operators with different repetition factors is not meaningful).
        Every operator appears in exactly one chain (possibly of length 1).

        Behavior at branch points (deliberate, and relied on by
        :mod:`repro.plan` as its fallback decomposition):

        * **Fan-out** -- an output with two or more consumers ends the
          chain at its producer; every consumer starts (or continues)
          its own chain.  The fan-out tensor is never elidable by
          fusion, so truncating there loses nothing a chain planner
          could have used.
        * **Join** -- an operator drawing produced inputs from more than
          one producer starts its own chain, even when one incoming edge
          is a single-consumer link: a linear chain cannot contain both
          producers, and this detector refuses to pick a side.  DAG-level
          planners (:func:`repro.plan.partition.plan_dag`) relax exactly
          this rule by *choosing* one in-link per join.
        * **Count mismatch** -- neighbors with different repetition
          factors never link, regardless of consumer multiplicity.

        The decomposition is deterministic: operators are visited in
        :meth:`topological_order` (itself deterministic -- Kahn's
        algorithm over insertion order), so identical graphs always
        yield identical chain tuples.
        """

        def links_to(a: TensorOperator, b: TensorOperator) -> bool:
            consumers = self.consumers(a.output.name)
            return (
                len(consumers) == 1
                and consumers[0] is b
                and a.count == b.count
            )

        ordered = self.topological_order()
        assigned: Set[str] = set()
        chains: List[Tuple[TensorOperator, ...]] = []
        for operator in ordered:
            if operator.name in assigned:
                continue
            chain = [operator]
            assigned.add(operator.name)
            current = operator
            while True:
                nexts = [
                    successor
                    for successor in self.successors(current)
                    if successor.name not in assigned and links_to(current, successor)
                ]
                if len(nexts) != 1:
                    break
                following = nexts[0]
                # The follower must draw all its produced inputs from the chain,
                # otherwise it belongs to a join and starts its own chain.
                produced_inputs = [
                    tensor
                    for tensor in following.inputs
                    if self._producer_of(tensor.name) is not None
                ]
                if any(
                    self._producer_of(tensor.name) is not current
                    for tensor in produced_inputs
                ):
                    break
                chain.append(following)
                assigned.add(following.name)
                current = following
            chains.append(tuple(chain))
        return tuple(chains)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        return sum(operator.macs for operator in self)

    def ideal_memory_access(self) -> int:
        """Infinite-buffer lower bound: external tensors once, intermediates free.

        With unlimited on-chip storage intermediates never travel to memory,
        so only graph inputs and outputs are counted (scaled by operator
        repetition counts where they are per-instance operands).
        """

        produced = {op.output.name for op in self._operators.values()}
        total = 0
        for operator in self:
            for tensor in operator.inputs:
                if tensor.name not in produced:
                    total += tensor.size * operator.count
            if not self.consumers(operator.output.name):
                total += operator.output.size * operator.count
        return total
