"""Tensor-operator intermediate representation.

The IR layer provides the vocabulary every other subsystem builds on:

* :class:`~repro.ir.tensor.Tensor` -- shaped, named tensor placeholders.
* :class:`~repro.ir.operator.TensorOperator` -- operators as perfect loop
  nests (with :func:`~repro.ir.operator.matmul` and friends as constructors).
* :class:`~repro.ir.graph.OperatorGraph` -- DAGs of operators, the unit the
  fusion optimizer partitions.
* :class:`~repro.ir.loopnest.TiledLoop` / :class:`~repro.ir.loopnest.LoopNest`
  -- tiled-loop primitives consumed by the cost models.
"""

from .tensor import Tensor, matrix
from .operator import (
    InvalidWorkloadError,
    OperatorError,
    TensorOperator,
    batched_matmul,
    elementwise,
    matmul,
    rowwise_softmax,
    validate_buffer_elems,
)
from .conv import Conv2DShape, conv2d, conv2d_as_matmul
from .einsum import einsum_operator
from .graph import GraphError, OperatorGraph
from .loopnest import LoopNest, TiledLoop

__all__ = [
    "einsum_operator",
    "Conv2DShape",
    "conv2d",
    "conv2d_as_matmul",
    "Tensor",
    "matrix",
    "TensorOperator",
    "InvalidWorkloadError",
    "OperatorError",
    "validate_buffer_elems",
    "matmul",
    "batched_matmul",
    "elementwise",
    "rowwise_softmax",
    "OperatorGraph",
    "GraphError",
    "LoopNest",
    "TiledLoop",
]
