"""Tensor objects for the operator IR.

A :class:`Tensor` is a named, shaped multidimensional array *placeholder*: it
carries no data, only the metadata the analytical dataflow models need (name,
shape, element width).  Operators bind tensors to their loop dimensions, and
operator graphs use shared tensor objects to express producer/consumer
relationships (the "intermediate tensors" that operator fusion elides from
memory traffic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Tensor:
    """A named tensor placeholder.

    Parameters
    ----------
    name:
        Unique name within an operator graph.  Operators refer to tensors by
        identity, but the name is used in reports and error messages.
    shape:
        Tuple of positive dimension sizes.
    dtype_bytes:
        Element width in bytes.  The paper's buffer-size arithmetic treats
        buffer capacity in *elements* (an int8 design), so the default is 1;
        architecture models may override it.
    """

    name: str
    shape: Tuple[int, ...]
    dtype_bytes: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have at least one dimension")
        for extent in self.shape:
            if not isinstance(extent, int) or extent <= 0:
                raise ValueError(
                    f"tensor {self.name!r} has invalid shape {self.shape}; "
                    "all extents must be positive integers"
                )
        if self.dtype_bytes <= 0:
            raise ValueError(f"tensor {self.name!r} dtype_bytes must be positive")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def bytes(self) -> int:
        """Total footprint in bytes."""
        return self.size * self.dtype_bytes

    def with_name(self, name: str) -> "Tensor":
        """Return a copy of this tensor under a different name."""
        return Tensor(name=name, shape=self.shape, dtype_bytes=self.dtype_bytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(extent) for extent in self.shape)
        return f"{self.name}[{dims}]"


def matrix(name: str, rows: int, cols: int, dtype_bytes: int = 1) -> Tensor:
    """Convenience constructor for a rank-2 tensor."""
    return Tensor(name=name, shape=(rows, cols), dtype_bytes=dtype_bytes)
