"""Tiled loop-nest primitives shared by the dataflow cost models.

A *tiled loop* walks one loop dimension in steps of its tile size; its trip
count is ``ceil(extent / tile)``.  A loop whose tile equals the dimension
extent is *untiled* (trip count 1) and is degenerate for reuse analysis: it
never forces a re-fetch of anything, which is exactly why the paper's
Two-/Three-NRA dataflows untile dimensions to grow the set of
non-redundantly accessed tensors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TiledLoop:
    """One level of a tiled loop nest.

    Parameters
    ----------
    dim:
        Loop dimension name.
    extent:
        Full dimension size.
    tile:
        Tile size (step of this loop), ``1 <= tile <= extent``.
    """

    dim: str
    extent: int
    tile: int

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"loop {self.dim!r}: extent must be positive")
        if not 1 <= self.tile <= self.extent:
            raise ValueError(
                f"loop {self.dim!r}: tile {self.tile} out of range [1, {self.extent}]"
            )

    @property
    def trip(self) -> int:
        """Number of iterations (tiles visited)."""
        return math.ceil(self.extent / self.tile)

    @property
    def untiled(self) -> bool:
        """True when the whole dimension fits in one tile (trip == 1)."""
        return self.trip == 1


@dataclass(frozen=True)
class LoopNest:
    """An ordered (outermost first) sequence of tiled loops."""

    loops: Tuple[TiledLoop, ...]

    def __post_init__(self) -> None:
        names = [loop.dim for loop in self.loops]
        if len(set(names)) != len(names):
            raise ValueError(f"loop nest repeats a dimension: {names}")

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def loop(self, dim: str) -> TiledLoop:
        for candidate in self.loops:
            if candidate.dim == dim:
                return candidate
        raise KeyError(f"no loop over dim {dim!r}")

    @property
    def dims(self) -> Tuple[str, ...]:
        return tuple(loop.dim for loop in self.loops)

    @property
    def total_trips(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.trip
        return total
