"""Deterministic chaos timelines: seeded fault schedules for the tier.

A *timeline* is an ordered list of :class:`ChaosEvent` -- each one fault
applied to one shard slot at one offset into a soak.  Timelines come
from two places and round-trip through one grammar:

* :func:`generate_timeline` derives a timeline from ``(seed, shards,
  duration, profile)`` with ``random.Random(seed)`` -- the same seed
  always produces the same schedule, byte for byte, so a chaos failure
  reproduces with nothing but its seed.
* :func:`parse_timeline` reads hand-written schedules in the same
  grammar that :func:`format_event` emits::

      action@seconds:shard=I[:duration=S][:count=N][:mode=M]

  joined by ``;``, e.g.
  ``kill@2.0:shard=1;journal_fault@5.0:shard=2:mode=enospc``.

Actions
-------
``kill``
    SIGKILL the slot's current worker ``count`` times (waiting for the
    respawn between kills).
``crashloop``
    Kill the slot's worker every time it comes back until the
    supervisor's crash-loop containment quarantines the slot
    (``count=0``) or ``count`` kills have landed.
``stall``
    SIGSTOP the worker for ``duration`` seconds, then SIGCONT whatever
    is left of it (escalation may have SIGKILLed it first).
``journal_fault``
    Arm a one-shot journal write fault (``mode`` = ``enospc`` / ``eio``)
    inside the worker via the guarded ``chaos`` IPC op.
``corrupt``
    Flip bytes in the slot's on-disk journal (``mode`` = ``mid`` -- a
    record in the middle, ``tail`` -- a torn partial append, ``header``
    -- the header line), then SIGKILL the worker so its successor must
    replay through the damage: quarantine the corrupt record (mid),
    truncate the torn tail (tail), or quarantine the whole file and
    restart (header) -- never serve a corrupted byte.
``kill_compact``
    Arm a ``compact_kill`` inside the worker (via the guarded ``chaos``
    IPC op) and trigger a journal compaction: the worker SIGKILLs
    itself mid-rewrite and the successor must replay a fully valid
    journal -- old or new, never a torn hybrid.
``ipc_delay``
    Slow the slot's router-side pipe by ``duration`` seconds per call
    for ``count`` seconds of wall clock.
``resize``
    Live-reshard the tier to ``shards`` slots (``POST /admin/reshard``
    semantics: two-phase journal handoff, byte-identical service).  A
    *tier* action -- it takes no ``shard=`` operand.
``hotspot``
    Burst ``count`` single-payload requests for grid key ``key``,
    driving the router's hot-key detector over its threshold so the
    read-any replica path is exercised.  Also a tier action.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..service.journal import JOURNAL_FAULT_MODES

#: Every action the applier knows how to perform.
CHAOS_ACTIONS = (
    "kill",
    "crashloop",
    "stall",
    "journal_fault",
    "corrupt",
    "kill_compact",
    "ipc_delay",
    "resize",
    "hotspot",
)

#: Where the ``corrupt`` action flips bytes in the shard journal.
CORRUPT_MODES = ("mid", "tail", "header")

#: Actions that require / accept a duration operand.
_DURATION_ACTIONS = {"stall", "ipc_delay"}

#: Tier-level actions: they target the whole fleet, not one slot, so
#: they take no ``shard=`` operand (the field stays at its -1 sentinel).
TIER_ACTIONS = ("resize", "hotspot")

#: Named schedules :func:`generate_timeline` can derive from a seed.
#: ``full``/``quick`` are the single-fault classics; ``latency`` is
#: ipc_delay-heavy (slow pipes, not dead ones); ``overlap`` stacks
#: elastic resizes on top of crash-loop containment, journal faults,
#: and a hot-key burst -- the multi-fault soak; ``durability`` attacks
#: the journals themselves (on-disk corruption + SIGKILL mid-compaction).
CHAOS_PROFILES = ("full", "quick", "latency", "overlap", "durability")


@dataclass(frozen=True)
class ChaosEvent:
    """One fault, one shard, one offset into the soak.

    ``at`` is seconds from soak start; ``count`` means "kills" for
    ``kill``/``crashloop`` (0 = until contained), wall-clock seconds
    of effect for ``ipc_delay``, and burst size for ``hotspot``;
    ``duration`` is the stall length or the per-call delay; ``mode``
    selects the journal fault flavor.  Tier actions (``resize``,
    ``hotspot``) leave ``shard`` at its -1 sentinel: ``resize`` carries
    the target fleet size in ``shards`` and ``hotspot`` the grid key in
    ``key``.
    """

    at: float
    action: str
    shard: int = -1
    duration: float = 0.0
    count: int = 1
    mode: str = ""
    shards: int = 0
    key: str = ""

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {', '.join(CHAOS_ACTIONS)}"
            )
        if self.at < 0:
            raise ValueError("event offset must be non-negative")
        tier = self.action in TIER_ACTIONS
        if tier:
            if self.shard != -1:
                raise ValueError(
                    f"{self.action} is a tier action; it takes no shard"
                )
        elif self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.action == "journal_fault":
            if self.mode not in JOURNAL_FAULT_MODES:
                raise ValueError(
                    f"journal_fault mode must be one of "
                    f"{', '.join(JOURNAL_FAULT_MODES)}, "
                    f"got {self.mode!r}"
                )
        elif self.action == "corrupt":
            if self.mode not in CORRUPT_MODES:
                raise ValueError(
                    f"corrupt mode must be one of "
                    f"{', '.join(CORRUPT_MODES)}, got {self.mode!r}"
                )
        elif self.mode:
            raise ValueError(f"{self.action} does not take a mode")
        if self.action in _DURATION_ACTIONS and self.duration <= 0:
            raise ValueError(f"{self.action} requires duration > 0")
        if self.action == "resize":
            if self.shards < 1:
                raise ValueError("resize requires shards >= 1")
        elif self.shards:
            raise ValueError(f"{self.action} does not take shards")
        if self.action == "hotspot":
            if not self.key:
                raise ValueError("hotspot requires a key")
            if self.count < 1:
                raise ValueError("hotspot requires count >= 1")
        elif self.key:
            raise ValueError(f"{self.action} does not take a key")


def format_event(event: ChaosEvent) -> str:
    """The canonical spec string; ``parse_event`` round-trips it."""
    parts = [f"{event.action}@{event.at:g}"]
    if event.action not in TIER_ACTIONS:
        parts.append(f"shard={event.shard}")
    if event.shards:
        parts.append(f"shards={event.shards}")
    if event.key:
        parts.append(f"key={event.key}")
    if event.duration:
        parts.append(f"duration={event.duration:g}")
    if event.count != 1:
        parts.append(f"count={event.count}")
    if event.mode:
        parts.append(f"mode={event.mode}")
    return ":".join(parts)


def parse_event(spec: str) -> ChaosEvent:
    """Parse ``action@seconds:shard=I[:duration=S][:count=N][:mode=M]``."""
    text = spec.strip()
    if not text:
        raise ValueError("empty chaos event spec")
    head, _, rest = text.partition(":")
    action, sep, offset = head.partition("@")
    if not sep:
        raise ValueError(
            f"bad chaos event {spec!r}: expected 'action@seconds', "
            f"got {head!r}"
        )
    fields: Dict[str, str] = {}
    for item in filter(None, rest.split(":")):
        name, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad chaos event {spec!r}: operand {item!r} is not "
                "name=value"
            )
        if name in fields:
            raise ValueError(
                f"bad chaos event {spec!r}: duplicate operand {name!r}"
            )
        fields[name] = value
    tier = action.strip() in TIER_ACTIONS
    if not tier and "shard" not in fields:
        raise ValueError(f"bad chaos event {spec!r}: missing shard=I")
    unknown = set(fields) - {
        "shard", "duration", "count", "mode", "shards", "key"
    }
    if unknown:
        raise ValueError(
            f"bad chaos event {spec!r}: unknown operand(s) "
            f"{', '.join(sorted(unknown))}"
        )
    try:
        return ChaosEvent(
            at=float(offset),
            action=action.strip(),
            shard=int(fields.get("shard", -1)),
            duration=float(fields.get("duration", 0.0)),
            count=int(fields.get("count", 1)),
            mode=fields.get("mode", ""),
            shards=int(fields.get("shards", 0)),
            key=fields.get("key", ""),
        )
    except ValueError as exc:
        raise ValueError(f"bad chaos event {spec!r}: {exc}") from None


def parse_timeline(text: str) -> List[ChaosEvent]:
    """Parse a ``;``-joined list of event specs, sorted by offset."""
    events = [
        parse_event(item) for item in text.split(";") if item.strip()
    ]
    if not events:
        raise ValueError("timeline contains no events")
    return sorted(events, key=lambda e: (e.at, e.shard, e.action))


def format_timeline(events: Sequence[ChaosEvent]) -> str:
    """The ``;``-joined canonical form (round-trips parse_timeline)."""
    return ";".join(format_event(event) for event in events)


def describe_timeline(events: Sequence[ChaosEvent]) -> List[str]:
    """Human-readable one-liner per event, for --print-timeline."""
    lines = []
    for event in events:
        extra = ""
        target = f"shard {event.shard}"
        if event.action == "stall":
            extra = f" for {event.duration:g}s"
        elif event.action == "ipc_delay":
            extra = f" (+{event.duration:g}s/call for {event.count}s)"
        elif event.action == "journal_fault":
            extra = f" (mode={event.mode})"
        elif event.action == "corrupt":
            extra = f" (journal bytes flipped: mode={event.mode})"
        elif event.action == "kill_compact":
            extra = " (SIGKILL mid-compaction)"
        elif event.action == "crashloop":
            extra = (
                " (until contained)"
                if event.count == 0
                else f" ({event.count} kills)"
            )
        elif event.action == "resize":
            target = "tier"
            extra = f" -> {event.shards} shard(s)"
        elif event.action == "hotspot":
            target = "tier"
            extra = f" (key={event.key}, burst {event.count})"
        elif event.count != 1:
            extra = f" x{event.count}"
        lines.append(
            f"t+{event.at:6.2f}s  {event.action:<13s} {target}"
            f"{extra}"
        )
    return lines


def generate_timeline(
    seed: int,
    shards: int,
    duration: float,
    profile: str = "full",
) -> List[ChaosEvent]:
    """Derive a deterministic fault schedule from a seed.

    The generator keeps the timeline *verifiable*, not merely random:

    * the crash-loop target, the stall target, and the journal-fault
      target are distinct shards (when the fleet is big enough), so each
      containment path is observable in isolation;
    * the journal-fault shard is never killed afterwards -- a dead
      worker would take its armed fault (and the degraded-mode evidence)
      with it;
    * offsets are spread over the middle of the soak so the harness has
      fault-free traffic on both sides of every event to compare against
      the oracle.
    """

    if shards < 2:
        # One shard has no survivors to reroute to; chaos against it
        # only proves "a dead fleet serves nothing", which needs no
        # harness.
        raise ValueError("chaos timelines need at least 2 shards")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if profile not in CHAOS_PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}")
    rng = random.Random(seed)
    order = list(range(shards))
    rng.shuffle(order)
    # Distinct victims when the fleet allows it.  The journal-fault
    # target must differ from the kill/crashloop target (a later kill
    # would destroy the degraded-journal evidence); on a 2-shard fleet
    # the stall doubles up with the crash target instead.
    crash_target = order[0]
    journal_target = order[1] if shards == 2 else order[2]
    stall_target = order[0] if shards == 2 else order[1]

    def jitter(base: float, spread: float) -> float:
        return round(base + rng.uniform(0.0, spread), 2)

    events: List[ChaosEvent] = []
    if profile == "latency":
        # Slow pipes, not dead ones: two overlapping ipc_delay windows
        # on distinct slots (when the fleet allows), then a kill inside
        # the second window so respawn happens *while* a sibling is
        # slow.  Per-call delays are kept well under the harness op
        # timeout -- the point is latency accounting and stall
        # escalation staying quiet, not forced escalation.
        first = order[0]
        second = order[1 % shards]
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.15, duration * 0.05),
                action="ipc_delay",
                shard=first,
                duration=round(rng.uniform(0.05, 0.15), 2),
                count=max(1, int(duration * 0.3)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.4, duration * 0.05),
                action="ipc_delay",
                shard=second,
                duration=round(rng.uniform(0.05, 0.15), 2),
                count=max(1, int(duration * 0.3)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.6, duration * 0.05),
                action="kill",
                shard=first,
            )
        )
    elif profile == "overlap":
        # The multi-fault soak: resize the tier up while a slot sits
        # quarantined mid-crash-loop, degrade a surviving journal, push
        # a key hot enough to replicate, resize back down, then kill.
        # The journal-fault target is always a slot below the original
        # count, so neither resize retires it and no kill touches it --
        # its degraded-mode evidence must survive to the report.
        crash = order[0]
        journal_victim = order[1]
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.1, duration * 0.04),
                action="crashloop",
                shard=crash,
                count=0,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.3, duration * 0.04),
                action="resize",
                shards=shards + 2,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.45, duration * 0.04),
                action="journal_fault",
                shard=journal_victim,
                mode=rng.choice(list(JOURNAL_FAULT_MODES)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.55, duration * 0.04),
                action="hotspot",
                key=str(rng.randrange(4)),
                count=40,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.7, duration * 0.04),
                action="resize",
                shards=shards,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.85, duration * 0.04),
                action="kill",
                shard=crash,
            )
        )
    elif profile == "durability":
        # Attack the durable state itself: flip bytes in one slot's
        # on-disk journal (its successor must quarantine the damage and
        # keep serving), SIGKILL another slot mid-compaction (its
        # successor must replay a fully valid journal), tear a third
        # slot's tail, then plain-kill the first corrupted slot to
        # prove the quarantined journal replays again.
        corrupt_first = order[0]
        compact_victim = order[1]
        corrupt_second = order[2] if shards > 2 else order[0]
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.15, duration * 0.05),
                action="corrupt",
                shard=corrupt_first,
                mode=rng.choice(list(CORRUPT_MODES)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.4, duration * 0.05),
                action="kill_compact",
                shard=compact_victim,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.6, duration * 0.05),
                action="corrupt",
                shard=corrupt_second,
                mode="tail",
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.8, duration * 0.05),
                action="kill",
                shard=corrupt_first,
            )
        )
    elif profile == "quick":
        # kill + short stall + journal fault, no crash loop (containment
        # plus recovery needs more wall clock than a smoke test gets).
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.15, duration * 0.05),
                action="kill",
                shard=crash_target,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.35, duration * 0.05),
                action="journal_fault",
                shard=journal_target,
                mode=rng.choice(list(JOURNAL_FAULT_MODES)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.55, duration * 0.05),
                action="stall",
                shard=stall_target,
                duration=round(duration * 0.2, 2),
            )
        )
    else:
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.15, duration * 0.05),
                action="crashloop",
                shard=crash_target,
                count=0,
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.45, duration * 0.05),
                action="stall",
                shard=stall_target,
                # Long enough to outlive the harness op timeout, so the
                # stall is *escalated* (killed + respawned), not waited
                # out.
                duration=round(duration * 0.4, 2),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.55, duration * 0.05),
                action="journal_fault",
                shard=journal_target,
                mode=rng.choice(list(JOURNAL_FAULT_MODES)),
            )
        )
        events.append(
            ChaosEvent(
                at=jitter(duration * 0.75, duration * 0.05),
                action="kill",
                shard=crash_target,
            )
        )
    events.sort(key=lambda e: (e.at, e.shard, e.action))
    # The journal-fault target must stay alive from its event onward.
    fault_events = [e for e in events if e.action == "journal_fault"]
    if fault_events:
        cutoff = fault_events[0].at
        assert not any(
            e.shard == fault_events[0].shard
            and e.at >= cutoff
            and e.action in ("kill", "crashloop")
            for e in events
        ), "generator bug: journal-fault shard scheduled for death"
    return events
